//! Workspace umbrella for the SAGE reproduction: re-exports every crate
//! so the examples and cross-crate integration tests have one import
//! surface.
//!
//! The interesting code lives in the member crates:
//!
//! - [`isa`] — the SASS-like instruction set and generation framework,
//! - [`gpu`] — the Ampere-like GPU simulator,
//! - [`crypto`] — from-scratch SHA-256 / AES / CMAC / DH,
//! - [`trng`] — the race-condition TRNG and its statistical battery,
//! - [`sgx`] — the enclave simulator,
//! - [`vf`] — the verification function (codegen + replay),
//! - [`core`] — the SAGE protocol (sessions, verifier, SAKE, channel,
//!   user kernels),
//! - [`attacks`] — the §8 adversary library,
//! - [`evidence`] — hash-chained attestation evidence, Merkle fleet
//!   epochs, freshness decay and verifiable device reports,
//! - [`service`] — the fleet attestation control plane (wire codec,
//!   simulated transport, lifecycle state machine, policy engine),
//! - [`telemetry`] — the dependency-free observability core (counters,
//!   histograms, spans, stable-schema exporters).

pub use sage as core;
pub use sage_attacks as attacks;
pub use sage_crypto as crypto;
pub use sage_evidence as evidence;
pub use sage_gpu_sim as gpu;
pub use sage_isa as isa;
pub use sage_service as service;
pub use sage_sgx_sim as sgx;
pub use sage_telemetry as telemetry;
pub use sage_trng as trng;
pub use sage_vf as vf;
