//! A tour of the instruction generation framework (paper §6.1–§6.2):
//! assemble SASS-like text, inspect the 128-bit encoding and its control
//! information, patch an immediate the way self-modifying code does, and
//! emit the same program as PTX-like and CUDA-C-like text.
//!
//! ```text
//! cargo run --release --example microcode_tour
//! ```

use sage_isa::{emit, encode, Program};
use sage_vf::{build_vf, VfParams};

fn main() {
    // 1. The paper's running example (§6.2), in its own syntax.
    let src = "\
B------|R-|W0|Y0|S01| LDG.E R8, [R2+0x0] ;
B0-----|R-|W-|Y1|S01| IMAD R28, R28, 0x800, R28 ;
B------|R-|W-|Y0|S02| LEA.HI R9, R8, R28, 0x7 ;
B------|R-|W-|Y0|S01| EXIT ;
";
    let prog = Program::assemble(src).unwrap();
    println!("assembled {} instructions\n", prog.len());

    // 2. Binary encoding (Fig. 6): 128 bits per instruction, scheduling
    //    control information included.
    for (i, insn) in prog.insns.iter().enumerate() {
        let word = encode::encode(insn);
        println!("#{i}: {insn}");
        println!("      encoding: {word:032x}");
        println!(
            "      ctrl: wait={:06b} rd={:?} wr={:?} yield={} stall={}",
            insn.ctrl.wait_mask,
            insn.ctrl.read_bar,
            insn.ctrl.write_bar,
            insn.ctrl.yield_flag as u8,
            insn.ctrl.stall
        );
    }

    // 3. Patch the IMAD's immediate in the raw bytes — exactly what the
    //    self-modifying checksum code does with an STG (§6.5 step 5).
    let mut bytes = prog.encode();
    let imad_off = 16; // second instruction
    let mut word = [0u8; 16];
    word.copy_from_slice(&bytes[imad_off..imad_off + 16]);
    println!(
        "\nIMAD immediate before patch: {:#x}",
        encode::read_immediate_bytes(&word)
    );
    encode::patch_immediate_bytes(&mut word, 0x1F);
    bytes[imad_off..imad_off + 16].copy_from_slice(&word);
    let patched = Program::decode(&bytes).unwrap();
    println!("after patch:  {}", patched.insns[1]);

    // 4. The framework's other targets (§6.2): PTX-like and CUDA-like.
    println!("\n--- PTX-like emission ---\n{}", emit::to_ptx(&prog));
    println!("--- CUDA-C-like emission ---\n{}", emit::to_cuda(&prog));

    // 5. A peek at real generated VF microcode: the first checksum step.
    let build = build_vf(&VfParams::test_tiny(), 0x4000, 7).unwrap();
    let l = build.layout;
    let loop_bytes = &build.image[l.ref_loop_off as usize..(l.ref_loop_off + 16 * 14) as usize];
    let head = Program::decode(loop_bytes).unwrap();
    println!("--- first checksum step of a generated VF ---");
    print!("{}", head.disassemble());
    println!(
        "\n(loop: {} instructions total; self-modifying immediate at index {:?})",
        build.loop_instructions, build.smc_insn_index
    );

    // 6. The section map of the whole device image.
    println!("\n--- VF image section map ---\n{}", build.describe());
}
