//! Quickstart: attest a GPU and run a kernel on it, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full SAGE flow from paper Fig. 3: install the verification
//! function → calibrate the timing threshold → establish the dynamic
//! root of trust + session key (modified SAKE) → check the user kernel's
//! hash on the device → send data over the protected channel → run the
//! kernel → read the result back authenticated.

use sage::{
    agent::DeviceAgent,
    kernels::{self, vecadd::Elem},
    Verifier,
};
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

/// Deterministic demo entropy (a real deployment uses the enclave TRNG
/// on the host and the race-condition TRNG on the device).
fn demo_entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn main() {
    // 1. A device and a verification function sized for it.
    let device = Device::new(DeviceConfig::sim_small());
    let mut params = VfParams::test_tiny();
    params.iterations = 20;
    let mut session = sage::GpuSession::install(device, &params, 0xC0DE).unwrap();
    println!(
        "installed VF: {} loop instructions, {} blocks x {} threads",
        session.build().loop_instructions,
        params.grid_blocks,
        params.block_threads
    );

    // 2. The verifier runs in an enclave on the host.
    let platform = SgxPlatform::new([0x42; 16]);
    let enclave = platform.launch(b"sage-verifier-v1", &mut demo_entropy(3));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());

    // 3. Calibrate the timing threshold on the known-good device.
    let calibration = verifier.calibrate(&mut session, 10).unwrap();
    println!(
        "calibrated: T_avg = {:.0} cycles, sigma = {:.1}, threshold = {} cycles",
        calibration.t_avg,
        calibration.sigma,
        calibration.threshold()
    );

    // 4. Establish the dynamic root of trust and the session key (SAKE).
    let mut agent = DeviceAgent::new(Box::new(demo_entropy(7)));
    let outcome = verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();
    println!(
        "attested: checksum exchange took {} cycles (threshold {}), session key established",
        outcome.measured_cycles, outcome.threshold_cycles
    );

    // 5. Verify the user kernel's identity on the device (H(r || code)).
    let kernel = kernels::vecadd_kernel(Elem::U32);
    verifier
        .verify_user_kernel(&mut session, &mut agent, &kernel.encode())
        .unwrap();
    println!("user kernel measurement verified on-device (SHA-256 microcode)");

    // 6. Protected data transfer + execution.
    let n = 128u32;
    let a: Vec<u32> = (0..n).collect();
    let b: Vec<u32> = (0..n).map(|i| i * 3).collect();
    let bytes = |v: &[u32]| -> Vec<u8> { v.iter().flat_map(|w| w.to_le_bytes()).collect() };
    let abuf = session.dev.alloc(4 * n).unwrap();
    let bbuf = session.dev.alloc(4 * n).unwrap();
    let obuf = session.dev.alloc(4 * n).unwrap();

    let mut chan = verifier.open_channel(&outcome);
    for (addr, data) in [(abuf, bytes(&a)), (bbuf, bytes(&b))] {
        let wire = chan.seal(addr, &data, true);
        agent.receive_data(&mut session, &wire).unwrap();
    }
    println!("inputs transferred encrypted + authenticated");

    let entry = kernels::load_kernel(&mut session.dev, &kernel).unwrap();
    session
        .dev
        .run_single(
            kernels::KernelLaunch {
                entry_pc: entry,
                grid_dim: n.div_ceil(64),
                block_dim: 64,
                regs_per_thread: kernels::VECADD_REGS,
                smem_bytes: 0,
                params: vec![abuf, bbuf, obuf, n],
            }
            .into_launch(session.ctx),
        )
        .unwrap();

    // 7. Results come back over the authenticated channel.
    let wire = agent.send_data(&mut session, obuf, 4 * n, false).unwrap();
    let raw = chan.open(&wire).unwrap();
    let out: Vec<u32> = raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 4));
    println!("vecadd verified: out[i] == 4*i for all {n} elements — done.");
}
