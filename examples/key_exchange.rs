//! SAKE walkthrough: prints every message of the modified key
//! establishment protocol (paper §5.2.3, Eqs. 1–8) as it flows between
//! the verifier enclave and the GPU.
//!
//! ```text
//! cargo run --release --example key_exchange
//! ```

use sage::{agent::DeviceAgent, sake::SakeMessage, Verifier};
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

fn demo_entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn hex(bytes: &[u8], n: usize) -> String {
    bytes
        .iter()
        .take(n)
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
        + "…"
}

fn main() {
    let device = Device::new(DeviceConfig::sim_small());
    let mut params = VfParams::test_tiny();
    params.iterations = 15;
    let mut session = sage::GpuSession::install(device, &params, 0x6E4A).unwrap();

    let platform = SgxPlatform::new([0x42; 16]);
    let enclave = platform.launch(b"sage-verifier-v1", &mut demo_entropy(11));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, 8).unwrap();
    println!("calibrated; running modified SAKE…\n");

    let mut agent = DeviceAgent::new(Box::new(demo_entropy(23)));
    let mut narrate = |step: usize, msg: &mut SakeMessage| {
        let line = match msg {
            SakeMessage::Challenge { v2 } => {
                format!(
                    "[t0] V → D : v2 = {}            (checksum challenge seed)",
                    hex(v2, 8)
                )
            }
            SakeMessage::Commit { w2, mac } => format!(
                "[t1] D → V : w2 = {}, MAC_c(w2) = {}  (checksum-keyed commitment)",
                hex(w2, 8),
                hex(mac, 8)
            ),
            SakeMessage::RevealV1 { v1 } => {
                format!(
                    "     V → D : v1 = {}            (chain reveal; D checks H(v1)=v2)",
                    hex(v1, 8)
                )
            }
            SakeMessage::DeviceReveal1 { w1, k, mac_k } => format!(
                "     D → V : w1 = {}, k = g^b = {}, MAC(k) = {}",
                hex(w1, 8),
                hex(k, 8),
                hex(mac_k, 8)
            ),
            SakeMessage::RevealV0 { v0 } => {
                format!(
                    "     V → D : v0 = g^a = {}      (final chain link = DH public)",
                    hex(v0, 8)
                )
            }
            SakeMessage::DeviceReveal0 { w0 } => {
                format!(
                    "     D → V : w0 = H(c‖r) = {}   (root; validates deferred MAC)",
                    hex(w0, 8)
                )
            }
        };
        println!("step {step}: {line}");
    };

    let outcome = verifier
        .establish_key(&mut session, &mut agent, Some(&mut narrate))
        .unwrap();

    println!(
        "\nchecksum exchange: {} cycles (threshold {})",
        outcome.measured_cycles, outcome.threshold_cycles
    );
    println!(
        "verifier key: {}   device key: {}",
        hex(&outcome.session_key, 16),
        hex(&agent.session_key().unwrap(), 16)
    );
    assert_eq!(Some(outcome.session_key), agent.session_key());
    println!("keys agree — sk_VD = g^ab established (Eq. 8).");
}
