//! Protected machine-learning-style workload: a matrix multiplication on
//! confidential inputs (the paper's motivating scenario — §1: "machine
//! learning to security-critical or sensitive domains such as healthcare
//! or financial modeling").
//!
//! ```text
//! cargo run --release --example secure_matmul
//! ```
//!
//! Demonstrates the confidentiality rule of §5.2.4: authenticated-only
//! transfers may overlap verification, but *confidential* data must not
//! leave the enclave until the checksum verdict is in. It also shows
//! what an eavesdropper on the PCIe bus actually observes.

use sage::{agent::DeviceAgent, kernels, Verifier};
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{BusTap, Device, DeviceConfig};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

fn demo_entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// A passive eavesdropper on the PCIe bus: records everything it sees.
struct Snooper {
    captured: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl BusTap for Snooper {
    fn on_h2d(&mut self, _addr: u32, data: &mut Vec<u8>) {
        self.captured
            .lock()
            .expect("no poisoning")
            .extend_from_slice(data);
    }
}

fn main() {
    let n = 48usize;
    // The "patient data": two confidential matrices.
    let a: Vec<f32> = (0..n * n).map(|i| ((i % 17) as f32 - 8.0) * 0.5).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i % 11) as f32 - 5.0) * 0.25).collect();
    let to_bytes =
        |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect() };

    let device = Device::new(DeviceConfig::sim_small());
    let mut params = VfParams::test_tiny();
    params.iterations = 15;
    let mut session = sage::GpuSession::install(device, &params, 0x9A7E).unwrap();

    // The adversary listens on the bus for the whole run.
    let captured = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    session.dev.install_bus_tap(Box::new(Snooper {
        captured: std::sync::Arc::clone(&captured),
    }));

    let platform = SgxPlatform::new([0x42; 16]);
    let enclave = platform.launch(b"sage-verifier-v1", &mut demo_entropy(5));
    let mut verifier = Verifier::new(enclave, session.build().clone(), DhGroup::test_group());
    verifier.calibrate(&mut session, 8).unwrap();

    let mut agent = DeviceAgent::new(Box::new(demo_entropy(9)));
    let outcome = verifier
        .establish_key(&mut session, &mut agent, None)
        .unwrap();
    println!("root of trust established; key exchanged");

    // Kernel integrity first…
    let kernel = kernels::matmul_kernel();
    verifier
        .verify_user_kernel(&mut session, &mut agent, &kernel.encode())
        .unwrap();
    println!("matmul kernel hash verified on-device");

    // …then, and only then, the confidential inputs (paper §5.2.4).
    let abuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let bbuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let cbuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let mut chan = verifier.open_channel(&outcome);
    for (addr, data) in [(abuf, to_bytes(&a)), (bbuf, to_bytes(&b))] {
        let wire = chan.seal(addr, &data, true);
        agent.receive_data(&mut session, &wire).unwrap();
    }

    let entry = kernels::load_kernel(&mut session.dev, &kernel).unwrap();
    session
        .dev
        .run_single(
            kernels::KernelLaunch {
                entry_pc: entry,
                grid_dim: n as u32,
                block_dim: (n as u32).div_ceil(32) * 32,
                regs_per_thread: kernels::MATMUL_REGS,
                smem_bytes: 0,
                params: vec![abuf, bbuf, cbuf, n as u32],
            }
            .into_launch(session.ctx),
        )
        .unwrap();

    let wire = agent
        .send_data(&mut session, cbuf, (4 * n * n) as u32, true)
        .unwrap();
    let raw = chan.open(&wire).unwrap();
    let got: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    assert_eq!(got, kernels::matmul_host(&a, &b, n));
    println!("matmul result correct ({n}x{n})");

    // What did the eavesdropper get? Check that no plaintext input
    // window appears anywhere in the captured bus traffic.
    let captured = captured.lock().expect("no poisoning");
    let plain_a = to_bytes(&a);
    let window = &plain_a[..64];
    let leaked = captured.windows(window.len()).any(|w| w == window);
    println!(
        "bus eavesdropper captured {} bytes; plaintext inputs visible: {}",
        captured.len(),
        if leaked { "YES (bug!)" } else { "no" }
    );
    assert!(!leaked, "confidential data must not cross the bus in clear");
}
