//! Two-process attestation over a real Unix-domain socket.
//!
//! Terminal 1 — the verifier:
//! ```text
//! cargo run --release --example attested_link -- serve --sock /tmp/sage-link.sock --rounds 3
//! ```
//!
//! Terminal 2 — a device (repeat with different `--index` for a fleet):
//! ```text
//! cargo run --release --example attested_link -- device --sock /tmp/sage-link.sock --index 0
//! ```
//!
//! The device enrolls (calibration + SAKE) over the socket, then answers
//! re-attestation rounds until the verifier has seen `--rounds` passes
//! and exits. Kill the device mid-run and restart it: it resumes its
//! session with a `Hello`/`HelloAck` MAC handshake — no re-enrollment —
//! and the verifier's evidence chain carries on unbroken.
//!
//! Devices are modeled (replay-engine checksums, synthesized timing), so
//! the demo runs anywhere; the verifier installs an identical local twin
//! per device to replay checksums against.

use std::path::PathBuf;
use std::time::Duration;

use sage_repro::core::{agent::DeviceAgent, multi::FleetMember, GpuSession};
use sage_repro::crypto::DhGroup;
use sage_repro::gpu::{Device, DeviceConfig};
use sage_repro::service::{
    AttestationService, Bind, ClockDriver, DeviceLink, DeviceLinkConfig, DeviceState, LinkConfig,
    Pump, ServiceConfig, TcpTransport,
};
use sage_repro::sgx::SgxPlatform;
use sage_repro::vf::VfParams;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn modeled_member(index: usize) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let seed = (index as u8).wrapping_mul(3).wrapping_add(11) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(seed))));
    m.name = format!("gpu-{index:05}");
    m
}

fn serve(sock: PathBuf, rounds: u64) {
    let net = TcpTransport::bind(Bind::Uds(sock.clone()), LinkConfig::default())
        .expect("bind verifier socket");
    let mut svc = AttestationService::new(
        ServiceConfig {
            reattest_interval: 20_000,
            backoff_jitter: 500,
            ..ServiceConfig::default()
        },
        DhGroup::test_group(),
        net,
    );
    let platform = SgxPlatform::new([7u8; 16]);
    let mut driver = ClockDriver::new(100_000);
    println!("verifier listening on {}", sock.display());
    let mut last_line = String::new();
    loop {
        // Idle between bursts of work: with no device connected the
        // virtual clock would otherwise jump ahead in a hot loop.
        svc.transport().wait_activity(Duration::from_millis(200));
        let target = svc.now() + 10_000;
        match driver.run_until(&mut svc, target) {
            Pump::Enrolls => {
                while let Some((name, stream)) = svc.transport_mut().take_pending_enroll() {
                    let index: usize = match name.strip_prefix("gpu-").and_then(|s| s.parse().ok())
                    {
                        Some(i) => i,
                        None => {
                            eprintln!("rejecting unknown device name {name:?}");
                            continue;
                        }
                    };
                    println!("enrolling {name} ...");
                    let enclave = platform.launch(b"link-verifier", &mut entropy(23));
                    svc.join_remote(modeled_member(index), enclave, stream);
                    println!("  -> {:?}", svc.state_of(&name).unwrap());
                }
            }
            Pump::Target => {}
        }
        let statuses = svc.statuses();
        let mut line = String::new();
        for s in &statuses {
            line.push_str(&format!(
                "  {} {:?} rounds={} resumes_seen={}\n",
                s.name,
                s.state,
                s.rounds_passed,
                svc.transport().stats().reconnects,
            ));
        }
        if line != last_line {
            print!("{line}");
            last_line = line;
        }
        let done = !statuses.is_empty()
            && statuses
                .iter()
                .all(|s| s.state == DeviceState::Trusted && s.rounds_passed >= rounds);
        if done {
            let st = svc.transport().stats();
            println!(
                "all devices Trusted with >= {rounds} rounds; {} resumes, {} frames shed, {} heartbeat misses",
                st.reconnects, st.frames_shed, st.heartbeat_misses
            );
            return;
        }
    }
}

fn device(sock: PathBuf, index: usize, seconds: u64) {
    let link = DeviceLink::spawn(
        modeled_member(index),
        DhGroup::test_group(),
        DeviceLinkConfig {
            connect: Bind::Uds(sock),
            ..DeviceLinkConfig::default()
        },
    );
    println!(
        "device {} dialing (runs {seconds}s; ctrl-c to kill)",
        link.name()
    );
    std::thread::sleep(Duration::from_secs(seconds));
    let report = link.stop();
    println!(
        "device report: enrolled={} enrollments={} resumes={} rounds_answered={} cached_replays={} disconnects={}",
        report.enrolled,
        report.enrollments,
        report.resumes,
        report.rounds_answered,
        report.cached_replays,
        report.disconnects
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let mut sock = PathBuf::from("/tmp/sage-link.sock");
    let mut rounds = 3u64;
    let mut index = 0usize;
    let mut seconds = 30u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sock" => sock = PathBuf::from(args.next().expect("--sock PATH")),
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--index" => index = args.next().and_then(|v| v.parse().ok()).expect("--index N"),
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds N")
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    match mode.as_str() {
        "serve" => serve(sock, rounds),
        "device" => device(sock, index, seconds),
        _ => {
            eprintln!(
                "usage: attested_link serve --sock PATH [--rounds N]\n       attested_link device --sock PATH [--index N] [--seconds N]"
            );
            std::process::exit(2);
        }
    }
}
