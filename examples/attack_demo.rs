//! Attack gallery: mounts each §8 adversary against a live verification
//! session and prints the detection verdicts.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use sage_attacks::{datasub, forge, memcopy, nop, proxy, takeover, Detection};
use sage_gpu_sim::DeviceConfig;
use sage_vf::VfParams;

fn verdict(d: Detection) -> &'static str {
    match d {
        Detection::WrongChecksum => "DETECTED (wrong checksum)",
        Detection::TooSlow => "DETECTED (timing threshold)",
        Detection::Undetected => "undetected",
    }
}

fn main() {
    let cfg = DeviceConfig::sim_tiny();
    let mut params = VfParams::test_tiny();
    params.iterations = 30;
    // Timing-based detections run on a port-bound full-occupancy
    // configuration, where every injected instruction costs real issue
    // slots (paper §7.2 scale argument).
    let (timing_cfg, timing_params) = nop::timing_test_setup();

    println!(
        "SAGE attack gallery (paper §8) — device {}, {} iterations\n",
        cfg.name, params.iterations
    );

    // 1. Instruction injection (experiment 2).
    let exp = nop::run_nop_experiment(&timing_cfg, &timing_params, 1, 8).unwrap();
    println!(
        "instruction injection (+1 NOP):   {}",
        if exp.always_detected {
            "DETECTED (T_min > T_avg + 2.5 sigma on every run)"
        } else {
            "undetected at this scale"
        }
    );
    println!(
        "    genuine T_avg {:.0} / sigma {:.1} / threshold {}; injected T_min {}",
        exp.calibration.t_avg,
        exp.calibration.sigma,
        exp.calibration.threshold(),
        exp.t_min_injected
    );

    // 2. Data substitution without monitoring.
    let det = datasub::naive_tamper(&cfg, &params, 256).unwrap();
    println!("data tamper (no monitor):         {}", verdict(det));

    // 3. Data substitution with a perfect (but costly) read monitor.
    let exp = datasub::monitored_tamper_cost(&timing_cfg, &timing_params, 2, 6).unwrap();
    println!(
        "data tamper (perfect monitor):    {}",
        if exp.always_detected {
            "DETECTED (monitoring overhead breaks the threshold)"
        } else {
            "undetected at this scale"
        }
    );

    // 4. Memory copy, variant (b).
    let det = memcopy::variant_b(&cfg, &params).unwrap();
    println!("memory copy (b) redirect:         {}", verdict(det));

    // 5. Deep memory copy — the documented residual.
    let (det, patches) = memcopy::deep_copy_attack(&cfg, &VfParams::test_tiny()).unwrap();
    println!(
        "deep memory copy ({patches} patches):     {} — the paper excludes this: \"not\n    considered a memory copy attack\" (identical function, identical time)",
        verdict(det)
    );

    // 6. Resource takeover.
    let mut p = VfParams::test_tiny();
    p.iterations = 8;
    let (det, measured, threshold) = takeover::takeover_round(&cfg, &p, 3000, 2).unwrap();
    println!(
        "resource takeover:                {} ({} vs threshold {})",
        verdict(det),
        measured,
        threshold
    );

    // 7. Proxy attacks.
    let out = proxy::proxy_attack(&cfg, &cfg, &params, 70_000).unwrap();
    println!(
        "proxy (same GPU, 50 µs RTT):      {}",
        verdict(out.detection)
    );
    let out = proxy::proxy_attack(&cfg, &proxy::faster_gpu(&cfg), &params, 70_000).unwrap();
    println!(
        "proxy (faster GPU, 50 µs RTT):    {}",
        verdict(out.detection)
    );

    // 8. Result replay.
    let outcomes = forge::replay_attack(&cfg, &params, 3).unwrap();
    println!("result replay (rounds 1..):       {}", verdict(outcomes[1]));

    println!("\nevery practical attack lands in a detected bucket; the only undetected\nentry is the deep copy the paper itself rules out of scope.");
}
