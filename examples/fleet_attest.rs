//! Multi-GPU fleet attestation (paper §3.2): establish the dynamic root
//! of trust on every GPU of a heterogeneous system, most powerful first,
//! while actively maintaining the roots already established.
//!
//! ```text
//! cargo run --release --example fleet_attest
//! ```

use sage::agent::DeviceAgent;
use sage::multi::{attest_fleet, power_score, FleetMember};
use sage::GpuSession;
use sage_crypto::{DhGroup, EntropySource};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

fn demo_entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn main() {
    // A heterogeneous system: one bigger and one smaller GPU (note the
    // order given here is *not* the attestation order).
    let configs = vec![DeviceConfig::sim_tiny(), DeviceConfig::sim_small()];
    println!("fleet members (submission order):");
    for c in &configs {
        println!("  {:9} power score {}", c.name, power_score(c));
    }

    let mut params = VfParams::test_tiny();
    params.iterations = 10;
    let mut seed = 30u8;
    let members: Vec<FleetMember> = configs
        .into_iter()
        .map(|cfg| {
            seed += 2;
            let session = GpuSession::install(Device::new(cfg), &params, 0xF1EE7).unwrap();
            FleetMember::new(session, DeviceAgent::new(Box::new(demo_entropy(seed))))
        })
        .collect();

    let platform = SgxPlatform::new([0x42; 16]);
    let mut launch_seed = 70u8;
    let mut factory = move || {
        launch_seed += 1;
        platform.launch(b"fleet-verifier", &mut demo_entropy(launch_seed))
    };

    let (outcome, fleet) = attest_fleet(&mut factory, DhGroup::test_group(), members, 8);
    if let Some(failure) = &outcome.failure {
        eprintln!("fleet attestation incomplete: {failure}");
        std::process::exit(1);
    }

    println!("\nattestation order (descending power, per §3.2):");
    for (name, att) in &outcome.attested {
        println!(
            "  {:9} checksum exchange {} cycles (threshold {}), key established",
            name, att.measured_cycles, att.threshold_cycles
        );
    }
    println!(
        "\nall {} roots of trust established and re-verified after each step.",
        fleet.len()
    );
}
