//! The attestation control plane end to end: a fleet enrolled into the
//! long-running service, re-attested on a schedule over a lossy
//! simulated network, one device compromised mid-run with the §8 replay
//! attack, one honest device hit by an injected network delay — then the
//! event timeline and final lifecycle states.
//!
//! ```text
//! cargo run --release --example attestation_service
//! ```
//!
//! Everything is virtual-clock driven and seeded: run it twice and you
//! get the identical timeline.

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_attacks::forge::ReplayTap;
use sage_crypto::{DhGroup, EntropySource};
use sage_evidence::{verify_report, DeviceReport, FreshnessPolicy};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_service::{
    AttestationService, DeviceState, Fault, LinkProfile, ServiceConfig, SimNet, VERIFIER_NODE,
};
use sage_sgx_sim::SgxPlatform;
use sage_telemetry::Registry;
use sage_vf::VfParams;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn demo_entropy(seed: u8) -> impl EntropySource {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(name: &str, cfg: DeviceConfig, seed: u8) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session = GpuSession::install(Device::new(cfg), &params, 0xF1EE7).unwrap();
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(demo_entropy(seed))));
    m.name = name.to_string();
    m
}

fn main() {
    // A network with latency, jitter and a little random loss — enough to
    // exercise the timeout/retry path without drowning the timeline.
    let net = SimNet::new(
        2024,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 5,
            dup_per_mille: 0,
        },
    );
    // Evidence layer on: seal a fleet Merkle epoch every 100k ticks and
    // decay trust for devices that stop re-attesting (the windows sit
    // well above the 50k re-attest interval, so honest devices never
    // decay).
    let cfg = ServiceConfig {
        epoch_interval: 100_000,
        freshness: FreshnessPolicy {
            stale_after: 400_000,
            degraded_after: 800_000,
        },
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    // One registry for the whole control plane: attached before any
    // join, so every verifier verdict, bank take and simulator run of
    // the demo lands in it.
    let reg = Registry::new();
    svc.attach_telemetry(&reg);

    println!("== enrollment (calibrate + SAKE over the wire codec) ==");
    let platform = SgxPlatform::new([0x42; 16]);
    let mut ids = Vec::new();
    for (i, (name, dev)) in [
        ("gpu-big", DeviceConfig::sim_small()),
        ("gpu-a", DeviceConfig::sim_tiny()),
        ("gpu-evil", DeviceConfig::sim_tiny()),
    ]
    .into_iter()
    .enumerate()
    {
        let enclave = platform.launch(b"svc-verifier", &mut demo_entropy(81 + i as u8));
        let id = svc.join(member(name, dev, 31 + i as u8), enclave);
        println!(
            "  {name:8} joined as {id}, threshold {:?} cycles",
            svc.threshold_of(name)
        );
        ids.push(id);
    }

    println!("\n== steady state: every device passes its first rounds ==");
    svc.run_for(120_000);
    for s in svc.statuses() {
        println!(
            "  {:8} {:11} rounds_passed={}",
            s.name, s.state, s.rounds_passed
        );
    }

    println!("\n== mid-run events ==");
    println!("  * gpu-evil compromised: bus tap will replay a stale checksum");
    let session = svc.session_mut("gpu-evil").unwrap();
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));

    println!("  * gpu-a's next response delayed 300000 ticks (past the deadline)");
    svc.transport_mut().inject(Fault::DelayNext {
        src: ids[1],
        dst: VERIFIER_NODE,
        extra: 300_000,
        remaining: 1,
    });

    // Run until the attacker is quarantined (bounded for safety).
    for _ in 0..40 {
        svc.run_for(50_000);
        if svc.state_of("gpu-evil") == Some(DeviceState::Quarantined) {
            break;
        }
    }
    svc.run_for(200_000); // let gpu-a recover to Trusted

    println!("\n== event timeline (state changes and failures) ==");
    for e in svc.log().events() {
        use sage_service::EventKind::*;
        let line = match &e.kind {
            StateChanged { from, to } => format!("{from} -> {to}"),
            RoundFailed { round, reason } => {
                format!("round {round} FAILED ({})", reason.as_str())
            }
            LateResponse { round } => format!("late response for round {round}"),
            Restarted { round } => format!("round {round} restarted (timing allowance)"),
            _ => continue,
        };
        println!("  t={:>8}  {:8} {line}", e.at, e.device);
    }

    println!("\n== final fleet state ==");
    for s in svc.statuses() {
        println!(
            "  {:8} {:11} rounds_passed={:3} consecutive_failures={}",
            s.name, s.state, s.rounds_passed, s.consecutive_failures
        );
    }
    let c = svc.log().counters();
    println!(
        "\ncounters: {} rounds passed, {} value rejects, {} timeouts, {} quarantined",
        c.rounds_passed, c.value_rejects, c.timeouts, c.quarantines
    );
    let stats = svc.transport().stats();
    println!(
        "network: {} sent, {} delivered, {} dropped, {} fault-delayed",
        stats.sent, stats.delivered, stats.dropped, stats.fault_delayed
    );

    // The unified telemetry view of the same story: the scrape-ready
    // round-lifecycle and verdict series (the full export also carries
    // per-device bank and simulator families — see DESIGN.md §8).
    println!("\n== telemetry (service_* / verifier_* scrape excerpt) ==");
    for line in reg.to_prometheus().lines() {
        if line.starts_with("service_") || line.starts_with("verifier_rejects_total") {
            println!("  {line}");
        }
    }

    // The evidence layer's view: a self-contained DeviceReport for an
    // honest device, then verified *independently* — decoded from bytes
    // and checked with only the sealed epoch root and the device's
    // evidence key, exactly what a relying party outside the control
    // plane would hold (DESIGN.md §10).
    println!("\n== verifiable device report (gpu-big) ==");
    let report = svc.report_for("gpu-big").expect("an epoch has sealed");
    let epoch = svc.sealed_epochs().last().unwrap();
    println!(
        "  epoch {} sealed at t={} over {} devices, root {}…",
        epoch.index,
        epoch.at,
        epoch.leaves.len(),
        &hex(&epoch.root)[..16]
    );
    let encoded = report.encode();
    println!(
        "  report: {} bytes, {} proof steps, {} suffix records, claims {} (anchored at t={:?})",
        encoded.len(),
        report.proof.steps.len(),
        report.suffix.len(),
        report.claim.level.as_str(),
        report.claim.last_pass_at,
    );
    let trusted_root = epoch.root; // from the fleet ledger
    let evidence_key = svc.evidence_key_of("gpu-big").unwrap(); // over a confidential channel
    let independent = DeviceReport::decode(&encoded).expect("canonical bytes round-trip");
    let level = verify_report(&independent, &trusted_root, &evidence_key, svc.now())
        .expect("honest report verifies standalone");
    println!(
        "  independently verified from bytes: gpu-big is {} at t={} — no event log consulted",
        level.as_str(),
        svc.now()
    );
    // The same machinery rejects tampering: flip one claim field and the
    // envelope MAC fails before anything else is even looked at.
    let mut doctored = independent.clone();
    doctored.claim.asserted_at += 1;
    let err = verify_report(&doctored, &trusted_root, &evidence_key, svc.now()).unwrap_err();
    println!("  doctored twin rejected: {err} (cause: {})", err.cause());

    assert_eq!(svc.state_of("gpu-evil"), Some(DeviceState::Quarantined));
    assert_eq!(svc.state_of("gpu-big"), Some(DeviceState::Trusted));
    assert_eq!(svc.state_of("gpu-a"), Some(DeviceState::Trusted));
    println!("\nhonest devices held Trusted; the replaying device is quarantined.");
}
