//! Criterion micro-benchmarks of the building blocks: crypto primitives,
//! instruction encode/decode, checksum replay throughput, and a small
//! end-to-end device run. These complement the table harnesses (which
//! regenerate the paper's evaluation) with regression-grade numbers.

// Gated: `criterion` is not vendored in this dependency-free tree. Build
// with `--features criterion` after re-adding the dev-dependency locally.
#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!("micro benches require the `criterion` feature (and the criterion crate)");
}

#[cfg(feature = "criterion")]
mod gated {
    use criterion::{criterion_group, Criterion, Throughput};

    use sage_crypto::{cmac_aes128, sha256, AesCtr, BigUint, DhGroup};
    use sage_gpu_sim::{Device, DeviceConfig};
    use sage_isa::{encode, Instruction, Opcode, Operand, Program, Reg};
    use sage_vf::{build_vf, expected_checksum, VfParams};

    fn bench_crypto(c: &mut Criterion) {
        let mut g = c.benchmark_group("crypto");
        let data = vec![0xA5u8; 4096];
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_function("sha256/4KiB", |b| b.iter(|| sha256(&data)));
        g.bench_function("aes-ctr/4KiB", |b| {
            b.iter(|| {
                let mut ctr = AesCtr::new(&[7u8; 16], &[9u8; 16]);
                let mut buf = data.clone();
                ctr.apply(&mut buf);
                buf
            })
        });
        g.bench_function("cmac/4KiB", |b| b.iter(|| cmac_aes128(&[7u8; 16], &data)));
        g.finish();

        c.bench_function("dh/test-group-exchange", |b| {
            let group = DhGroup::test_group();
            let mut e = {
                let mut s = 7u8;
                move |buf: &mut [u8]| {
                    for x in buf.iter_mut() {
                        s = s.wrapping_mul(181).wrapping_add(101);
                        *x = s;
                    }
                }
            };
            let alice = group.generate(&mut e);
            let bob = group.generate(&mut e);
            b.iter(|| group.shared_secret(&alice, &bob.public))
        });

        c.bench_function("bignum/modpow-256bit", |b| {
            let base = BigUint::from_bytes_be(&[0xABu8; 32]);
            let exp = BigUint::from_bytes_be(&[0xCDu8; 32]);
            let mut modulus_bytes = [0xFFu8; 32];
            modulus_bytes[31] = 0x61;
            let m = BigUint::from_bytes_be(&modulus_bytes);
            b.iter(|| base.modpow(&exp, &m))
        });
    }

    fn bench_isa(c: &mut Criterion) {
        let mut insn = Instruction::new(Opcode::Imad);
        insn.dst = Reg(4);
        insn.srcs = [Reg(4).into(), Operand::Imm(0x11), Reg(5).into()];

        c.bench_function("isa/encode", |b| b.iter(|| encode::encode(&insn)));
        let word = encode::encode(&insn);
        c.bench_function("isa/decode", |b| b.iter(|| encode::decode(word).unwrap()));

        let src = "IMAD R4, R4, 0x11, R5 ;\n".repeat(64);
        c.bench_function("isa/assemble-64", |b| {
            b.iter(|| Program::assemble(&src).unwrap())
        });
    }

    fn bench_vf(c: &mut Criterion) {
        let params = VfParams::test_tiny();
        c.bench_function("vf/build", |b| {
            b.iter(|| build_vf(&params, 0x1000, 7).unwrap())
        });

        let build = build_vf(&params, 0x1000, 7).unwrap();
        let ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8; 16]).collect();
        let steps = params.total_steps() * params.total_threads();
        let mut g = c.benchmark_group("vf");
        g.throughput(Throughput::Elements(steps));
        g.bench_function("replay", |b| b.iter(|| expected_checksum(&build, &ch)));
        g.finish();
    }

    fn bench_device(c: &mut Criterion) {
        let params = VfParams::test_tiny();
        c.bench_function("device/checksum-run", |b| {
            b.iter(|| {
                let dev = Device::new(DeviceConfig::sim_tiny());
                let mut session = sage::GpuSession::install(dev, &params, 7).unwrap();
                let ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8; 16]).collect();
                session.run_checksum(&ch).unwrap()
            })
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_crypto, bench_isa, bench_vf, bench_device
    }
}

#[cfg(feature = "criterion")]
fn main() {
    gated::benches();
}
