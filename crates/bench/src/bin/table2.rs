//! Regenerates Table 2 (§7.4): execution time of the user kernel under
//! SAGE, compared to the baseline and the verification overhead.
//!
//! The paper's claim: SAGE runs the user kernel *unmodified after*
//! verification, so its execution time equals the baseline; the checksum
//! adds a constant, kernel-independent overhead. Matrix sizes are scaled
//! (paper: 320 / 6400; here: 64 / 320) to simulator throughput.

use sage::kernels::{load_kernel, matmul_host, matmul_kernel, MATMUL_REGS};
use sage::GpuSession;
use sage_bench::{bench_device, experiments, print_table};
use sage_gpu_sim::{Device, LaunchParams};
use sage_vf::expected_checksum;

fn run_matmul(session: &mut GpuSession, n: usize) -> u64 {
    let bytes =
        |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect() };
    let a: Vec<f32> = (0..n * n)
        .map(|i| ((i * 7 % 23) as f32 - 11.0) * 0.25)
        .collect();
    let b: Vec<f32> = (0..n * n)
        .map(|i| ((i * 13 % 19) as f32 - 9.0) * 0.5)
        .collect();
    let abuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let bbuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    let cbuf = session.dev.alloc((4 * n * n) as u32).unwrap();
    session.dev.memcpy_h2d(abuf, &bytes(&a)).unwrap();
    session.dev.memcpy_h2d(bbuf, &bytes(&b)).unwrap();
    let entry = load_kernel(&mut session.dev, &matmul_kernel()).unwrap();
    let (report, _) = session
        .dev
        .run_single(LaunchParams {
            ctx: session.ctx,
            entry_pc: entry,
            grid_dim: n as u32,
            block_dim: (n as u32).div_ceil(32) * 32,
            regs_per_thread: MATMUL_REGS,
            smem_bytes: 0,
            params: vec![abuf, bbuf, cbuf, n as u32],
        })
        .unwrap();
    // Sanity: the result is correct.
    let raw = session.dev.memcpy_d2h(cbuf, (4 * n * n) as u32).unwrap();
    let got: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    assert_eq!(got, matmul_host(&a, &b, n), "matmul result mismatch");
    report.completion_cycle
}

fn main() {
    let cfg = bench_device();
    let params = experiments::exp1(&cfg);
    eprintln!("running Table 2 on {} …", cfg.name);

    let sizes = [64usize, 320];
    let mut rows = Vec::new();
    for &n in &sizes {
        eprintln!("  matrix {n}x{n}…");
        // Baseline: kernel alone on a fresh device.
        let dev = Device::new(cfg.clone());
        let mut baseline = GpuSession::install(dev, &params, 0x7AB2).unwrap();
        let base_cycles = run_matmul(&mut baseline, n);

        // SAGE: verification first, then the (unmodified) kernel.
        let dev = Device::new(cfg.clone());
        let mut session = GpuSession::install(dev, &params, 0x7AB2).unwrap();
        let ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8; 16]).collect();
        let (got, verif_cycles) = session.run_checksum(&ch).unwrap();
        assert_eq!(got, expected_checksum(session.build(), &ch));
        let sage_cycles = run_matmul(&mut session, n);

        rows.push((
            format!("{n} x {n}"),
            vec![
                base_cycles.to_string(),
                verif_cycles.to_string(),
                sage_cycles.to_string(),
                format!(
                    "{:.2}%",
                    100.0 * (sage_cycles as f64 - base_cycles as f64).abs() / base_cycles as f64
                ),
            ],
        ));
    }

    print_table(
        "Table 2: user-kernel execution (cycles)",
        &[
            "Base".into(),
            "Verif.".into(),
            "SAGE".into(),
            "|SAGE-Base|".into(),
        ],
        &rows,
    );
    println!(
        "\nShape check (paper §7.4): SAGE ≈ Base for both sizes (kernel runs unmodified);\n\
         the verification overhead is constant and independent of the kernel."
    );
}
