//! Reproduces §6.6: statistical evaluation and throughput of the
//! race-condition TRNG.
//!
//! The paper's GPU TRNG passes NIST SP 800-22, DIEHARD and ENT, yields
//! 7.999996 bits/byte, and sustains ~4 kB/s (≈ 8 ms per 256-bit output).
//! The host-race substitute (see DESIGN.md) is evaluated with the same
//! ENT measurements and a NIST subset; raw (unconditioned) samples are
//! shown alongside to demonstrate the conditioning stage.

use std::time::Instant;

use sage_bench::print_table;
use sage_trng::{nist, stats::EntReport, RaceTrng};

fn main() {
    let sample_bytes = std::env::var("SAGE_TRNG_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64 * 1024usize);

    eprintln!("sampling {sample_bytes} conditioned bytes from the race TRNG…");
    let mut trng = RaceTrng::start(Default::default());

    // Throughput measurement.
    let t0 = Instant::now();
    let data = trng.bytes(sample_bytes);
    let dt = t0.elapsed().as_secs_f64();
    let throughput = sample_bytes as f64 / dt;

    // Raw (unconditioned) reference stream.
    let raw: Vec<u8> = (0..sample_bytes / 8)
        .flat_map(|_| trng.raw_sample().to_le_bytes())
        .collect();
    trng.stop();

    let cooked = EntReport::analyze(&data);
    let rawr = EntReport::analyze(&raw);

    let rows = vec![
        (
            "conditioned".to_string(),
            vec![
                format!("{:.6}", cooked.entropy_bits_per_byte),
                format!("{:.1}", cooked.chi_square),
                format!("{:.2}", cooked.mean),
                format!("{:.4}", cooked.monte_carlo_pi),
                format!("{:.5}", cooked.serial_correlation),
            ],
        ),
        (
            "raw samples".to_string(),
            vec![
                format!("{:.6}", rawr.entropy_bits_per_byte),
                format!("{:.1}", rawr.chi_square),
                format!("{:.2}", rawr.mean),
                format!("{:.4}", rawr.monte_carlo_pi),
                format!("{:.5}", rawr.serial_correlation),
            ],
        ),
    ];
    print_table(
        "§6.6: ENT analysis",
        &[
            "entropy b/B".into(),
            "chi^2".into(),
            "mean".into(),
            "MC pi".into(),
            "serial corr".into(),
        ],
        &rows,
    );
    println!("(paper: 7.999996 bits of entropy per byte on the conditioned output)");

    println!("\nNIST SP 800-22 subset on the conditioned output:");
    let mut pass = 0;
    let battery = nist::run_battery(&data);
    for (name, outcome) in &battery {
        println!(
            "  {name:22} p = {:.4}  {}",
            outcome.p_value,
            if outcome.passed() { "PASS" } else { "FAIL" }
        );
        pass += outcome.passed() as usize;
    }
    println!("  → {pass}/{} tests passed", battery.len());

    println!(
        "\nthroughput: {:.1} B/s ({:.3} ms per 256-bit output; paper: ~4 kB/s, 8 ms/256 b on GPU)",
        throughput,
        32.0 / throughput * 1e3
    );
}
