//! Chaos soak harness: the robustness acceptance gate.
//!
//! Runs a fleet through multi-thousand-tick seeded chaos schedules —
//! device-level bit flips on the challenge DMA path, SM stalls, clock
//! skew — layered on a jittery, lossy simulated network, and asserts the
//! three properties the chaos engine must never break:
//!
//! 1. **Zero false accepts.** Every round that ran with an injected bit
//!    flip active must be rejected. The oracle counts each device's
//!    applied flips at `RoundStarted` and again at the round's verdict:
//!    a `RoundPassed` spanning a flip is a false accept and fails the
//!    soak immediately.
//! 2. **Reconvergence.** Faults are scheduled in a bounded window; once
//!    they clear, every device must return to `Trusted` (transient
//!    faults cost bounded backoff, never the device).
//! 3. **Crash-safe determinism.** Each seed is run twice — once
//!    uninterrupted, once with a control-plane crash at mid-schedule
//!    (snapshot → drop the service → restore from the surviving
//!    endpoints). The two histories must be byte-identical.
//!
//! Everything is seeded: same seed ⇒ identical fleet history, identical
//! fault schedule, identical verdict sequence. Results (per seed:
//! verdict counters, fault counters, history hash, crash equality) go to
//! `BENCH_soak.json` for CI trend tracking.
//!
//! Usage:
//!   soak [--seeds A,B,C] [--ticks N] [--devices N] [--out PATH]

use std::collections::HashMap;
use std::time::Instant;

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_crypto::DhGroup;
use sage_gpu_sim::{ChaosSpec, Device, DeviceConfig, FaultPlan};
use sage_service::{
    AttestationService, DeviceState, EventKind, Fault, LinkProfile, ServiceConfig, SimNet,
    VERIFIER_NODE,
};
use sage_sgx_sim::SgxPlatform;
use sage_telemetry::{MetricValue, Registry};
use sage_vf::VfParams;

/// Virtual ticks the fleet gets to settle to `Trusted` before chaos.
const SETTLE_TICKS: u64 = 45_000;
/// Run horizon (device runs ≈ attestation rounds) chaos lands on.
const CHAOS_RUNS: u64 = 5;

/// The soak's control-plane config: defaults plus the timeout-restart
/// allowance, so link outages (which the chaos mix injects on purpose)
/// are bounded by the watchdog and retried instead of burning the hard
/// quarantine budget.
fn soak_cfg() -> ServiceConfig {
    let mut cfg = ServiceConfig::default();
    cfg.policy.restart_on_timeout = true;
    cfg
}

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session = GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7)
        .expect("install");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:02}");
    m
}

fn build_fleet(seed: u64, devices: usize) -> AttestationService<SimNet> {
    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 5,
            dup_per_mille: 0,
        },
    );
    let mut svc = AttestationService::new(soak_cfg(), DhGroup::test_group(), net);
    let platform = SgxPlatform::new([7u8; 16]);
    for i in 0..devices {
        let enclave_seed = (seed as u8).wrapping_add(i as u8).wrapping_mul(5) | 1;
        let enclave = platform.launch(b"soak-verifier", &mut entropy(enclave_seed));
        svc.join(member(i, seed), enclave);
    }
    svc
}

/// Installs a seeded chaos campaign on every device: transient challenge
/// flips (must be caught as wrong values), SM stalls (must be caught as
/// timing rejects and absorbed by the §7.2 restart allowance or backoff)
/// and clock skews, all parked right after the device's current run.
fn install_chaos(svc: &mut AttestationService<SimNet>, devices: usize, seed: u64) {
    for i in 0..devices {
        let name = format!("gpu-{i:02}");
        let session = svc.session_mut(&name).expect("device is managed");
        let layout = session.build().layout;
        let num_sms = session.dev.cfg.num_sms;
        let spec = ChaosSpec {
            runs: CHAOS_RUNS,
            // Flips land on the challenge table: rewritten every round,
            // so each flip corrupts exactly the round it fires on — and
            // that round MUST fail.
            flip_region: (layout.challenge_addr(0), 16 * layout.num_blocks),
            transient_flips: 1,
            persistent_flips: 0,
            stalls: 1,
            num_sms,
            max_stall: 4_000,
            skews: 1,
            max_skew: 200,
        };
        let next_run = session.dev.fault_run_index();
        let plan = FaultPlan::seeded(seed ^ (i as u64) << 8, &spec).offset(next_run);
        session.dev.install_fault_hook(Box::new(plan));
    }
}

#[derive(Default)]
struct Tally {
    false_accepts: u64,
    flips: u64,
    stalls: u64,
    skews: u64,
}

/// FNV-1a over the formatted event stream: one u64 that pins the entire
/// history for the JSON report.
fn history_hash(svc: &AttestationService<SimNet>) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for e in svc.log().events() {
        for b in format!("{}|{}|{:?};", e.at, e.device, e.kind).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

struct SoakRun {
    svc: AttestationService<SimNet>,
    tally: Tally,
    reg: Registry,
}

/// The exported total of every series named `name`, across label sets.
fn counter_total(reg: &Registry, name: &str) -> u64 {
    reg.collect()
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| match v {
            MetricValue::Counter(c) => *c,
            _ => panic!("{name} is not a counter"),
        })
        .sum()
}

/// Prometheus export with the `vf_bank_*` family dropped. Bank stock is
/// ephemeral by design — it lives outside the snapshot and is recomputed
/// after a restore — so its effectiveness counters legitimately restart
/// at a crash; every other family must survive one byte-identically.
fn durable_prom(reg: &Registry) -> String {
    reg.to_prometheus()
        .lines()
        .filter(|l| !l.contains("vf_bank_"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One soak universe: settle, unleash chaos, drive event-by-event with
/// the false-accept oracle watching every verdict; optionally crash and
/// restore the control plane at mid-schedule.
fn run_soak(seed: u64, devices: usize, ticks: u64, crash: bool) -> SoakRun {
    let mut svc = build_fleet(seed, devices);
    svc.run_for(SETTLE_TICKS);
    for i in 0..devices {
        let name = format!("gpu-{i:02}");
        assert_eq!(
            svc.state_of(&name),
            Some(DeviceState::Trusted),
            "seed {seed}: {name} failed to settle before chaos"
        );
    }
    install_chaos(&mut svc, devices, seed);
    // Plus a recurring link outage: the challenge path to device 0 flaps
    // (drops everything sent in the open span of each cycle) until
    // mid-horizon, then the link heals and the device must reconverge.
    let device0 = svc
        .statuses()
        .iter()
        .find(|s| s.name == "gpu-00")
        .expect("device 0 is managed")
        .node;
    let window_until = svc.now() + ticks / 2;
    svc.transport_mut().inject(Fault::seeded_window(
        seed,
        VERIFIER_NODE,
        device0,
        110_000,
        15_000,
        0,
        window_until,
    ));

    let end = svc.now() + ticks;
    let crash_at = svc.now() + ticks / 2;
    let mut crashed = false;
    let mut tally = Tally::default();
    // Applied-flip count per device at its round's RoundStarted.
    let mut flips_at_start: HashMap<String, u64> = HashMap::new();
    let mut scanned = 0usize;

    while svc.now() < end {
        match svc.next_event_at() {
            Some(t) if t <= end => svc.run_until(t),
            _ => svc.run_until(end),
        }
        if crash && !crashed && svc.now() >= crash_at {
            // The control plane dies mid-schedule: serialize, drop the
            // service, and restore from the surviving endpoints.
            let snap = svc.snapshot();
            let (net, endpoints) = svc.into_endpoints();
            svc = AttestationService::restore(
                soak_cfg(),
                DhGroup::test_group(),
                net,
                &snap,
                endpoints,
            )
            .expect("snapshot restores against its own endpoints");
            crashed = true;
        }
        // Scan new events through the false-accept oracle. Rounds are
        // serialized per device, so between a device's RoundStarted and
        // its verdict the only run on that device is that round's.
        let fresh: Vec<_> = svc.log().events()[scanned..].to_vec();
        scanned += fresh.len();
        for e in &fresh {
            match &e.kind {
                EventKind::RoundStarted { .. } => {
                    let flips = svc
                        .session_mut(&e.device)
                        .map(|s| s.dev.faults_applied().flips)
                        .unwrap_or(0);
                    flips_at_start.insert(e.device.clone(), flips);
                }
                EventKind::RoundPassed { .. } => {
                    let flips_now = svc
                        .session_mut(&e.device)
                        .map(|s| s.dev.faults_applied().flips)
                        .unwrap_or(0);
                    let at_start = flips_at_start.get(&e.device).copied().unwrap_or(0);
                    if flips_now > at_start {
                        tally.false_accepts += 1;
                        eprintln!(
                            "FALSE ACCEPT: seed {seed} device {} passed a round spanning {} flip(s) at t={}",
                            e.device,
                            flips_now - at_start,
                            e.at
                        );
                    }
                }
                _ => {}
            }
        }
    }

    for i in 0..devices {
        let name = format!("gpu-{i:02}");
        let counters = svc
            .session_mut(&name)
            .map(|s| s.dev.faults_applied())
            .unwrap_or_default();
        tally.flips += counters.flips;
        tally.stalls += counters.stalls;
        tally.skews += counters.skews;
    }
    // Attached after the horizon: the event log replays its full
    // history into the registry, so the `service_*` series describe the
    // whole universe — including, in the crash twin, everything from
    // before the restore.
    let reg = Registry::new();
    svc.attach_telemetry(&reg);
    SoakRun { svc, tally, reg }
}

fn main() {
    let mut seeds: Vec<u64> = vec![5, 6, 7];
    let mut ticks = 800_000u64;
    let mut devices = 3usize;
    let mut out_path = String::from("BENCH_soak.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .expect("--seeds A,B,C")
                    .split(',')
                    .map(|s| s.trim().parse().expect("seed must be a u64"))
                    .collect();
            }
            "--ticks" => ticks = args.next().and_then(|v| v.parse().ok()).expect("--ticks N"),
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: soak [--seeds A,B,C] [--ticks N] [--devices N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    assert!(!seeds.is_empty() && devices > 0 && ticks >= 100_000);

    eprintln!(
        "soak: {} seed(s) x {devices} devices x {ticks} ticks (+ crash-restart twin each)",
        seeds.len()
    );
    let mut reports = Vec::new();
    let mut last_prom = String::new();
    for &seed in &seeds {
        let t0 = Instant::now();
        let baseline = run_soak(seed, devices, ticks, false);
        let crashed = run_soak(seed, devices, ticks, true);
        let wall = t0.elapsed().as_secs_f64();

        // Property 3: the crashed universe is byte-identical to the
        // uninterrupted one — state and full event history.
        let crash_match = baseline.svc.snapshot() == crashed.svc.snapshot()
            && baseline.svc.snapshot_json() == crashed.svc.snapshot_json();
        assert!(
            crash_match,
            "seed {seed}: crash-restart universe diverged from the uninterrupted one"
        );

        // Property 1: zero false accepts, in both universes.
        let false_accepts = baseline.tally.false_accepts + crashed.tally.false_accepts;
        assert_eq!(false_accepts, 0, "seed {seed}: false accepts detected");

        // Property 2: chaos cleared long before the horizon, so every
        // device must have reconverged to Trusted.
        let mut reconverged = true;
        for i in 0..devices {
            let name = format!("gpu-{i:02}");
            let state = baseline.svc.state_of(&name);
            if state != Some(DeviceState::Trusted) {
                reconverged = false;
                eprintln!("seed {seed}: {name} ended {state:?}, not Trusted");
            }
        }
        assert!(reconverged, "seed {seed}: fleet did not reconverge");

        let c = baseline.svc.log().counters();
        let hash = history_hash(&baseline.svc);
        assert_eq!(hash, history_hash(&crashed.svc));

        // The telemetry layer must be crash-safe too: replaying the
        // restored history into a fresh registry yields the same
        // export as in the universe that never crashed (minus the
        // deliberately ephemeral bank family — see `durable_prom`).
        assert_eq!(
            durable_prom(&baseline.reg),
            durable_prom(&crashed.reg),
            "seed {seed}: telemetry exports diverged across crash-restore"
        );
        assert_eq!(
            counter_total(&baseline.reg, "service_rounds_passed_total"),
            c.rounds_passed,
            "seed {seed}: telemetry rounds-passed diverged from the event log"
        );
        last_prom = baseline.reg.to_prometheus();
        eprintln!(
            "seed {seed}: {} passed / {} value-rejects / {} timing-rejects / {} timeouts / {} restarts, {} flips {} stalls {} skews, hash {hash:016x}, crash ok ({wall:.2}s)",
            c.rounds_passed,
            c.value_rejects,
            c.timing_rejects,
            c.timeouts,
            c.restarts,
            baseline.tally.flips,
            baseline.tally.stalls,
            baseline.tally.skews,
        );
        reports.push(format!(
            "    {{\"seed\": {seed}, \"rounds_passed\": {}, \"value_rejects\": {}, \"timing_rejects\": {}, \"timeouts\": {}, \"restarts\": {}, \"quarantines\": {}, \"faults\": {{\"flips\": {}, \"stalls\": {}, \"skews\": {}}}, \"false_accepts\": 0, \"reconverged\": true, \"crash_restart_identical\": true, \"telemetry_durable_after_crash\": true, \"history_hash\": \"{hash:016x}\", \"wall_seconds\": {wall:.3}}}",
            c.rounds_passed,
            c.value_rejects,
            c.timing_rejects,
            c.timeouts,
            c.restarts,
            c.quarantines,
            baseline.tally.flips,
            baseline.tally.stalls,
            baseline.tally.skews,
        ));
    }

    let out = format!(
        "{{\n  \"host\": {},\n  \"devices\": {devices},\n  \"ticks\": {ticks},\n  \"chaos_runs\": {CHAOS_RUNS},\n  \"seeds\": [\n{}\n  ]\n}}\n",
        sage_bench::host_stanza(),
        reports.join(",\n")
    );
    std::fs::write(&out_path, out).expect("write BENCH_soak.json");
    // The last seed's uninterrupted-universe registry in scrape form,
    // next to the JSON artifact.
    let prom_path = match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.prom"),
        None => format!("{out_path}.prom"),
    };
    std::fs::write(&prom_path, last_prom).expect("write Prometheus export");
    println!(
        "soak: {} seed(s) clean — zero false accepts, full reconvergence, crash-restart byte-identical (telemetry included)",
        seeds.len()
    );
    println!("wrote {out_path} and {prom_path}");
}
