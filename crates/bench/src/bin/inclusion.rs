//! Reproduces §7.3 "Memory Region Inclusion Probability".
//!
//! The paper prints `(1 − 1/524288)^1000000 = 0.082`; the expression
//! actually evaluates to ≈ 0.148 (the printed result corresponds to
//! ≈ 1.31 M accesses). Both values are shown, plus a Monte-Carlo check
//! and the coverage of the bench VF configurations.

use sage_bench::{bench_device, experiments, print_table};
use sage_vf::coverage::{monte_carlo_uncovered, never_included_probability, total_accesses};

fn main() {
    println!("=== §7.3: inclusion probability ===\n");
    let words = 524_288u64;

    println!("paper expression (1 - 1/{words})^1000000:");
    println!(
        "  analytic     = {:.4}   (paper prints 0.082; e^(-1000000/524288) = e^-1.907 ≈ 0.148 —",
        never_included_probability(words, 1_000_000)
    );
    println!("  the printed number corresponds to ~1.31 M accesses:");
    println!(
        "  (1 - 1/{words})^1310000 = {:.4}",
        never_included_probability(words, 1_310_000)
    );

    println!("\nsweep: probability a fixed word is never included");
    let mut rows = Vec::new();
    for accesses in [100_000u64, 500_000, 1_000_000, 2_000_000, 5_000_000] {
        rows.push((
            format!("{accesses} accesses"),
            vec![format!(
                "{:.6}",
                never_included_probability(words, accesses)
            )],
        ));
    }
    print_table("analytic sweep (524288 words)", &["P(never)".into()], &rows);

    // Monte-Carlo cross-check at a reduced size.
    let mc_words = 65_536u32;
    let mc_accesses = 131_072u64;
    let mc = monte_carlo_uncovered(mc_words, mc_accesses, 0xC0FFEE);
    let an = never_included_probability(mc_words as u64, mc_accesses);
    println!(
        "\nMonte-Carlo check ({mc_words} words, {mc_accesses} accesses): \
         measured {mc:.4} vs analytic {an:.4}"
    );

    // Coverage of the bench configurations.
    let cfg = bench_device();
    println!("\ncoverage of the bench VF configurations (region = 131072 words):");
    for (name, p) in [
        ("exp 1", experiments::exp1(&cfg)),
        ("exp 3", experiments::exp3(&cfg)),
        ("exp 4", experiments::exp4(&cfg)),
    ] {
        let a = total_accesses(&p);
        let w = (p.data_bytes / 4) as u64;
        println!(
            "  {name}: {a} accesses → P(word never included) = {:.3e}",
            never_included_probability(w, a)
        );
    }
    println!(
        "\nEvery bench configuration drives the never-included probability far\n\
         below the paper's single-SM figure because all grid threads traverse\n\
         the same region (the paper counts per-block accesses)."
    );
}
