//! Real-socket transport benchmark: attestation sessions per second,
//! round-trip latency percentiles, and resume behaviour under chaos.
//!
//! A fleet of modeled devices dials the verifier over Unix-domain
//! sockets — optionally through the in-path [`ChaosProxy`] — enrolls
//! (calibration + SAKE crossing real frames), then re-attests until
//! every honest device has passed `--rounds` rounds. One device turns
//! cheater after its first round and must be quarantined: the run
//! **asserts zero false accepts** in every regime, gated or not.
//!
//! Regimes (`--regime`):
//! * `clean` — direct relay, no faults: the throughput baseline.
//! * `torn` — every frame torn into 1–7 byte pieces with random
//!   sub-millisecond delays: framing-layer stress.
//! * `severing` — torn, plus every live connection severed after each
//!   of the first two fleet round milestones: devices must resume
//!   their SAKE sessions (never re-enroll) to finish the run.
//!
//! Reported, to `BENCH_net.json`: sessions/sec, challenge→response RTT
//! p50/p99 (microseconds, from the transport's in-band samples), resume
//! and shed counters, and the shared `host` stanza. `--gate` turns the
//! run into a CI assertion: a core-scaled sessions/sec floor, a ≥99%
//! resume success rate, and zero false accepts.
//!
//! Usage:
//!   netperf [--devices N] [--rounds N] [--seed N]
//!           [--regime clean|torn|severing] [--gate] [--out PATH]

use std::time::{Duration, Instant};

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_crypto::DhGroup;
use sage_gpu_sim::{Device, DeviceConfig};
use sage_service::{
    AttestationService, Bind, ChaosProfile, ChaosProxy, ClockDriver, DeviceLink, DeviceLinkConfig,
    DeviceState, LinkConfig, Pump, ServiceConfig, TcpTransport,
};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:05}");
    m
}

fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The core-scaled throughput floor: a real-socket fleet must sustain
/// 200 sessions/sec on 8 cores and up, linearly less on smaller hosts.
/// (Each session is a full challenge→checksum→verdict round over the
/// wire; the figure is bounded by socket RTT, not checksum replay.)
fn required_sessions_per_sec(cores: usize) -> f64 {
    200.0 * (cores as f64 / 8.0).min(1.0)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut honest = 7usize;
    let mut rounds = 5u64;
    let mut seed = 7u64;
    let mut regime = String::from("clean");
    let mut gate = false;
    let mut out_path = String::from("BENCH_net.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                honest = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--regime" => regime = args.next().expect("--regime clean|torn|severing"),
            "--gate" => gate = true,
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: netperf [--devices N] [--rounds N] [--seed N] [--regime clean|torn|severing] [--gate] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(honest > 0 && rounds > 0);
    let devices = honest + 1; // +1 mid-life cheater
    let cheater = format!("gpu-{:05}", devices - 1);

    let dir = std::env::temp_dir().join(format!("sage-netperf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    let sock = dir.join("verifier.sock");
    let net = TcpTransport::bind(Bind::Uds(sock.clone()), LinkConfig::default())
        .expect("bind verifier socket");
    let mut svc = AttestationService::new(
        ServiceConfig {
            reattest_interval: 20_000,
            backoff_jitter: 500,
            ..ServiceConfig::default()
        },
        DhGroup::test_group(),
        net,
    );

    let (proxy, severs_wanted) = match regime.as_str() {
        "clean" => (None, 0u64),
        "torn" => (
            Some(
                ChaosProxy::spawn(
                    Bind::Uds(dir.join("proxy.sock")),
                    Bind::Uds(sock.clone()),
                    ChaosProfile::torn(seed ^ 0x000C_4A05),
                )
                .expect("spawn proxy"),
            ),
            0,
        ),
        "severing" => (
            Some(
                ChaosProxy::spawn(
                    Bind::Uds(dir.join("proxy.sock")),
                    Bind::Uds(sock.clone()),
                    ChaosProfile::torn(seed ^ 0x000C_4A05),
                )
                .expect("spawn proxy"),
            ),
            2,
        ),
        other => {
            eprintln!("unknown regime {other} (clean|torn|severing)");
            std::process::exit(2);
        }
    };
    let dial = match &proxy {
        Some(p) => p.local_bind(),
        None => Bind::Uds(sock.clone()),
    };

    eprintln!("netperf: {devices} devices ({honest} honest + 1 cheater), {rounds} rounds, regime {regime}, {cores} cores");
    let links: Vec<DeviceLink> = (0..devices)
        .map(|i| {
            DeviceLink::spawn(
                member(i, seed),
                DhGroup::test_group(),
                DeviceLinkConfig {
                    connect: dial.clone(),
                    compromise_after: (i == devices - 1).then_some(1),
                    ..DeviceLinkConfig::default()
                },
            )
        })
        .collect();

    // Enroll the whole fleet at virtual tick 0, in name order.
    let t0 = Instant::now();
    let wall_deadline = t0 + Duration::from_secs(120);
    while svc.transport().pending_enrolls() < devices {
        assert!(Instant::now() < wall_deadline, "fleet never connected");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut pending = Vec::new();
    while let Some(p) = svc.transport_mut().take_pending_enroll() {
        pending.push(p);
    }
    pending.sort_by(|a, b| a.0.cmp(&b.0));
    let platform = SgxPlatform::new([7u8; 16]);
    for (name, stream) in pending {
        let index: usize = name[4..].parse().expect("gpu-NNNNN");
        let enclave = platform.launch(b"net-verifier", &mut entropy((seed as u8) | 1));
        svc.join_remote(member(index, seed), enclave, stream);
    }
    let enroll_wall = t0.elapsed().as_secs_f64();
    svc.transport().take_rtt_samples(); // discard calibration-era samples

    let honest_floor = |svc: &AttestationService<TcpTransport>| {
        svc.statuses()
            .iter()
            .filter(|s| s.name != cheater)
            .map(|s| s.rounds_passed)
            .min()
            .unwrap_or(0)
    };
    let mut driver = ClockDriver::new(200_000);
    let mut severs_done = 0u64;
    let t1 = Instant::now();
    let mut iters = 0u32;
    loop {
        iters += 1;
        assert!(iters < 2_000, "fleet failed to converge");
        let target = svc.now() + 10_000;
        match driver.run_until(&mut svc, target) {
            Pump::Target => {}
            Pump::Enrolls => panic!("re-enrollment attempted; resume must suffice"),
        }
        if let Some(p) = &proxy {
            if severs_done < severs_wanted && honest_floor(&svc) > severs_done {
                p.sever_all();
                severs_done += 1;
            }
        }
        let done = honest_floor(&svc) >= rounds
            && svc.state_of(&cheater) == Some(DeviceState::Quarantined)
            && severs_done >= severs_wanted;
        if done {
            break;
        }
    }
    let steady_wall = t1.elapsed().as_secs_f64();

    // ---- verdicts and counters ------------------------------------------
    let statuses = svc.statuses();
    let mut false_accepts = 0u64;
    for s in &statuses {
        if s.name == cheater {
            // The cheater passed exactly its one honest round; anything
            // beyond that is a false accept, as is any non-quarantined
            // terminal state.
            false_accepts += s.rounds_passed.saturating_sub(1);
            if s.state != DeviceState::Quarantined {
                false_accepts += 1;
            }
        }
    }
    assert_eq!(
        false_accepts,
        0,
        "FALSE ACCEPT: cheater ended {:?} with {} rounds passed",
        svc.state_of(&cheater),
        statuses
            .iter()
            .find(|s| s.name == cheater)
            .map(|s| s.rounds_passed)
            .unwrap_or(0)
    );
    for s in statuses.iter().filter(|s| s.name != cheater) {
        assert_eq!(s.state, DeviceState::Trusted, "{} not Trusted", s.name);
    }

    let sessions_total: u64 = svc.log().counters().rounds_passed;
    let sessions_per_sec = sessions_total as f64 / steady_wall.max(1e-9);
    let mut rtt: Vec<u64> = svc.transport().take_rtt_samples();
    rtt.sort_unstable();
    let rtt_p50_us = percentile(&rtt, 0.50) as f64 / 1_000.0;
    let rtt_p99_us = percentile(&rtt, 0.99) as f64 / 1_000.0;
    let stats = svc.transport().stats();
    let link_downs = svc.log().counters().link_downs;
    let mut resumes_total = 0u64;
    let mut enrollments_total = 0u64;
    for link in links {
        let r = link.stop();
        resumes_total += r.resumes;
        enrollments_total += r.enrollments;
    }
    assert_eq!(
        enrollments_total, devices as u64,
        "re-enrollment observed: {} enrollments for {} devices",
        enrollments_total, devices
    );
    let resume_attempts = stats.reconnects + stats.handshake_rejects;
    let resume_success_rate = if resume_attempts == 0 {
        1.0
    } else {
        stats.reconnects as f64 / resume_attempts as f64
    };
    let required = required_sessions_per_sec(cores);
    let throughput_pass = sessions_per_sec >= required;
    let resume_pass = resume_success_rate >= 0.99
        && (severs_wanted == 0 || stats.reconnects >= severs_wanted * devices as u64);
    let pass = throughput_pass && resume_pass;
    let rss = peak_rss_bytes();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"regime\": \"{regime}\",\n  \"devices\": {devices},\n  \"target_rounds\": {rounds},\n  \"seed\": {seed},\n"
    ));
    out.push_str(&format!(
        "  \"enroll_wall_seconds\": {enroll_wall:.6},\n  \"steady_wall_seconds\": {steady_wall:.6},\n"
    ));
    out.push_str(&format!(
        "  \"sessions_total\": {sessions_total},\n  \"sessions_per_sec\": {sessions_per_sec:.1},\n"
    ));
    out.push_str(&format!(
        "  \"rtt_us\": {{\"samples\": {}, \"p50\": {rtt_p50_us:.1}, \"p99\": {rtt_p99_us:.1}}},\n",
        rtt.len()
    ));
    out.push_str(&format!(
        "  \"severs\": {severs_done}, \"resumes\": {resumes_total}, \"reconnects\": {}, \"handshake_rejects\": {}, \"link_downs\": {link_downs},\n",
        stats.reconnects, stats.handshake_rejects
    ));
    out.push_str(&format!(
        "  \"frames_shed\": {}, \"heartbeat_misses\": {}, \"codec_disconnects\": {},\n",
        stats.frames_shed, stats.heartbeat_misses, stats.codec_disconnects
    ));
    out.push_str(&format!(
        "  \"false_accepts\": {false_accepts},\n  \"resume_success_rate\": {resume_success_rate:.4},\n  \"peak_rss_bytes\": {rss},\n"
    ));
    out.push_str(&format!(
        "  \"gate\": {{\"required_sessions_per_sec\": {required:.1}, \"resume_rate_required\": 0.99, \"pass\": {pass}}}\n"
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("write BENCH_net.json");

    println!(
        "{sessions_total} sessions in {steady_wall:.3}s ({sessions_per_sec:.1}/s; gate {required:.0} on {cores} cores); rtt p50 {rtt_p50_us:.0}us p99 {rtt_p99_us:.0}us"
    );
    println!(
        "regime {regime}: {severs_done} fleet severs, {resumes_total} device resumes, {} server reconnects, resume rate {resume_success_rate:.3}, 0 false accepts",
        stats.reconnects
    );
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);
    if gate && !pass {
        eprintln!(
            "NET GATE FAILED: {sessions_per_sec:.1} sessions/sec (floor {required:.1}) resume rate {resume_success_rate:.3} (floor 0.99)"
        );
        std::process::exit(1);
    }
}
