//! Ablation study of the VF design choices (DESIGN.md §4): how much each
//! of the paper's §6.3/§6.4 requirements actually buys, measured on the
//! simulator.
//!
//! Sweeps:
//!  1. busy-wait pattern length `P` (latency hiding, §6.5 step 3);
//!  2. occupancy (threads per block — the §6.3 "maximize resource
//!     consumption" requirement);
//!  3. self-modifying-code mode (off / evict / CCTL, §6.4);
//!  4. dual-pipe balance: all-ALU busy-wait vs interleaved IMAD/LEA.HI.
//!
//! Each row reports runtime and scheduler utilization; the verdicts the
//! paper's design rests on should be visible directly: long patterns and
//! full occupancy buy utilization, eviction-based SMC costs ~25% of peak,
//! CCTL recovers it.

use sage_bench::{bench_device, experiments, measure, print_table};

fn main() {
    let cfg = bench_device();
    let base = {
        let mut p = experiments::exp1(&cfg);
        p.iterations = 25;
        p
    };
    eprintln!(
        "ablation sweeps on {} ({} iterations each)…",
        cfg.name, base.iterations
    );

    // 1. Pattern length sweep.
    let mut rows = Vec::new();
    for pp in [0usize, 2, 4, 6, 10, 14] {
        let mut p = base;
        p.pattern_pairs = pp;
        let m = measure(&cfg, &p, "pattern", 2).expect("run");
        rows.push((
            format!("P = {pp:2} ({} insns/loop)", m.loop_instructions),
            vec![
                format!("{:.0}", m.t_avg()),
                format!("{:.0}%", m.utilization * 100.0),
            ],
        ));
    }
    print_table(
        "ablation 1: busy-wait pattern length (latency hiding)",
        &["Tavg [cyc]".into(), "% peak".into()],
        &rows,
    );

    // 2. Occupancy sweep.
    let mut rows = Vec::new();
    for threads in [128u32, 256, 512, 1024] {
        let mut p = base;
        p.block_threads = threads;
        let m = measure(&cfg, &p, "occupancy", 2).expect("run");
        let warps_per_partition = threads * p.grid_blocks / cfg.num_sms / 2 / 32 / 2;
        rows.push((
            format!("{threads:4} thr/blk (~{warps_per_partition} warps/sched)"),
            vec![
                format!("{:.0}", m.t_avg()),
                format!("{:.0}%", m.utilization * 100.0),
            ],
        ));
    }
    print_table(
        "ablation 2: occupancy (§6.3 resource-consumption requirement)",
        &["Tavg [cyc]".into(), "% peak".into()],
        &rows,
    );

    // 3. SMC modes. Eviction needs the big loop; compare at matched
    // total work (same steps × iterations).
    let mut rows = Vec::new();
    {
        let mut p = base;
        p.iterations = 10;
        let m = measure(&cfg, &p, "smc-off", 2).expect("run");
        rows.push((
            "off (410-insn loop)".to_string(),
            vec![
                format!("{:.0}", m.t_avg()),
                format!("{:.0}%", m.utilization * 100.0),
            ],
        ));
        let mut p = experiments::exp5_cctl(&cfg);
        p.iterations = 10;
        let m = measure(&cfg, &p, "smc-cctl", 2).expect("run");
        rows.push((
            "CCTL (416-insn loop)".to_string(),
            vec![
                format!("{:.0}", m.t_avg()),
                format!("{:.0}%", m.utilization * 100.0),
            ],
        ));
        let mut p = experiments::exp3(&cfg);
        p.iterations = 2;
        let m = measure(&cfg, &p, "smc-evict", 2).expect("run");
        rows.push((
            "evict (8245-insn loop)".to_string(),
            vec![
                format!("{:.0}", m.t_avg()),
                format!("{:.0}%", m.utilization * 100.0),
            ],
        ));
    }
    print_table(
        "ablation 3: self-modifying-code strategy (§6.4)",
        &["Tavg [cyc]".into(), "% peak".into()],
        &rows,
    );

    println!(
        "\nreadings:\n\
         - short busy-wait patterns leave the load latency exposed; utilization\n\
           climbs with P until the dual pipes saturate (paper §6.5 step 3);\n\
         - below full occupancy the schedulers starve during memory waits —\n\
           the §6.3 requirement is about latency hiding as much as denial of\n\
           resources to the adversary;\n\
         - eviction-based SMC pays ~25% of peak, the CCTL extension does not\n\
           (paper §7.5's vendor-support argument)."
    );
}
