//! Online attestation fast-path benchmark.
//!
//! Measures the three wins this repo's fast path stacks on the
//! verifier's online critical path, and writes `BENCH_fastpath.json`:
//!
//! 1. **Bank-hit vs replay-online rounds** at the SIM-LARGE VF shape
//!    (512 KiB region, full-occupancy grid). The replay arm times
//!    `Verifier::check_response` — which recomputes the expected
//!    checksum online, as every round did before the bank. The bank arm
//!    times `Verifier::prepare_round` (a bank take) plus
//!    `check_response_precomputed` — the whole online path on a hit.
//!    Precomputation itself runs *before* the timer, exactly as it runs
//!    off the critical path in production. Both arms' verdicts are
//!    checked bit-exact against an independent replay.
//! 2. **Montgomery vs reference modpow** at MODP-2048 with 256-bit
//!    exponents — the SAKE key-establishment exponentiations. Results
//!    are asserted equal on every repetition.
//! 3. **Pooled vs spawn-per-call replay** on a calibration-shaped loop
//!    (many sequential replays of a small VF), the regression check for
//!    the per-call `thread::scope` spawn the pool replaced.
//!
//! Gates (skippable with `--no-gate` for exploratory runs): bank-hit
//! rounds ≥5× faster than replay-online; Montgomery ≥3× faster than the
//! reference at 2048 bits.
//!
//! Usage:
//!   fastpath [--rounds N] [--iterations N] [--reps N] [--calib-runs N]
//!            [--seed N] [--no-gate] [--out PATH]
//!
//! Defaults measure at full SIM-LARGE scale; CI smoke passes
//! `--rounds 4 --iterations 12 --calib-runs 20` for a fixed-seed run
//! that still exercises every code path and both gates.

use std::time::Instant;

use sage::{Calibration, Verifier};
use sage_crypto::{BigUint, DhGroup, Montgomery};
use sage_gpu_sim::DeviceConfig;
use sage_sgx_sim::SgxPlatform;
use sage_vf::{
    build_vf, expected_checksum, expected_checksum_unpooled, expected_checksum_with_pool,
    BankConfig, ReplayPool, VfParams,
};

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn biguint(&mut self, bits: usize) -> BigUint {
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        for b in buf.iter_mut() {
            *b = self.next() as u8;
        }
        buf[0] |= 0x80; // pin the width
        BigUint::from_bytes_be(&buf)
    }

    fn challenge(&mut self) -> [u8; 16] {
        let mut c = [0u8; 16];
        c[..8].copy_from_slice(&self.next().to_le_bytes());
        c[8..].copy_from_slice(&self.next().to_le_bytes());
        c
    }
}

/// The SIM-LARGE VF shape (the bench crate's experiment-1 parameters on
/// the full `sim_large` device), with a scalable iteration count so the
/// CI smoke stays fast.
fn sim_large_vf(iterations: u32) -> VfParams {
    let cfg = DeviceConfig::sim_large();
    let (blocks, threads) = sage_bench::experiments::geometry(&cfg);
    let mut p = sage_bench::experiments::exp1(&cfg);
    p.grid_blocks = blocks;
    p.block_threads = threads;
    p.iterations = iterations;
    p
}

fn main() {
    let mut rounds = 16usize;
    let mut iterations = 60u32;
    let mut reps = 5usize;
    let mut calib_runs = 60usize;
    let mut seed = 7u64;
    let mut gate = true;
    let mut out_path = String::from("BENCH_fastpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations N")
            }
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--calib-runs" => {
                calib_runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--calib-runs N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--no-gate" => gate = false,
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: fastpath [--rounds N] [--iterations N] [--reps N] \
                     [--calib-runs N] [--seed N] [--no-gate] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(rounds >= 2 && reps >= 1 && calib_runs >= 2);

    // ---- 1. Bank-hit vs replay-online rounds (SIM-LARGE shape) ----
    let params = sim_large_vf(iterations);
    let build = build_vf(&params, 0x1000, seed as u32).expect("build VF");
    eprintln!(
        "fastpath: VF {} blocks x {} threads x {} iterations, {rounds} rounds",
        params.grid_blocks, params.block_threads, params.iterations
    );

    let platform = SgxPlatform::new([7u8; 16]);
    let enclave = platform.launch(b"fastpath-verifier", &mut entropy(seed as u8 | 1));
    let mut verifier = Verifier::new(enclave, build.clone(), DhGroup::test_group());
    // Any calibration accepts our synthetic measured=1 responses; the
    // timing check itself is on both arms equally.
    verifier.set_calibration(Calibration::from_samples(&[1_000]));
    verifier.enable_fast_path(BankConfig {
        capacity: rounds,
        workers: 0,
    });

    // Offline phase (untimed — this is the point of the fast path): the
    // bank precomputes every round. In production, background workers do
    // this between rounds.
    let t = Instant::now();
    verifier.prefill_rounds(rounds);
    let prefill_wall = t.elapsed().as_secs_f64();

    // Scalar-oracle refill arm: the same number of rounds recomputed
    // with the per-lane scalar engine the batched SoA engine replaced
    // (kept in-tree as the oracle, same thread-per-core parallelism the
    // seed refill path had). The within-run ratio against the pooled
    // batched prefill above isolates the engine change, so the CI gate
    // on it is host-independent.
    let scalar_transcript: Vec<Vec<[u8; 16]>> = (0..rounds)
        .map(|_| verifier.generate_challenges())
        .collect();
    let t = Instant::now();
    let scalar_sums: Vec<[u32; 8]> = scalar_transcript
        .iter()
        .map(|ch| expected_checksum_unpooled(&build, ch))
        .collect();
    let scalar_refill_wall = t.elapsed().as_secs_f64();
    for (ch, scalar) in scalar_transcript.iter().zip(&scalar_sums) {
        assert_eq!(
            *scalar,
            expected_checksum(&build, ch),
            "batched engine diverged from the scalar oracle"
        );
    }
    let refill_speedup = scalar_refill_wall / prefill_wall.max(1e-12);
    eprintln!(
        "refill: batched prefill {prefill_wall:.3}s vs scalar oracle {scalar_refill_wall:.3}s for {rounds} rounds  ({refill_speedup:.1}x)"
    );

    // The replay arm's challenge/response transcript, produced untimed:
    // an honest device's response equals the replayed expected value.
    let replay_transcript: Vec<(Vec<[u8; 16]>, [u32; 8])> = (0..rounds)
        .map(|_| {
            let ch = verifier.generate_challenges();
            let got = expected_checksum(&build, &ch);
            (ch, got)
        })
        .collect();

    // Timed bank arm: take + compare + timing verdict per round.
    let t = Instant::now();
    let mut bank_rounds_done = 0usize;
    let mut bank_pairs = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (ch, expected) = verifier.prepare_round();
        let expected = expected.expect("bank stocked for every round");
        verifier
            .check_response_precomputed(expected, expected, 1)
            .expect("honest round accepted");
        bank_rounds_done += 1;
        bank_pairs.push((ch, expected));
    }
    let bank_wall = t.elapsed().as_secs_f64();
    assert_eq!(bank_rounds_done, rounds);
    let hits = verifier.bank_counters().expect("fast path on").hits;
    assert_eq!(hits as usize, rounds, "every timed round must be a hit");

    // Timed replay arm: the pre-bank online path (replay inside
    // check_response).
    let t = Instant::now();
    for (ch, got) in &replay_transcript {
        verifier
            .check_response(ch, *got, 1)
            .expect("honest round accepted");
    }
    let replay_wall = t.elapsed().as_secs_f64();

    // Bit-exactness: every bank pair matches an independent replay.
    for (ch, expected) in &bank_pairs {
        assert_eq!(
            *expected,
            expected_checksum(&build, ch),
            "bank pair diverged from replay"
        );
    }

    let round_speedup = replay_wall / bank_wall.max(1e-12);
    eprintln!("rounds: bank {bank_wall:.6}s vs replay {replay_wall:.6}s  ({round_speedup:.1}x)");

    // ---- 2. Montgomery vs reference modpow at MODP-2048 ----
    let group = DhGroup::modp_2048();
    let m = group.p.clone();
    let mont = Montgomery::new(&m).expect("MODP-2048 modulus is odd");
    let mut rng = Xorshift(seed | 1);
    let cases: Vec<(BigUint, BigUint)> = (0..reps)
        .map(|_| (rng.biguint(2040).rem(&m), rng.biguint(256)))
        .collect();

    let t = Instant::now();
    let reference: Vec<BigUint> = cases.iter().map(|(b, e)| b.modpow(e, &m)).collect();
    let old_wall = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let fast: Vec<BigUint> = cases.iter().map(|(b, e)| mont.modpow(b, e)).collect();
    let mont_wall = t.elapsed().as_secs_f64();

    assert_eq!(reference, fast, "Montgomery modpow diverged from reference");
    let modpow_speedup = old_wall / mont_wall.max(1e-12);
    eprintln!(
        "modpow-2048 x{reps}: reference {old_wall:.4}s vs Montgomery {mont_wall:.4}s  ({modpow_speedup:.1}x)"
    );

    // ---- 3. Pooled vs spawn-per-call replay (calibration loop) ----
    // Calibration replays sequentially, many times, on a small VF — the
    // shape where per-call thread spawning hurt most.
    let mut small = VfParams::test_tiny();
    small.grid_blocks = 8;
    small.iterations = 8;
    let small_build = build_vf(&small, 0x1000, seed as u32).expect("build small VF");
    let calib_challenges: Vec<Vec<[u8; 16]>> = (0..calib_runs)
        .map(|_| (0..small.grid_blocks).map(|_| rng.challenge()).collect())
        .collect();

    let pool = ReplayPool::global();
    let t = Instant::now();
    let pooled: Vec<[u32; 8]> = calib_challenges
        .iter()
        .map(|ch| expected_checksum_with_pool(&small_build, ch, pool))
        .collect();
    let pooled_wall = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let spawned: Vec<[u32; 8]> = calib_challenges
        .iter()
        .map(|ch| expected_checksum_unpooled(&small_build, ch))
        .collect();
    let spawn_wall = t.elapsed().as_secs_f64();

    assert_eq!(pooled, spawned, "pooled replay diverged from unpooled");
    let calib_speedup = spawn_wall / pooled_wall.max(1e-12);
    eprintln!(
        "calibration x{calib_runs}: pooled {pooled_wall:.4}s vs spawn {spawn_wall:.4}s  ({calib_speedup:.2}x)"
    );

    if gate {
        assert!(
            round_speedup >= 5.0,
            "bank-hit rounds only {round_speedup:.1}x faster than replay-online (need >= 5x)"
        );
        assert!(
            modpow_speedup >= 3.0,
            "Montgomery modpow only {modpow_speedup:.1}x faster than reference (need >= 3x)"
        );
        assert!(
            refill_speedup >= 5.0,
            "batched bank refill only {refill_speedup:.1}x faster than the scalar oracle (need >= 5x)"
        );
    }

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"seed\": {seed},\n  \"vf\": {{\"grid_blocks\": {}, \"block_threads\": {}, \"iterations\": {}}},\n",
        params.grid_blocks, params.block_threads, params.iterations
    ));
    out.push_str(&format!(
        "  \"rounds\": {{\"count\": {rounds}, \"prefill_wall_seconds\": {prefill_wall:.6}, \"scalar_refill_wall_seconds\": {scalar_refill_wall:.6}, \"refill_speedup\": {refill_speedup:.2}, \"bank_wall_seconds\": {bank_wall:.6}, \"replay_wall_seconds\": {replay_wall:.6}, \"speedup\": {round_speedup:.2}, \"bit_exact\": true}},\n"
    ));
    out.push_str(&format!(
        "  \"modpow_2048\": {{\"reps\": {reps}, \"reference_wall_seconds\": {old_wall:.6}, \"montgomery_wall_seconds\": {mont_wall:.6}, \"speedup\": {modpow_speedup:.2}, \"bit_exact\": true}},\n"
    ));
    out.push_str(&format!(
        "  \"calibration_replay\": {{\"runs\": {calib_runs}, \"pooled_wall_seconds\": {pooled_wall:.6}, \"spawn_wall_seconds\": {spawn_wall:.6}, \"speedup\": {calib_speedup:.2}, \"bit_exact\": true}}\n"
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("write BENCH_fastpath.json");
    println!(
        "round speedup {round_speedup:.1}x, modpow speedup {modpow_speedup:.1}x, calibration speedup {calib_speedup:.2}x"
    );
    println!("wrote {out_path}");
}
