//! Fleet-scale control-plane throughput harness.
//!
//! Where `svcperf` sizes a handful of cycle-accurate simulated devices,
//! `fleetperf` drives the sharded event loop at deployment scale: ten
//! thousand *modeled* devices (checksums from the replay engine, timing
//! synthesized — `GpuSession::install_modeled`), so the figure measured
//! is the control plane itself: timer wheel, shard routing, batched
//! delivery, verdicts, evidence chains, epoch seals.
//!
//! Reported, to `BENCH_fleet.json`:
//!
//! * steady-state rounds/second across the whole fleet,
//! * enrollment throughput (devices/second through calibrate + SAKE),
//! * round-latency p50/p90/p99 in virtual ticks (interpolated within
//!   histogram buckets when the event ring has wrapped),
//! * peak resident set (`VmHWM`), the cost of holding the fleet,
//! * the shared `host` stanza, so cross-host trend lines can be
//!   normalized by core count.
//!
//! The `--gate` flag turns the run into a CI assertion: the fleet must
//! sustain `100_000 × min(1, cores/8)` rounds/second — the ISSUE's
//! 100k rounds/sec target on an 8-core-or-better host, scaled down
//! linearly on smaller machines so the gate measures the software, not
//! the hardware budget of the runner.
//!
//! Usage:
//!   fleetperf [--devices N] [--rounds N] [--seed N] [--shards N]
//!             [--workers N] [--gate] [--out PATH]

use std::time::Instant;

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_crypto::DhGroup;
use sage_gpu_sim::{Device, DeviceConfig};
use sage_service::{AttestationService, DeviceState, LinkProfile, ServiceConfig, SimNet};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let session = GpuSession::install_modeled(
        Device::new(DeviceConfig::sim_nano()),
        &VfParams::fleet_tiny(),
        0xF1EE7,
        10_000,
    )
    .expect("install modeled VF");
    let agent_seed = (seed as u8)
        .wrapping_add(index as u8)
        .wrapping_mul(3)
        .wrapping_add((index >> 8) as u8)
        | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:05}");
    m
}

/// Peak resident set size in bytes (`VmHWM` from /proc/self/status);
/// 0 where the proc filesystem is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The core-scaled throughput floor: the 100k rounds/sec target applies
/// in full from 8 cores up and shrinks linearly below that.
fn required_rounds_per_sec(cores: usize) -> f64 {
    100_000.0 * (cores as f64 / 8.0).min(1.0)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut devices = 10_000usize;
    let mut rounds = 3u64;
    let mut seed = 7u64;
    // Shards without workers still buy the per-shard job batching; the
    // worker pool only pays for itself with spare cores.
    let mut shards = cores.clamp(1, 16);
    let mut workers = cores.saturating_sub(1);
    let mut gate = false;
    let mut out_path = String::from("BENCH_fleet.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards N")
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N")
            }
            "--gate" => gate = true,
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: fleetperf [--devices N] [--rounds N] [--seed N] [--shards N] [--workers N] [--gate] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        devices > 0 && rounds > 0,
        "need at least one device and round"
    );

    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let cfg = ServiceConfig {
        shards,
        workers,
        // A bounded event log: at fleet scale the full history would be
        // hundreds of megabytes; the ring keeps the recent window and
        // the latency percentiles fall back to the telemetry histogram.
        event_capacity: 65_536,
        // No challenge bank: modeled replays cost microseconds, while a
        // per-verifier refill thread would put ten thousand threads on
        // the scheduler — at fleet scale the context switches cost more
        // than the replays the bank exists to hide.
        bank_capacity: 0,
        bank_workers: 0,
        ..ServiceConfig::default()
    };
    let reattest_interval = cfg.reattest_interval;
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    let reg = sage_telemetry::Registry::new();
    svc.attach_telemetry(&reg);

    eprintln!(
        "fleetperf: {devices} devices x {rounds} rounds, seed {seed}, {shards} shards, {workers} workers, {cores} cores"
    );
    let platform = SgxPlatform::new([7u8; 16]);
    let t0 = Instant::now();
    for i in 0..devices {
        let enclave_seed = (seed as u8)
            .wrapping_add(i as u8)
            .wrapping_mul(5)
            .wrapping_add((i >> 8) as u8)
            | 1;
        let enclave = platform.launch(b"fleet-verifier", &mut entropy(enclave_seed));
        svc.join(member(i, seed), enclave);
        if (i + 1) % 2_000 == 0 {
            eprintln!("  enrolled {}/{devices}", i + 1);
        }
    }
    let enroll_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut windows = 0u64;
    while svc
        .statuses()
        .iter()
        .any(|s| s.rounds_passed < rounds || s.state != DeviceState::Trusted)
    {
        svc.run_for(reattest_interval);
        windows += 1;
        assert!(windows <= rounds * 4 + 8, "fleet failed to converge");
    }
    let steady_wall = t1.elapsed().as_secs_f64();

    let total_rounds = svc.log().counters().rounds_passed;
    let rounds_per_sec = total_rounds as f64 / steady_wall.max(1e-9);
    let enroll_per_sec = devices as f64 / enroll_wall.max(1e-9);
    let virtual_ticks = svc.now();
    let lat = svc
        .log()
        .latency_percentiles()
        .expect("at least one passed round");
    let rss = peak_rss_bytes();
    let events_dropped = svc.log().events_dropped();
    let required = required_rounds_per_sec(cores);
    let pass = rounds_per_sec >= required;

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"devices\": {devices},\n  \"target_rounds\": {rounds},\n  \"seed\": {seed},\n  \"shards\": {shards},\n  \"workers\": {workers},\n"
    ));
    out.push_str(&format!(
        "  \"enroll_wall_seconds\": {enroll_wall:.6},\n  \"enroll_devices_per_sec\": {enroll_per_sec:.2},\n"
    ));
    out.push_str(&format!(
        "  \"steady_wall_seconds\": {steady_wall:.6},\n  \"rounds_passed_total\": {total_rounds},\n  \"rounds_per_sec\": {rounds_per_sec:.1},\n"
    ));
    out.push_str(&format!(
        "  \"round_latency_ticks\": {{\"samples\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
        lat.samples, lat.p50, lat.p90, lat.p99
    ));
    out.push_str(&format!(
        "  \"virtual_ticks\": {virtual_ticks},\n  \"events_dropped\": {events_dropped},\n  \"peak_rss_bytes\": {rss},\n"
    ));
    out.push_str(&format!(
        "  \"gate\": {{\"required_rounds_per_sec\": {required:.1}, \"pass\": {pass}}}\n"
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("write BENCH_fleet.json");

    println!(
        "{devices} devices, {total_rounds} rounds in {steady_wall:.3}s  ({rounds_per_sec:.1} rounds/s; gate {required:.0} on {cores} cores)"
    );
    println!(
        "enroll {enroll_per_sec:.1} devices/s ({enroll_wall:.3}s); latency ticks p50 {} / p90 {} / p99 {} over {} rounds; peak RSS {:.1} MiB; {events_dropped} events dropped",
        lat.p50, lat.p90, lat.p99, lat.samples,
        rss as f64 / (1024.0 * 1024.0)
    );
    println!("wrote {out_path}");
    if gate && !pass {
        eprintln!(
            "FLEET GATE FAILED: {rounds_per_sec:.1} rounds/sec < required {required:.1} ({cores} cores)"
        );
        std::process::exit(1);
    }
}
