//! Regenerates Table 1: "Evaluation of checksum implementations".
//!
//! Columns follow the paper: self-modifying code, instruction count,
//! iteration counts, verification time (plain host = "AMD", enclave
//! model = "Intel"), mean runtime, % of GPU peak performance, and the
//! adversarial-NOP detection row (σ, T_min, T_avg + 2.5σ).
//!
//! Scale: simulator device (2 SMs), reduced iterations; see
//! EXPERIMENTS.md for the paper-vs-measured comparison.

use sage::Calibration;
use sage_bench::{bench_device, experiments, measure, print_table, Measurement};

fn main() {
    let cfg = bench_device();
    let runs = std::env::var("SAGE_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);

    eprintln!(
        "running Table 1 experiments on {} ({} SMs, {runs} runs each)…",
        cfg.name, cfg.num_sms
    );

    let exps: Vec<(&str, sage_vf::VfParams, usize)> = vec![
        ("1", experiments::exp1(&cfg), runs),
        ("2", experiments::exp2(&cfg), runs),
        ("3", experiments::exp3(&cfg), (runs / 2).max(2)),
        ("4", experiments::exp4(&cfg), 2),
        ("5*", experiments::exp5_cctl(&cfg), (runs / 2).max(2)),
    ];

    let mut ms: Vec<Measurement> = Vec::new();
    for (label, params, n) in &exps {
        eprintln!("  experiment {label}…");
        ms.push(measure(&cfg, params, label, *n).expect("experiment runs"));
    }

    let calib = Calibration::from_samples(&ms[0].samples);
    let smc = ["no", "no", "yes (evict)", "yes (evict)", "yes (CCTL)"];
    let nop = ["no", "yes", "no", "no", "no"];

    let columns: Vec<String> = ms.iter().map(|m| format!("exp {}", m.label)).collect();
    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    rows.push((
        "self-modifying".into(),
        smc.iter().map(|s| s.to_string()).collect(),
    ));
    rows.push((
        "instructions".into(),
        ms.iter().map(|m| m.loop_instructions.to_string()).collect(),
    ));
    rows.push((
        "iterations".into(),
        ms.iter().map(|m| m.iterations.to_string()).collect(),
    ));
    rows.push((
        "inner iter".into(),
        ms.iter()
            .map(|m| m.inner.map(|(_, i)| i.to_string()).unwrap_or("0".into()))
            .collect(),
    ));
    rows.push((
        "inner insns".into(),
        ms.iter()
            .map(|m| {
                m.inner
                    .map(|(s, _)| (s * 27).to_string())
                    .unwrap_or("0".into())
            })
            .collect(),
    ));
    rows.push((
        "verif plain [s]".into(),
        ms.iter()
            .map(|m| format!("{:.3}", m.verify_seconds))
            .collect(),
    ));
    rows.push((
        "verif SGX [s]".into(),
        ms.iter()
            .map(|m| format!("{:.3}", m.verify_seconds_sgx))
            .collect(),
    ));
    rows.push((
        "runtime Tavg [cyc]".into(),
        ms.iter().map(|m| format!("{:.0}", m.t_avg())).collect(),
    ));
    rows.push((
        "runtime Tavg [ms]".into(),
        ms.iter()
            .map(|m| format!("{:.3}", m.t_avg_seconds(&cfg) * 1e3))
            .collect(),
    ));
    rows.push((
        "% of peak perf".into(),
        ms.iter()
            .map(|m| format!("{:.0}", m.utilization * 100.0))
            .collect(),
    ));
    rows.push((
        "ifetch stall frac".into(),
        ms.iter()
            .map(|m| format!("{:.2}", m.ifetch_stall_fraction))
            .collect(),
    ));
    rows.push((
        "adversarial NOP".into(),
        nop.iter().map(|s| s.to_string()).collect(),
    ));
    rows.push((
        "runtime sigma [cyc]".into(),
        ms.iter().map(|m| format!("{:.1}", m.sigma())).collect(),
    ));
    rows.push((
        "Tmin [cyc]".into(),
        ms.iter().map(|m| m.t_min().to_string()).collect(),
    ));

    print_table("Table 1: checksum implementations", &columns, &rows);

    println!("\nDetection analysis (paper §7.2):");
    println!(
        "  exp 1 calibration: T_avg = {:.0} cyc, sigma = {:.1} cyc, threshold T_avg + 2.5 sigma = {} cyc",
        calib.t_avg,
        calib.sigma,
        calib.threshold()
    );
    let adv_tmin = ms[1].t_min();
    println!(
        "  exp 2 (adversarial NOP): T_min = {adv_tmin} cyc → {}",
        if adv_tmin > calib.threshold() {
            "DETECTED (T_min > threshold, as in the paper)"
        } else {
            "NOT detected at this scale (increase iterations)"
        }
    );
    println!(
        "\n  exp 3 vs exp 1 utilization: {:.0}% vs {:.0}%  (paper: 75% vs 99%)",
        ms[2].utilization * 100.0,
        ms[0].utilization * 100.0
    );
    println!(
        "  exp 4 recovers utilization: {:.0}% (paper: 100%) but verification costs {:.1}x exp 3",
        ms[3].utilization * 100.0,
        ms[3].verify_seconds / ms[2].verify_seconds.max(1e-9)
    );
    println!(
        "  exp 5* (CCTL extension, §6.4): SMC with {:.0}% utilization — the vendor-support\n  \
         hypothesis of the paper, evaluated",
        ms[4].utilization * 100.0
    );
}
