//! Simulator-core performance harness.
//!
//! Times the cycle-level simulator itself (not the modelled GPU) on
//! Table-1-style workloads — experiment 3's eviction-by-overflow SMC
//! checksum on the 8-SM `sim_large` device — in both execution modes:
//!
//! * `parallel` — per-SM worker threads + stall fast-forwarding
//!   (`ExecMode::Parallel`, the default),
//! * `sequential` — single-threaded tick-per-cycle reference
//!   (`ExecMode::Sequential`).
//!
//! Two schedule variants are measured, because the simulator's win from
//! stall fast-forwarding scales with how much latency the guest code
//! exposes (paper §7.1):
//!
//! * `sass-opt` — the hand-optimised software-pipelined schedule the
//!   deployed VF uses (Table 1's configuration),
//! * `ptx-naive` — the compiler-style schedule, where every dependent
//!   load exposes its full memory latency.
//!
//! All four runs are bit-exact across modes (see `tests/exec_modes.rs`);
//! this binary additionally cross-checks checksums and cycle counts
//! before reporting. Results go to `BENCH_sim.json` for CI trend
//! tracking.
//!
//! Usage:
//!   simperf [--sequential] [--iterations N] [--repeats N] [--out PATH]
//!           [--min-speedup X]
//!
//! `--sequential` measures only the reference mode (no speedup figures);
//! the default measures both and reports parallel-over-sequential
//! speedup per workload. `--iterations` scales the VF outer loop
//! (default 2; CI smoke uses 1). Each mode is run `--repeats` times
//! (default 5) and the best wall-clock is reported — the minimum is the
//! standard noise-robust estimator for a deterministic workload on a
//! shared machine. `--min-speedup X` (CI gate) exits non-zero unless the
//! ptx-naive workload's parallel-over-sequential speedup is at least
//! `X` — a within-run ratio, so the gate holds regardless of how fast
//! the host itself is.

use std::time::Instant;

use sage::GpuSession;
use sage_gpu_sim::{Device, DeviceConfig, ExecMode, LaunchParams};
use sage_vf::{SmcMode, VfParams};

struct ModeResult {
    mode: &'static str,
    cycles: u64,
    wall_seconds: f64,
    cycles_per_sec: f64,
    checksum: [u32; 8],
}

struct WorkloadResult {
    label: &'static str,
    results: Vec<ModeResult>,
    speedup: Option<f64>,
}

fn workload(cfg: &DeviceConfig, iterations: u32, naive_schedule: bool) -> VfParams {
    // Experiment-3 shape at simulator scale: SMC with eviction by
    // overflow, ~8.3k-instruction loop, one warp per SM so the
    // instruction-fetch and memory stalls the paper's VF is built around
    // are fully exposed to the scheduler.
    VfParams {
        data_bytes: 64 * 1024 * 1024,
        unroll: 305,
        pattern_pairs: 10,
        iterations,
        smc: SmcMode::Evict,
        inner: None,
        grid_blocks: cfg.num_sms,
        block_threads: 32,
        naive_schedule,
        injected_nops: 0,
    }
}

fn challenges(n: u32) -> Vec<[u8; 16]> {
    (0..n)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                *byte = sage_vf::spec::splitmix32(b << 8 | i as u32) as u8;
            }
            c
        })
        .collect()
}

/// Runs `run_mode` `repeats` times and keeps the best wall-clock
/// (checksums and cycle counts are deterministic, so only timing
/// varies between repeats — asserted here).
fn run_mode_best(
    cfg: &DeviceConfig,
    params: &VfParams,
    mode: ExecMode,
    repeats: u32,
) -> ModeResult {
    let mut best: Option<ModeResult> = None;
    for _ in 0..repeats.max(1) {
        let r = run_mode(cfg, params, mode);
        if let Some(b) = &best {
            assert_eq!(b.checksum, r.checksum, "nondeterministic checksum");
            assert_eq!(b.cycles, r.cycles, "nondeterministic cycle count");
        }
        if best
            .as_ref()
            .is_none_or(|b| r.wall_seconds < b.wall_seconds)
        {
            best = Some(r);
        }
    }
    best.expect("at least one repeat")
}

/// Installs the VF fresh, runs the grid once in `mode` and returns the
/// measured wall-clock, simulated cycles and final checksum.
fn run_mode(cfg: &DeviceConfig, params: &VfParams, mode: ExecMode) -> ModeResult {
    let mut dev = Device::new(cfg.clone());
    dev.set_exec_mode(mode);
    let mut session = GpuSession::install(dev, params, 0xE11A).expect("install");
    let layout = session.build().layout;
    for (b, ch) in challenges(params.grid_blocks).iter().enumerate() {
        session
            .dev
            .memcpy_h2d(layout.challenge_addr(b as u32), ch)
            .expect("challenge upload");
    }
    session
        .dev
        .launch(LaunchParams {
            ctx: session.ctx,
            entry_pc: layout.entry_addr(),
            grid_dim: params.grid_blocks,
            block_dim: params.block_threads,
            regs_per_thread: session.build().regs_per_thread(),
            smem_bytes: session.build().smem_bytes(),
            params: vec![],
        })
        .expect("launch");

    let t0 = Instant::now();
    let report = session.dev.run().expect("run");
    let wall = t0.elapsed().as_secs_f64();

    let raw = session
        .dev
        .memcpy_d2h(layout.result_addr(), 32)
        .expect("result readback");
    let mut checksum = [0u32; 8];
    for (j, cell) in checksum.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
    }

    // "Cycles simulated" is the work the simulator core did: the sum of
    // every SM's local clock, not the max (an 8-SM device simulates 8
    // cycles of SM time per device cycle).
    let cycles: u64 = report.per_sm.iter().map(|(_, s)| s.cycles).sum();
    ModeResult {
        mode: match mode {
            ExecMode::Parallel => "parallel",
            ExecMode::Sequential => "sequential",
        },
        cycles,
        wall_seconds: wall,
        cycles_per_sec: cycles as f64 / wall.max(1e-9),
        checksum,
    }
}

/// Measures one workload in both modes (or sequential only), verifying
/// that the modes are bit-exact before reporting a speedup.
fn measure_workload(
    label: &'static str,
    cfg: &DeviceConfig,
    params: &VfParams,
    sequential_only: bool,
    repeats: u32,
) -> WorkloadResult {
    eprintln!("  [{label}]");
    let mut results = Vec::new();
    let mut speedup = None;
    if sequential_only {
        eprintln!("    sequential (reference)…");
        results.push(run_mode_best(cfg, params, ExecMode::Sequential, repeats));
    } else {
        eprintln!("    parallel (threads + fast-forward)…");
        let par = run_mode_best(cfg, params, ExecMode::Parallel, repeats);
        eprintln!(
            "      {:.2}s, {:.2e} cycles/s",
            par.wall_seconds, par.cycles_per_sec
        );
        eprintln!("    sequential (reference)…");
        let seq = run_mode_best(cfg, params, ExecMode::Sequential, repeats);
        eprintln!(
            "      {:.2}s, {:.2e} cycles/s",
            seq.wall_seconds, seq.cycles_per_sec
        );
        assert_eq!(
            par.checksum, seq.checksum,
            "execution modes diverged: checksums differ"
        );
        assert_eq!(
            par.cycles, seq.cycles,
            "execution modes diverged: simulated cycles differ"
        );
        speedup = Some(seq.wall_seconds / par.wall_seconds.max(1e-9));
        results.push(par);
        results.push(seq);
    }
    WorkloadResult {
        label,
        results,
        speedup,
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers; keep the writer honest.
    assert!(!s.contains('"') && !s.contains('\\'), "unescapable: {s}");
    s
}

fn write_json(path: &str, cfg: &DeviceConfig, iterations: u32, workloads: &[WorkloadResult]) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"device\": \"{}\",\n  \"num_sms\": {},\n",
        json_escape_free(cfg.name),
        cfg.num_sms
    ));
    out.push_str(&format!(
        "  \"workload\": \"table1-exp3-smc-evict\",\n  \"grid_blocks\": {},\n  \"block_threads\": 32,\n  \"iterations\": {},\n",
        cfg.num_sms, iterations
    ));
    out.push_str("  \"workloads\": [\n");
    for (w_i, w) in workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"schedule\": \"{}\", \"modes\": [\n",
            json_escape_free(w.label)
        ));
        for (i, r) in w.results.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"mode\": \"{}\", \"cycles_simulated\": {}, \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.1}}}{}\n",
                json_escape_free(r.mode),
                r.cycles,
                r.wall_seconds,
                r.cycles_per_sec,
                if i + 1 < w.results.len() { "," } else { "" }
            ));
        }
        match w.speedup {
            Some(s) => out.push_str(&format!("    ], \"speedup\": {s:.2}}}")),
            None => out.push_str("    ], \"speedup\": null}"),
        }
        out.push_str(if w_i + 1 < workloads.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_sim.json");
}

fn main() {
    let mut sequential_only = false;
    let mut iterations = 2u32;
    let mut repeats = 5u32;
    let mut min_speedup = 0.0f64;
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sequential" => sequential_only = true,
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations N");
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats N");
            }
            "--min-speedup" => {
                min_speedup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-speedup X");
            }
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: simperf [--sequential] [--iterations N] [--repeats N] [--out PATH] [--min-speedup X]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut cfg = DeviceConfig::sim_large();
    // Give the harness device room for a checksum region larger than the
    // modelled 40 MiB L2, so pattern loads run at DRAM latency — the
    // stall-dominated regime the fast-forward optimisation targets.
    cfg.gmem_bytes = 128 * 1024 * 1024;
    eprintln!(
        "simperf: {} ({} SMs), exp3-style SMC-Evict, {} blocks x 32 threads, {} iterations",
        cfg.name, cfg.num_sms, cfg.num_sms, iterations
    );

    let workloads = vec![
        measure_workload(
            "ptx-naive",
            &cfg,
            &workload(&cfg, iterations, true),
            sequential_only,
            repeats,
        ),
        measure_workload(
            "sass-opt",
            &cfg,
            &workload(&cfg, iterations, false),
            sequential_only,
            repeats,
        ),
    ];

    write_json(&out_path, &cfg, iterations, &workloads);
    for w in &workloads {
        for r in &w.results {
            println!(
                "{:<10} {:<10} {:>14} cycles  {:>8.3}s  {:>12.0} cycles/s",
                w.label, r.mode, r.cycles, r.wall_seconds, r.cycles_per_sec
            );
        }
        if let Some(s) = w.speedup {
            println!(
                "{:<10} speedup    {s:.2}x (parallel over sequential, bit-exact)",
                w.label
            );
        }
    }
    println!("wrote {out_path}");

    if min_speedup > 0.0 {
        let gated = workloads
            .iter()
            .find(|w| w.label == "ptx-naive")
            .and_then(|w| w.speedup)
            .expect("--min-speedup needs the two-mode ptx-naive measurement");
        assert!(
            gated >= min_speedup,
            "ptx-naive parallel mode only {gated:.2}x over sequential (need >= {min_speedup}x)"
        );
        eprintln!("gate: ptx-naive speedup {gated:.2}x >= {min_speedup}x — ok");
    }
}
