//! Attestation-service throughput harness.
//!
//! Drives a fleet of honest simulated devices through the full control
//! plane — framed wire codec, simulated network, per-device lifecycle
//! state machine — until every device has passed a target number of
//! re-attestation rounds, and reports:
//!
//! * wall-clock rounds/second (the service's steady-state attestation
//!   throughput, the figure a fleet operator sizes the verifier host by),
//! * enrollment throughput (devices/second through calibrate + SAKE —
//!   with bank warm-up priced separately: each join stocks its bank
//!   through the shared replay pool as one flat `(round, block)` job
//!   list, and that pooled-precompute wall is reported as its own
//!   `prefill_wall_seconds` metric instead of being buried in the
//!   enroll figure),
//! * the round-latency distribution in virtual ticks — p50/p90/p99 over
//!   every passed round, from the event log's started→passed deltas
//!   (deterministic for a fixed seed),
//! * virtual ticks consumed and virtual-ticks-per-round,
//! * the service's own snapshot: per-device final state and the full
//!   event-counter block.
//!
//! Everything is seeded, so a fixed `--seed` reproduces the identical
//! fleet history (same round outcomes, same counters); only the
//! wall-clock figures vary between machines. Results go to
//! `BENCH_svc.json` for CI trend tracking.
//!
//! Usage:
//!   svcperf [--devices N] [--rounds N] [--seed N] [--out PATH]

use std::time::Instant;

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_crypto::DhGroup;
use sage_gpu_sim::{Device, DeviceConfig};
use sage_service::{
    AttestationService, DeviceState, LinkProfile, ServiceConfig, SimNet, SplitMix64, TimerWheel,
};
use sage_sgx_sim::SgxPlatform;
use sage_telemetry::{MetricValue, Registry};
use sage_vf::VfParams;

/// The exported total of every series named `name`, across label sets.
fn counter_total(reg: &Registry, name: &str) -> u64 {
    reg.collect()
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| match v {
            MetricValue::Counter(c) => *c,
            _ => panic!("{name} is not a counter"),
        })
        .sum()
}

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session = GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7)
        .expect("install");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:02}");
    m
}

/// Micro-arm: the cost of popping the earliest of ~1k queued timers,
/// timer wheel against the linear scan-for-min it replaced (the old
/// transport walked every in-flight frame once to find the next due
/// tick and once more to deliver it). Steady state: each iteration
/// pops the earliest batch and re-inserts one entry per popped entry
/// at a pseudo-random future offset, so queue depth holds at `queued`.
/// Both arms consume the identical offset stream, pop in the identical
/// order, and return average nanoseconds per popped entry.
fn timer_micro_ns(queued: usize, ops: usize) -> (f64, f64, usize) {
    let mut rng = SplitMix64::new(0x7133_D0C5);
    let offsets: Vec<u64> = (0..queued + ops + 64)
        .map(|_| 1 + rng.below(2_048))
        .collect();

    // Wheel arm.
    let mut wheel = TimerWheel::new();
    let mut feed = offsets.iter().copied();
    for _ in 0..queued {
        wheel.insert(feed.next().expect("offset stream"), 0u32);
    }
    let mut out: Vec<(u64, u32)> = Vec::new();
    let mut wheel_pops = 0usize;
    let t = Instant::now();
    while wheel_pops < ops {
        let due = wheel.next_due().expect("queue never drains");
        out.clear();
        wheel.pop_due(due, &mut out);
        wheel_pops += out.len();
        for _ in 0..out.len() {
            wheel.insert(due + feed.next().unwrap_or(97), 0u32);
        }
    }
    let wheel_ns = t.elapsed().as_nanos() as f64 / wheel_pops as f64;

    // Linear arm: one scan to find the earliest due, one pass to pull
    // every entry at it — the shape of the replaced implementation.
    let mut lin: Vec<u64> = Vec::with_capacity(queued + 1);
    let mut feed = offsets.iter().copied();
    for _ in 0..queued {
        lin.push(feed.next().expect("offset stream"));
    }
    let mut lin_pops = 0usize;
    let t = Instant::now();
    while lin_pops < ops {
        let due = *lin.iter().min().expect("queue never drains");
        let before = lin.len();
        lin.retain(|&d| d != due);
        let popped = before - lin.len();
        lin_pops += popped;
        for _ in 0..popped {
            lin.push(due + feed.next().unwrap_or(97));
        }
    }
    let linear_ns = t.elapsed().as_nanos() as f64 / lin_pops as f64;
    assert_eq!(
        wheel_pops, lin_pops,
        "arms diverged: identical streams must pop identical counts"
    );
    (wheel_ns, linear_ns, wheel_pops)
}

fn main() {
    let mut devices = 4usize;
    let mut rounds = 10u64;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_svc.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: svcperf [--devices N] [--rounds N] [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    assert!(
        devices > 0 && rounds > 0,
        "need at least one device and round"
    );

    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let mut cfg = ServiceConfig::default();
    // No background refill thread racing the timed regions: the bank is
    // stocked up front by the pooled prefill (calibration + the first
    // steady rounds draw precomputed pairs), and refills after that
    // happen synchronously on take, inside the steady-state figure
    // where they belong.
    cfg.bank_workers = 0;
    cfg.bank_capacity = cfg.calibration_runs + 2;
    cfg.prefill_rounds = cfg.bank_capacity;
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    // Attached before any join, so every device's verifier, bank and
    // simulator series cover the whole run.
    let reg = Registry::new();
    svc.attach_telemetry(&reg);

    eprintln!("svcperf: {devices} devices x {rounds} rounds, seed {seed}");
    let platform = SgxPlatform::new([7u8; 16]);
    let t0 = Instant::now();
    for i in 0..devices {
        let enclave_seed = (seed as u8).wrapping_add(i as u8).wrapping_mul(5) | 1;
        let enclave = platform.launch(b"svcperf-verifier", &mut entropy(enclave_seed));
        svc.join(member(i, seed), enclave);
    }
    // The join loop above covers prefill + calibrate + SAKE; the pooled
    // prefill accounted its own wall inside the service, so enrollment
    // proper (the exchanges a device actually participates in) is the
    // difference.
    let prefill_wall = svc.prefill_wall_seconds();
    let enroll_wall = (t0.elapsed().as_secs_f64() - prefill_wall).max(0.0);

    let t1 = Instant::now();
    let mut windows = 0u64;
    while svc.statuses().iter().any(|s| s.rounds_passed < rounds) {
        svc.run_for(cfg.reattest_interval);
        windows += 1;
        assert!(
            windows <= rounds * 4 + 8,
            "fleet failed to converge: {}",
            svc.snapshot_json()
        );
    }
    let steady_wall = t1.elapsed().as_secs_f64();

    for s in svc.statuses() {
        assert_eq!(s.state, DeviceState::Trusted, "{} not trusted", s.name);
        assert!(s.rounds_passed >= rounds);
    }
    let total_rounds = svc.log().counters().rounds_passed;
    let rounds_per_sec = total_rounds as f64 / steady_wall.max(1e-9);
    let enroll_per_sec = devices as f64 / enroll_wall.max(1e-9);
    let virtual_ticks = svc.now();
    let lat = svc
        .log()
        .latency_percentiles()
        .expect("at least one passed round");

    // The unified telemetry layer must agree with the event log's own
    // books — an end-to-end consistency check every bench run gets for
    // free.
    assert_eq!(
        counter_total(&reg, "service_rounds_passed_total"),
        total_rounds,
        "telemetry rounds-passed diverged from the event log"
    );
    assert_eq!(
        counter_total(&reg, "service_devices_joined_total"),
        devices as u64,
        "telemetry join count diverged from the roster"
    );

    let prefill_pairs = devices * cfg.prefill_rounds;
    let prefill_pairs_per_sec = prefill_pairs as f64 / prefill_wall.max(1e-9);

    // Timer micro-arm: 1k queued frames, the wheel against the linear
    // scan it replaced.
    let (wheel_ns, linear_ns, micro_pops) = timer_micro_ns(1_000, 100_000);

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"devices\": {devices},\n  \"target_rounds\": {rounds},\n  \"seed\": {seed},\n"
    ));
    out.push_str(&format!(
        "  \"prefill_wall_seconds\": {prefill_wall:.6},\n  \"prefill_rounds_per_device\": {},\n  \"prefill_pairs_per_sec\": {prefill_pairs_per_sec:.1},\n",
        cfg.prefill_rounds
    ));
    out.push_str(&format!(
        "  \"enroll_wall_seconds\": {enroll_wall:.6},\n  \"enroll_devices_per_sec\": {enroll_per_sec:.2},\n  \"steady_wall_seconds\": {steady_wall:.6},\n"
    ));
    out.push_str(&format!(
        "  \"rounds_passed_total\": {total_rounds},\n  \"rounds_per_sec\": {rounds_per_sec:.1},\n"
    ));
    out.push_str(&format!(
        "  \"round_latency_ticks\": {{\"samples\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
        lat.samples, lat.p50, lat.p90, lat.p99
    ));
    out.push_str(&format!(
        "  \"virtual_ticks\": {virtual_ticks},\n  \"virtual_ticks_per_round\": {:.1},\n",
        virtual_ticks as f64 / total_rounds.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"timer_micro\": {{\"queued\": 1000, \"pops\": {micro_pops}, \"wheel_ns_per_pop\": {wheel_ns:.1}, \"linear_ns_per_pop\": {linear_ns:.1}, \"speedup\": {:.1}}},\n",
        linear_ns / wheel_ns.max(1e-9)
    ));
    out.push_str("  \"snapshot\": ");
    // snapshot_json() ends with a newline; splice it in indented.
    out.push_str(svc.snapshot_json().trim_end());
    out.push_str(",\n  \"telemetry\": ");
    out.push_str(reg.to_json().trim_end());
    out.push_str("\n}\n");
    std::fs::write(&out_path, out).expect("write BENCH_svc.json");

    // The same registry in scrape form, next to the JSON artifact.
    let prom_path = match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.prom"),
        None => format!("{out_path}.prom"),
    };
    std::fs::write(&prom_path, reg.to_prometheus()).expect("write Prometheus export");

    println!(
        "{devices} devices, {total_rounds} rounds in {steady_wall:.3}s  ({rounds_per_sec:.1} rounds/s, {virtual_ticks} virtual ticks)"
    );
    println!(
        "round latency ticks: p50 {} / p90 {} / p99 {} over {} rounds; enroll {enroll_per_sec:.2} devices/s",
        lat.p50, lat.p90, lat.p99, lat.samples
    );
    println!(
        "bank prefill: {prefill_pairs} pairs in {prefill_wall:.3}s pooled ({prefill_pairs_per_sec:.1} pairs/s), outside the enroll figure"
    );
    println!(
        "timer micro (1k queued): wheel {wheel_ns:.1} ns/pop vs linear scan {linear_ns:.1} ns/pop ({:.1}x)",
        linear_ns / wheel_ns.max(1e-9)
    );
    println!("wrote {out_path} and {prom_path}");
}
