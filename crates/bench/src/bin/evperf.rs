//! Evidence-layer throughput harness.
//!
//! Microbenchmarks the four verbs a fleet pays for per attestation
//! stage once the PR-7 evidence layer is on:
//!
//! * **append** — sealing one hash-linked, CMAC'd record onto a device
//!   chain (the per-stage cost every checksum round now carries),
//! * **seal** — folding a fleet's chain heads into one Merkle epoch
//!   root (the per-epoch cost, scaling with fleet width),
//! * **prove** — producing one device's inclusion proof plus minting
//!   its full [`DeviceReport`] envelope,
//! * **verify** — [`verify_report`] end to end: envelope CMAC, root
//!   match, Merkle walk, suffix re-verification, claim and freshness
//!   checks (the relying party's cost).
//!
//! Record payloads cycle through every record kind so the canonical
//! codec is exercised evenly. Everything is seeded and the verify loop
//! asserts every report actually verifies — a silent reject would make
//! the throughput figure fiction. Results go to `BENCH_evidence.json`
//! for CI trend tracking.
//!
//! Usage:
//!   evperf [--devices N] [--records N] [--iters N] [--seed N] [--out PATH]

use std::time::Instant;

use sage_evidence::merkle::{epoch_root, prove_inclusion};
use sage_evidence::{
    verify_report, DeviceReport, EpochLeaf, EvidenceChain, EvidencePath, EvidencePayload,
    Freshness, FreshnessClaim, FreshnessPolicy, StageVerdict,
};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Cycles through every record kind, all passing (the steady-state mix).
fn payload(kind: u64, rng: &mut SplitMix64) -> EvidencePayload {
    match kind % 4 {
        0 => EvidencePayload::ChecksumRound {
            round: kind,
            measured_cycles: 10_000 + (rng.next_u64() % 500),
            threshold_cycles: 12_000,
            verdict: StageVerdict::Pass,
            path: EvidencePath::Precomputed,
        },
        1 => EvidencePayload::ChannelLiveness {
            nonce: rng.next_u64(),
            verdict: StageVerdict::Pass,
        },
        2 => EvidencePayload::KernelHash {
            hash: {
                let mut h = [0u8; 32];
                h[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
                h
            },
            verdict: StageVerdict::Pass,
        },
        _ => EvidencePayload::SakeConfirmed {
            key_fingerprint: rng.next_u64().to_le_bytes(),
            measured_cycles: 9_000,
            threshold_cycles: 12_000,
        },
    }
}

const POLICY: FreshnessPolicy = FreshnessPolicy {
    stale_after: 60_000,
    degraded_after: 120_000,
};

fn main() {
    let mut devices = 64usize;
    let mut records = 256u64;
    let mut iters = 200u64;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_evidence.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--records" => {
                records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--records N")
            }
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: evperf [--devices N] [--records N] [--iters N] [--seed N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(
        devices > 0 && records > 0 && iters > 0,
        "need at least one device, record and iteration"
    );
    eprintln!("evperf: {devices} devices x {records} records, {iters} iters, seed {seed}");
    let mut rng = SplitMix64(seed);

    // --- append: grow every device's chain, one CMAC'd record at a time.
    let mut chains: Vec<EvidenceChain> = (0..devices)
        .map(|i| {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
            key[8..].copy_from_slice(&rng.next_u64().to_le_bytes());
            EvidenceChain::new(&format!("gpu-{i:03}"), &key)
        })
        .collect();
    let t0 = Instant::now();
    for k in 0..records {
        for chain in &mut chains {
            chain.append(10_000 + 10 * k, payload(k, &mut rng));
        }
    }
    let append_wall = t0.elapsed().as_secs_f64();
    let appends = records * devices as u64;
    let appends_per_sec = appends as f64 / append_wall.max(1e-9);

    // --- seal: the fleet's chain heads into one epoch root, many times.
    let leaves: Vec<EpochLeaf> = chains
        .iter()
        .map(|c| EpochLeaf {
            device: c.device().to_string(),
            head: c.head(),
            seq: c.seq(),
        })
        .collect();
    let t1 = Instant::now();
    let mut root = [0u8; 32];
    for _ in 0..iters {
        root = epoch_root(&leaves);
    }
    let seal_wall = t1.elapsed().as_secs_f64();
    let seals_per_sec = iters as f64 / seal_wall.max(1e-9);

    // --- prove: inclusion proof + full report envelope per device.
    // Reports are anchored at the sealed heads with an empty suffix (the
    // "just sealed" shape), asserted fresh under the policy.
    let asserted_at = 10_000 + 10 * records;
    let t2 = Instant::now();
    let mut reports = Vec::with_capacity(devices);
    for _ in 0..iters {
        reports.clear();
        for (i, chain) in chains.iter().enumerate() {
            let proof = prove_inclusion(&leaves, i);
            let claim = FreshnessClaim {
                policy: POLICY,
                last_pass_at: chain.last_pass_at(),
                asserted_at,
                level: POLICY.level(chain.last_pass_at(), asserted_at),
            };
            reports.push(DeviceReport::seal(
                1,
                leaves[i].clone(),
                root,
                proof,
                Vec::new(),
                claim,
                &chain.evidence_key(),
            ));
        }
    }
    let prove_wall = t2.elapsed().as_secs_f64();
    let proves = iters * devices as u64;
    let proves_per_sec = proves as f64 / prove_wall.max(1e-9);

    // --- verify: the relying party's full check, every report, every
    // iteration — and every one must come back Trusted.
    let t3 = Instant::now();
    for _ in 0..iters {
        for (i, report) in reports.iter().enumerate() {
            let level = verify_report(report, &root, &chains[i].evidence_key(), asserted_at)
                .expect("benchmark report must verify");
            assert_eq!(level, Freshness::Trusted, "benchmark fleet is fresh");
        }
    }
    let verify_wall = t3.elapsed().as_secs_f64();
    let verifies = iters * devices as u64;
    let verifies_per_sec = verifies as f64 / verify_wall.max(1e-9);

    let report_bytes = reports[0].encode().len();
    let proof_steps = reports[0].proof.steps.len();

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"devices\": {devices},\n  \"records_per_device\": {records},\n  \"iters\": {iters},\n  \"seed\": {seed},\n"
    ));
    out.push_str(&format!(
        "  \"append\": {{\"total\": {appends}, \"wall_seconds\": {append_wall:.6}, \"per_sec\": {appends_per_sec:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"seal\": {{\"total\": {iters}, \"leaves\": {devices}, \"wall_seconds\": {seal_wall:.6}, \"per_sec\": {seals_per_sec:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"prove\": {{\"total\": {proves}, \"wall_seconds\": {prove_wall:.6}, \"per_sec\": {proves_per_sec:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"verify\": {{\"total\": {verifies}, \"wall_seconds\": {verify_wall:.6}, \"per_sec\": {verifies_per_sec:.1}}},\n"
    ));
    out.push_str(&format!(
        "  \"report_bytes\": {report_bytes},\n  \"proof_steps\": {proof_steps}\n}}\n"
    ));
    std::fs::write(&out_path, out).expect("write BENCH_evidence.json");

    println!(
        "append {appends_per_sec:.0}/s  seal {seals_per_sec:.0}/s ({devices} leaves)  prove {proves_per_sec:.0}/s  verify {verifies_per_sec:.0}/s"
    );
    println!("report size {report_bytes} B, {proof_steps} proof steps; wrote {out_path}");
}
