//! Reproduces §7.2 "Attack Robustness": the detection-threshold analysis.
//!
//! Measures the genuine runtime distribution over repeated runs, sets the
//! threshold at `T_avg + 2.5σ`, and checks that the minimum runtime of
//! the adversarial-NOP build exceeds it — plus an empirical
//! false-positive rate (the paper predicts ≈ 0.5% at 2.5σ).

use sage::Calibration;
use sage_attacks::nop::timing_samples;
use sage_bench::{bench_device, experiments, print_table};

fn main() {
    let cfg = bench_device();
    let runs = std::env::var("SAGE_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20usize);
    // Full-occupancy geometry (as Table 1): the NOP's issue slots are
    // only visible when the schedulers are port-bound.
    let mut params = experiments::exp1(&cfg);
    params.iterations = 60;

    eprintln!("robustness: {runs} genuine + {runs} adversarial runs…");
    let genuine = timing_samples(&cfg, &params, 0x0B0B, runs).expect("genuine runs");
    let calib = Calibration::from_samples(&genuine);

    let mut adv = params;
    adv.injected_nops = 1;
    let injected = timing_samples(&cfg, &adv, 0x0B0B, runs).expect("adversarial runs");
    let t_min = *injected.iter().min().expect("non-empty");
    let adv_mean = injected.iter().map(|&s| s as f64).sum::<f64>() / injected.len() as f64;

    let rows = vec![
        (
            "genuine".to_string(),
            vec![
                format!("{:.0}", calib.t_avg),
                format!("{:.1}", calib.sigma),
                format!("{}", genuine.iter().min().unwrap()),
                format!("{}", genuine.iter().max().unwrap()),
            ],
        ),
        (
            "adversarial (+1 NOP)".to_string(),
            vec![
                format!("{adv_mean:.0}"),
                "-".to_string(),
                format!("{t_min}"),
                format!("{}", injected.iter().max().unwrap()),
            ],
        ),
    ];
    print_table(
        "§7.2: runtime distributions (cycles)",
        &["mean".into(), "sigma".into(), "min".into(), "max".into()],
        &rows,
    );

    println!(
        "\nthreshold T_avg + 2.5 sigma = {} cycles",
        calib.threshold()
    );
    println!(
        "adversarial T_min = {t_min} cycles → {}",
        if t_min > calib.threshold() {
            "DETECTED: T_avg + 2.5 sigma < T_min — impossible to insert even one \
             instruction undetected (paper's conclusion)"
        } else {
            "not separated at this scale; raise iterations"
        }
    );

    // Empirical false-positive probe.
    let fp_runs = runs * 3;
    let extra = timing_samples(&cfg, &params, 0x00F9, fp_runs).expect("fp runs");
    let fp = extra.iter().filter(|&&t| !calib.accepts(t)).count();
    println!(
        "false positives: {fp}/{fp_runs} genuine runs over threshold \
         (paper predicts ~0.5%; verification simply restarts)"
    );
}
