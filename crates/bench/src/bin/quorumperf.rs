//! Verifier-quorum and spot-check-sampling benchmark.
//!
//! Three questions, one fixed fleet:
//!
//! 1. **What does replication cost?** The same fleet is run under
//!    N ∈ {1, 3, 5, 7} verifier replicas (full coverage). Every verdict
//!    crosses the vote codec N times, so rounds/sec decays mildly with
//!    N — and because an honest unanimous quorum appends nothing, every
//!    N must leave byte-identical evidence heads (asserted).
//! 2. **What does sampling buy?** The same fleet covers the same
//!    virtual horizon at 100% coverage and at `--coverage` (default
//!    25%). A `Trusted` device outside the epoch plan sleeps instead of
//!    replaying a checksum, so the wall-clock cost of holding the fleet
//!    drops roughly in proportion; the gate requires ≥ 3× at 25%.
//! 3. **What does sampling give up?** One planted cheater (§8 replay
//!    tap) under sampled coverage: detection is *delayed* to its first
//!    covered epoch — bounded by the closed-form
//!    `epochs_to_detect(c, 98%)` model — but never lost. The run
//!    asserts zero false accepts, gated or not.
//!
//! Reported to `BENCH_quorum.json`: rounds/sec per quorum size, the
//! full-vs-sampled walls and speedup, the detection-model numbers, and
//! the shared `host` stanza. `--gate` turns the speedup floor and the
//! zero-false-accept check into a CI assertion.
//!
//! Usage:
//!   quorumperf [--devices N] [--horizon TICKS] [--seed N]
//!              [--coverage PER_MILLE] [--reps N] [--gate] [--out PATH]

use std::time::Instant;

use sage::agent::DeviceAgent;
use sage::multi::FleetMember;
use sage::GpuSession;
use sage_attacks::forge::ReplayTap;
use sage_crypto::DhGroup;
use sage_gpu_sim::{Device, DeviceConfig};
use sage_service::{
    covers, detect_probability_per_mille, epochs_to_detect, AttestationService, DeviceState,
    EventKind, LinkProfile, QuorumConfig, SamplingConfig, ServiceConfig, SimNet,
};
use sage_sgx_sim::SgxPlatform;
use sage_vf::VfParams;

/// Virtual ticks per sampling epoch.
const EPOCH: u64 = 60_000;
/// The fleet settles (enroll + first rounds) before the timed window.
const SETTLE: u64 = 45_000;

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

fn member(index: usize, seed: u64) -> FleetMember {
    let mut params = VfParams::test_tiny();
    params.iterations = 5;
    let session = GpuSession::install(Device::new(DeviceConfig::sim_tiny()), &params, 0xF1EE7)
        .expect("install");
    let agent_seed = (seed as u8).wrapping_add(index as u8).wrapping_mul(3) | 1;
    let mut m = FleetMember::new(session, DeviceAgent::new(Box::new(entropy(agent_seed))));
    m.name = format!("gpu-{index:02}");
    m
}

struct RunStats {
    /// Wall seconds over the steady-state window (settle → horizon).
    wall: f64,
    /// Checksum rounds passed fleet-wide.
    rounds: u64,
    /// Epochs the sampler skipped fleet-wide.
    skips: u64,
    /// Per-device evidence heads at the horizon, in name order.
    heads: Vec<(String, [u8; 32])>,
    /// Netperf-style false-accept count for the planted cheater.
    false_accepts: u64,
    /// Epochs from compromise to the first failed round, if a cheater
    /// was planted and caught.
    detected_after_epochs: Option<u64>,
}

fn run_fleet(
    devices: usize,
    verifiers: u16,
    coverage_per_mille: u32,
    horizon: u64,
    seed: u64,
    plant_cheater: bool,
) -> RunStats {
    let net = SimNet::new(
        seed,
        LinkProfile {
            latency: 100,
            jitter: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
        },
    );
    let cfg = ServiceConfig {
        // A dense round cadence: the checksum replays must dominate the
        // per-tick service overhead (which sampling cannot save), or the
        // sampled arm understates what the skipped epochs buy.
        reattest_interval: 5_000,
        epoch_interval: EPOCH,
        quorum: QuorumConfig {
            verifiers,
            seed: 0x51D,
        },
        sampling: SamplingConfig {
            coverage_per_mille,
            seed: 0xC0FFEE,
        },
        ..ServiceConfig::default()
    };
    let mut svc = AttestationService::new(cfg, DhGroup::test_group(), net);
    let platform = SgxPlatform::new([7u8; 16]);
    for i in 0..devices {
        let enclave_seed = (seed as u8).wrapping_add(i as u8).wrapping_mul(5) | 1;
        let enclave = platform.launch(b"quorum-verifier", &mut entropy(enclave_seed));
        svc.join(member(i, seed), enclave);
    }
    svc.run_until(SETTLE);

    let cheater = format!("gpu-{:02}", devices - 1);
    let mut banked = 0u64;
    if plant_cheater {
        let session = svc.session_mut(&cheater).expect("cheater is managed");
        let result_addr = session.build().layout.result_addr();
        session
            .dev
            .install_bus_tap(Box::new(ReplayTap::new(result_addr)));
        banked = svc
            .statuses()
            .iter()
            .find(|s| s.name == cheater)
            .map(|s| s.rounds_passed)
            .unwrap_or(0);
    }

    let t = Instant::now();
    svc.run_until(horizon);
    let wall = t.elapsed().as_secs_f64();

    let mut heads = Vec::new();
    for s in svc.statuses() {
        heads.push((
            s.name.clone(),
            svc.evidence_of(&s.name).expect("chain").head(),
        ));
    }
    heads.sort();

    let mut false_accepts = 0u64;
    let mut detected_after_epochs = None;
    if plant_cheater {
        let status = svc
            .statuses()
            .into_iter()
            .find(|s| s.name == cheater)
            .expect("cheater status");
        // Past one in-flight honest round plus the tap's recording
        // round, any pass is a false accept — as is any terminal state
        // other than Quarantined.
        false_accepts += status.rounds_passed.saturating_sub(banked + 2);
        if status.state != DeviceState::Quarantined {
            false_accepts += 1;
        }
        detected_after_epochs = svc
            .log()
            .events()
            .iter()
            .find(|e| {
                e.device == cheater
                    && e.at > SETTLE
                    && matches!(e.kind, EventKind::RoundFailed { .. })
            })
            .map(|e| e.at / EPOCH - SETTLE / EPOCH);
    } else {
        for s in svc.statuses() {
            if s.state != DeviceState::Trusted {
                false_accepts += 1; // honest fleet must hold Trusted
            }
        }
    }

    let counters = svc.log().counters();
    RunStats {
        wall,
        rounds: counters.rounds_passed,
        skips: counters.spotcheck_skips,
        heads,
        false_accepts,
        detected_after_epochs,
    }
}

/// Re-runs one deterministic fleet configuration `reps` times and keeps
/// the minimum wall (every other field is seed-determined and identical
/// across reps). Min-of-reps is the standard noise floor for walls this
/// short.
fn best_of(reps: u32, mut f: impl FnMut() -> RunStats) -> RunStats {
    let mut best: Option<RunStats> = None;
    for _ in 0..reps {
        let r = f();
        best = Some(match best {
            None => r,
            Some(b) => {
                assert_eq!(b.rounds, r.rounds, "reps of a seeded run must agree");
                if r.wall < b.wall {
                    r
                } else {
                    b
                }
            }
        });
    }
    best.expect("reps >= 1")
}

fn main() {
    let mut devices = 24usize;
    let mut horizon = 1_200_000u64;
    let mut seed = 7u64;
    let mut coverage = 250u32;
    let mut reps = 5u32;
    let mut gate = false;
    let mut out_path = String::from("BENCH_quorum.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                devices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--devices N")
            }
            "--horizon" => {
                horizon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--horizon TICKS")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--coverage" => {
                coverage = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--coverage PER_MILLE")
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r >= 1)
                    .expect("--reps N (>= 1)")
            }
            "--gate" => gate = true,
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: quorumperf [--devices N] [--horizon TICKS] [--seed N] [--coverage PER_MILLE] [--reps N] [--gate] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(devices >= 2, "need a fleet plus one cheater slot");
    assert!((1..1000).contains(&coverage), "coverage in 1..=999");
    assert!(horizon > SETTLE + 2 * EPOCH, "horizon too short to settle");

    eprintln!(
        "quorumperf: {devices} devices, horizon {horizon}, coverage {coverage}/1000, seed {seed}"
    );

    // Warm caches and the allocator before any timed run, so the first
    // timed arm is not systematically the slowest.
    let _ = run_fleet(devices, 1, 1000, SETTLE + 2 * EPOCH, seed, false);

    // Arm 1: rounds/sec vs quorum size, full coverage. Heads must agree
    // across every N (honest-unanimous byte-identity).
    let quorum_sizes = [1u16, 3, 5, 7];
    let mut quorum_runs = Vec::new();
    for n in quorum_sizes {
        let r = best_of(reps, || run_fleet(devices, n, 1000, horizon, seed, false));
        eprintln!(
            "  N={n}: {} rounds in {:.3}s ({:.1}/s)",
            r.rounds,
            r.wall,
            r.rounds as f64 / r.wall.max(1e-9)
        );
        quorum_runs.push((n, r));
    }
    let base_heads = &quorum_runs[0].1.heads;
    let heads_identical = quorum_runs.iter().all(|(_, r)| &r.heads == base_heads);
    assert!(
        heads_identical,
        "honest-unanimous quorum changed the evidence history"
    );
    let honest_false_accepts: u64 = quorum_runs.iter().map(|(_, r)| r.false_accepts).sum();

    // Arm 2: sampling cost vs full-coverage cost over the same horizon.
    // Each rep times a (full, sampled) pair back to back and the gate
    // uses the median pairwise ratio: common-mode machine slowdowns hit
    // both halves of a pair and cancel, and the median sheds the
    // remaining outliers.
    let full = &quorum_runs[0].1;
    let mut sampled: Option<RunStats> = None;
    let mut ratios = Vec::new();
    for _ in 0..reps {
        let f = run_fleet(devices, 1, 1000, horizon, seed, false);
        let s = run_fleet(devices, 1, coverage, horizon, seed, false);
        assert_eq!(f.rounds, full.rounds, "reps of a seeded run must agree");
        ratios.push(f.wall / s.wall.max(1e-9));
        sampled = Some(match sampled {
            None => s,
            Some(b) => {
                if s.wall < b.wall {
                    s
                } else {
                    b
                }
            }
        });
    }
    let sampled = sampled.expect("reps >= 1");
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    eprintln!(
        "  sampling {coverage}/1000: {} rounds ({} skips) in {:.3}s vs full {:.3}s — {speedup:.2}x (median of {reps} pairs)",
        sampled.rounds, sampled.skips, sampled.wall, full.wall
    );

    // Arm 3: the planted cheater under sampled coverage. The model's
    // `k` is a 98%-confidence bound over random device/seed draws; for
    // THIS device under THIS plan the first covered epoch after the
    // compromise is deterministic, so that is the exact bound asserted
    // (+1 epoch of round-cadence slack).
    let k = epochs_to_detect(coverage, 980);
    let p_k = detect_probability_per_mille(coverage, k);
    let plan = SamplingConfig {
        coverage_per_mille: coverage,
        seed: 0xC0FFEE,
    };
    let cheater = format!("gpu-{:02}", devices - 1);
    let compromise_epoch = SETTLE / EPOCH;
    let first_covered = (compromise_epoch + 1..)
        .find(|e| covers(&plan, *e, &cheater))
        .expect("coverage > 0 covers every device eventually")
        - compromise_epoch;
    // This arm's horizon must reach the (deterministic) detection
    // epoch plus quarantine margin, whatever --horizon was — its wall
    // is not part of the speedup measurement.
    let cheat_horizon = horizon.max(SETTLE + (compromise_epoch + first_covered + 3) * EPOCH);
    let attacked = run_fleet(devices, 1, coverage, cheat_horizon, seed, true);
    let detected = attacked
        .detected_after_epochs
        .expect("cheater must be detected within the horizon");
    eprintln!(
        "  cheater detected after {detected} epochs (first covered epoch: {first_covered}; model: ≤{k} epochs at {p_k}/1000 over random draws)"
    );
    assert!(
        detected <= first_covered + 1,
        "detection took {detected} epochs but the plan covers the cheater at epoch +{first_covered}"
    );

    let false_accepts = honest_false_accepts + sampled.false_accepts + attacked.false_accepts;
    assert_eq!(false_accepts, 0, "FALSE ACCEPT in a quorumperf arm");

    const MIN_SPEEDUP: f64 = 3.0;
    let speedup_pass = speedup >= MIN_SPEEDUP;
    let pass = speedup_pass && false_accepts == 0 && heads_identical;

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"devices\": {devices},\n  \"horizon_ticks\": {horizon},\n  \"seed\": {seed},\n"
    ));
    out.push_str("  \"quorum\": [\n");
    for (i, (n, r)) in quorum_runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"verifiers\": {n}, \"rounds\": {}, \"wall_seconds\": {:.6}, \"rounds_per_sec\": {:.1}}}{}\n",
            r.rounds,
            r.wall,
            r.rounds as f64 / r.wall.max(1e-9),
            if i + 1 < quorum_runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"heads_identical_across_quorum_sizes\": {heads_identical},\n"
    ));
    out.push_str(&format!(
        "  \"sampling\": {{\"coverage_per_mille\": {coverage}, \"full_wall_seconds\": {:.6}, \"sampled_wall_seconds\": {:.6}, \"full_rounds\": {}, \"sampled_rounds\": {}, \"sampled_skips\": {}, \"speedup\": {speedup:.2}}},\n",
        full.wall, sampled.wall, full.rounds, sampled.rounds, sampled.skips
    ));
    out.push_str(&format!(
        "  \"detection\": {{\"coverage_per_mille\": {coverage}, \"model_k_epochs\": {k}, \"model_p_detect_per_mille\": {p_k}, \"first_covered_epoch_offset\": {first_covered}, \"cheater_detected_after_epochs\": {detected}}},\n"
    ));
    out.push_str(&format!("  \"false_accepts\": {false_accepts},\n"));
    out.push_str(&format!(
        "  \"gate\": {{\"min_speedup\": {MIN_SPEEDUP:.1}, \"speedup_pass\": {speedup_pass}, \"pass\": {pass}}}\n"
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("write BENCH_quorum.json");

    println!(
        "quorum N=1..7 rounds/s: {}; sampling speedup {speedup:.2}x (floor {MIN_SPEEDUP:.1}); cheater caught at its first covered epoch ({detected} epochs, model k={k}); 0 false accepts",
        quorum_runs
            .iter()
            .map(|(n, r)| format!("{n}:{:.0}", r.rounds as f64 / r.wall.max(1e-9)))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("wrote {out_path}");
    if gate && !pass {
        eprintln!("QUORUM GATE FAILED: speedup {speedup:.2} (floor {MIN_SPEEDUP:.1}), false_accepts {false_accepts}, heads_identical {heads_identical}");
        std::process::exit(1);
    }
}
