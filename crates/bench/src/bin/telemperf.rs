//! Telemetry overhead harness: the observability acceptance gate.
//!
//! Measures the cost the telemetry layer adds to the verifier's
//! *bank-hit fast path* — the latency-critical online round
//! (`prepare_round` take + `check_response_precomputed` verdict) that
//! PR 3 carved out — by timing the identical round loop on two
//! verifiers over the same VF build:
//!
//! * **baseline**: no registry attached — the telemetry feature as
//!   every pre-existing caller sees it (a `None` check per verdict);
//! * **instrumented**: attached to a live [`Registry`], so every round
//!   bumps the accept counter, records the measured-cycles histogram
//!   and counts the bank hit.
//!
//! Each repetition prefills the bank off the clock (exactly as
//! background workers do in production), then times `--rounds`
//! hit-take-verdict rounds; arms alternate order between repetitions
//! and each arm keeps its *minimum* wall time, so scheduler noise
//! inflates neither side. The gate asserts the instrumented/baseline
//! ratio stays under `--max-ratio` (default 1.03 — the <3% overhead
//! budget DESIGN.md §8 promises; CI smoke passes 1.10 to absorb shared
//! hardware).
//!
//! The measured VF uses a production-shaped grid (`--blocks`, default
//! 192 — the SIM-LARGE occupancy class `fastpath.rs` benches at):
//! the hit path's real work (challenge-vector handoff plus the
//! integrity-tag walk over `16 x blocks` bytes) scales with the grid,
//! while telemetry's cost is a fixed handful of relaxed atomics per
//! verdict, so a toy 2-block grid would overstate the relative
//! overhead ~5x against a denominator no deployment runs.
//!
//! Telemetry's own books are audited against the harness: the
//! instrumented registry must show exactly `reps x rounds` accepts and
//! bank hits, and the exported registry is embedded in
//! `BENCH_telemetry.json` as the proof artifact.
//!
//! Usage:
//!   telemperf [--rounds N] [--reps N] [--blocks N] [--iterations N]
//!             [--seed N] [--max-ratio R] [--no-gate] [--out PATH]

use std::time::Instant;

use sage::{Calibration, Verifier};
use sage_crypto::DhGroup;
use sage_sgx_sim::SgxPlatform;
use sage_telemetry::{MetricValue, Registry};
use sage_vf::{build_vf, codegen::VfBuild, BankConfig, VfParams};

fn entropy(seed: u8) -> impl FnMut(&mut [u8]) {
    let mut state = seed;
    move |buf: &mut [u8]| {
        for b in buf {
            state = state.wrapping_mul(181).wrapping_add(101);
            *b = state;
        }
    }
}

/// A fast-path verifier over `build`: synthetic calibration (the
/// timing verdict itself runs on both arms equally) and a
/// zero-worker bank sized to hold one full repetition.
fn fastpath_verifier(build: &VfBuild, rounds: usize, seed: u64) -> Verifier {
    let platform = SgxPlatform::new([7u8; 16]);
    let enclave = platform.launch(b"telemperf-verifier", &mut entropy(seed as u8 | 1));
    let mut v = Verifier::new(enclave, build.clone(), DhGroup::test_group());
    v.set_calibration(Calibration::from_samples(&[1_000]));
    v.enable_fast_path(BankConfig {
        capacity: rounds,
        workers: 0,
    });
    v
}

/// One timed repetition: prefill off the clock, then time `rounds`
/// bank-hit rounds end to end (take + value verdict + timing verdict).
fn timed_rounds(v: &mut Verifier, rounds: usize) -> f64 {
    v.prefill_rounds(rounds);
    let t = Instant::now();
    for _ in 0..rounds {
        let (_ch, expected) = v.prepare_round();
        let expected = expected.expect("bank stocked for every timed round");
        v.check_response_precomputed(expected, expected, 1)
            .expect("honest round accepted");
    }
    t.elapsed().as_secs_f64()
}

fn counter_value(reg: &Registry, name: &str) -> u64 {
    reg.collect()
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| match v {
            MetricValue::Counter(c) => *c,
            _ => panic!("{name} is not a counter"),
        })
        .sum()
}

fn main() {
    let mut rounds = 128usize;
    let mut reps = 21usize;
    let mut blocks = 192u32;
    let mut iterations = 2u32;
    let mut seed = 7u64;
    let mut max_ratio = 1.03f64;
    let mut gate = true;
    let mut out_path = String::from("BENCH_telemetry.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds N")
            }
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--blocks" => {
                blocks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--blocks N")
            }
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--iterations N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--max-ratio" => {
                max_ratio = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ratio R")
            }
            "--no-gate" => gate = false,
            "--out" => out_path = args.next().expect("--out PATH"),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: telemperf [--rounds N] [--reps N] [--blocks N] \
                     [--iterations N] [--seed N] [--max-ratio R] [--no-gate] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(rounds >= 16 && reps >= 2 && max_ratio > 1.0);

    let mut params = VfParams::test_tiny();
    params.grid_blocks = blocks;
    params.iterations = iterations;
    let build = build_vf(&params, 0x1000, seed as u32).expect("build VF");
    eprintln!(
        "telemperf: {reps} reps x {rounds} bank-hit rounds, VF {} blocks x {} iterations",
        params.grid_blocks, params.iterations
    );

    // Every repetition builds a *fresh* verifier pair and alternates
    // which arm runs first; each arm keeps its minimum across reps.
    // Interleaving defeats one-sided drift (warmup, frequency scaling,
    // a noisy neighbour mid-run); fresh pairs defeat per-object
    // allocation-layout luck, which at this granularity dwarfs the
    // effect being measured and would otherwise pin one arm to a lucky
    // or unlucky heap placement for the whole run. All instrumented
    // verifiers attach to one registry, so its books still total every
    // instrumented round.
    let reg = Registry::new();
    let (mut base_min, mut instr_min) = (f64::INFINITY, f64::INFINITY);
    let mut hits = 0u64;
    for rep in 0..reps {
        let pair_seed = seed.wrapping_add(rep as u64 * 2);
        let mut baseline = fastpath_verifier(&build, rounds, pair_seed);
        let mut instrumented = fastpath_verifier(&build, rounds, pair_seed.wrapping_add(1));
        instrumented.attach_telemetry(&reg, &[("device", "bench")]);
        if rep % 2 == 0 {
            base_min = base_min.min(timed_rounds(&mut baseline, rounds));
            instr_min = instr_min.min(timed_rounds(&mut instrumented, rounds));
        } else {
            instr_min = instr_min.min(timed_rounds(&mut instrumented, rounds));
            base_min = base_min.min(timed_rounds(&mut baseline, rounds));
        }
        hits += instrumented.bank_counters().expect("fast path on").hits;
    }

    // Telemetry's books must match the harness's: the verdict counters
    // are get-or-create series shared by every instrumented verifier,
    // so the registry totals all instrumented rounds. (Bank counters
    // are *registered* instruments — each pair's bank replaces the last
    // one's series — so hits are totalled verifier-side above.)
    let total = (reps * rounds) as u64;
    let accepts = counter_value(&reg, "verifier_accepts_total");
    assert_eq!(accepts, total, "registry accepts diverged from harness");
    assert_eq!(hits, total, "bank hits diverged from harness rounds");
    assert_eq!(counter_value(&reg, "verifier_rejects_total"), 0);

    let base_ns = base_min / rounds as f64 * 1e9;
    let instr_ns = instr_min / rounds as f64 * 1e9;
    let ratio = instr_min / base_min.max(1e-12);
    eprintln!(
        "fast path: baseline {base_ns:.0} ns/round vs instrumented {instr_ns:.0} ns/round  ({ratio:.4}x)"
    );

    if gate {
        assert!(
            ratio <= max_ratio,
            "telemetry overhead {ratio:.4}x exceeds the {max_ratio:.2}x budget \
             ({base_ns:.0} -> {instr_ns:.0} ns/round)"
        );
    }

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host\": {},\n", sage_bench::host_stanza()));
    out.push_str(&format!(
        "  \"seed\": {seed},\n  \"rounds_per_rep\": {rounds},\n  \"reps\": {reps},\n  \"vf_blocks\": {blocks},\n  \"vf_iterations\": {iterations},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_ns_per_round\": {base_ns:.1},\n  \"instrumented_ns_per_round\": {instr_ns:.1},\n"
    ));
    out.push_str(&format!(
        "  \"overhead_ratio\": {ratio:.4},\n  \"max_ratio\": {max_ratio:.2},\n  \"gate_active\": {gate},\n"
    ));
    out.push_str(&format!(
        "  \"accepts_counted\": {accepts},\n  \"bank_hits_counted\": {hits},\n"
    ));
    out.push_str("  \"registry\": ");
    out.push_str(reg.to_json().trim_end());
    out.push_str("\n}\n");
    std::fs::write(&out_path, out).expect("write BENCH_telemetry.json");

    println!("telemetry overhead on the bank-hit fast path: {ratio:.4}x (budget {max_ratio:.2}x)");
    println!("wrote {out_path}");
}
