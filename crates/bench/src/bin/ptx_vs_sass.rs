//! Reproduces the §7.1 comparison: the optimized microcode schedule vs
//! the "PTXAS with maximum optimization" compiler-style schedule of the
//! same checksum function. The paper measures the optimized version
//! ~230% faster (≈ 2.3×).

use sage_bench::{bench_device, experiments, measure, print_table};

fn main() {
    let cfg = bench_device();
    eprintln!("running §7.1 schedule comparison on {} …", cfg.name);

    let opt =
        measure(&cfg, &experiments::exp1(&cfg), "optimized microcode", 4).expect("optimized run");
    let naive = measure(
        &cfg,
        &experiments::exp1_naive(&cfg),
        "compiler-style (PTX)",
        3,
    )
    .expect("naive run");

    let rows = vec![
        (
            "optimized microcode".to_string(),
            vec![
                format!("{:.0}", opt.t_avg()),
                format!("{:.0}%", opt.utilization * 100.0),
                opt.loop_instructions.to_string(),
                "32".to_string(),
            ],
        ),
        (
            "compiler-style".to_string(),
            vec![
                format!("{:.0}", naive.t_avg()),
                format!("{:.0}%", naive.utilization * 100.0),
                naive.loop_instructions.to_string(),
                "64 (spills)".to_string(),
            ],
        ),
    ];
    print_table(
        "§7.1: schedule comparison",
        &[
            "Tavg [cyc]".into(),
            "% peak".into(),
            "loop insns".into(),
            "regs/thread".into(),
        ],
        &rows,
    );
    let speedup = naive.t_avg() / opt.t_avg();
    println!(
        "\noptimized is {speedup:.2}x faster than the compiler-style schedule \
         (paper: ~2.3x).\n\
         The gap comes from dual-pipe interleaving, scoreboarded loads hidden\n\
         behind the busy-wait pattern, tight stall fields, and full occupancy\n\
         (the compiler-style build spills registers and halves occupancy)."
    );
}
