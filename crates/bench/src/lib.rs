//! Benchmark harnesses that regenerate every table and figure of the
//! SAGE evaluation (paper §7). See DESIGN.md for the experiment index.
//!
//! Binaries (run with `cargo run --release -p sage-bench --bin <name>`):
//!
//! | binary        | reproduces                                        |
//! |---------------|---------------------------------------------------|
//! | `table1`      | Table 1 — checksum implementations (exp. 1–4 + the CCTL extension) |
//! | `table2`      | Table 2 — user-kernel execution under SAGE (§7.4) |
//! | `ptx_vs_sass` | §7.1 — optimized microcode vs compiler-style code |
//! | `robustness`  | §7.2 — detection threshold and adversarial NOP    |
//! | `inclusion`   | §7.3 — memory-region inclusion probability        |
//! | `trng_eval`   | §6.6 — TRNG statistics (ENT + NIST subset)        |
//!
//! Scale note: the paper runs 108 SMs × 100 000 iterations on silicon;
//! the simulator runs a 2-SM device at proportionally reduced iteration
//! counts (`SCALE` constants below). Cycle counts are reported raw and
//! as per-iteration-per-thread figures so shape comparisons against the
//! paper are direct; EXPERIMENTS.md records both sides.

use std::time::Instant;

use sage::GpuSession;
use sage_gpu_sim::{Device, DeviceConfig, LaunchParams, StallReason};
use sage_sgx_sim::EpcModel;
use sage_vf::{expected_checksum, SmcMode, VfParams};

/// The benchmark device: an Ampere-like 2-SM device with the A100 data
/// cache enabled. The 512 KiB checksum region warms into the L2 (which it
/// trivially fits — the A100 has 40 MB) so steady-state loads see L2
/// latency with modest spread, emergently rather than by configuration.
pub fn bench_device() -> DeviceConfig {
    let mut cfg = DeviceConfig::sim_large();
    cfg.num_sms = 2;
    cfg
}

/// Experiment presets mirroring Table 1 (at simulator scale).
pub mod experiments {
    use super::*;

    /// Full-occupancy geometry for the bench device: 2 blocks of 1024
    /// threads per SM (the paper's §6.3 occupancy recipe).
    pub fn geometry(cfg: &DeviceConfig) -> (u32, u32) {
        (cfg.num_sms * 2, 1024)
    }

    fn base(cfg: &DeviceConfig) -> VfParams {
        let (blocks, threads) = geometry(cfg);
        VfParams {
            data_bytes: 512 * 1024, // the paper's 524 288-byte region
            unroll: 15,
            pattern_pairs: 10,
            iterations: 60,
            smc: SmcMode::Off,
            inner: None,
            grid_blocks: blocks,
            block_threads: threads,
            naive_schedule: false,
            injected_nops: 0,
        }
    }

    /// Experiment 1: reference implementation (no SMC, ~420-instruction
    /// loop fitting the instruction caches).
    pub fn exp1(cfg: &DeviceConfig) -> VfParams {
        base(cfg)
    }

    /// Experiment 2: experiment 1 plus one adversarial NOP per loop pass.
    pub fn exp2(cfg: &DeviceConfig) -> VfParams {
        let mut p = base(cfg);
        p.injected_nops = 1;
        p
    }

    /// Experiment 3: self-modifying code with eviction-by-overflow — the
    /// loop exceeds the 128 KiB instruction-cache slice (~8 300
    /// instructions, as the paper's 8 342).
    pub fn exp3(cfg: &DeviceConfig) -> VfParams {
        let mut p = base(cfg);
        p.smc = SmcMode::Evict;
        p.unroll = 305;
        p.iterations = 10;
        p
    }

    /// Experiment 4: experiment 3 plus an inner loop that hides the
    /// instruction-cache misses (and blows up verification cost).
    pub fn exp4(cfg: &DeviceConfig) -> VfParams {
        let mut p = exp3(cfg);
        p.inner = Some((9, 160));
        p.iterations = 4;
        p
    }

    /// Extension experiment (§6.4 proposal): self-modifying code with an
    /// explicit `CCTL` instruction-cache invalidation — small loop, full
    /// utilization.
    pub fn exp5_cctl(cfg: &DeviceConfig) -> VfParams {
        let mut p = base(cfg);
        p.smc = SmcMode::Cctl;
        p
    }

    /// The compiler-style schedule of experiment 1 (§7.1 comparison).
    pub fn exp1_naive(cfg: &DeviceConfig) -> VfParams {
        let mut p = base(cfg);
        p.naive_schedule = true;
        p
    }
}

/// One measured experiment.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Human-readable label.
    pub label: String,
    /// Loop instruction count (Table 1 "instructions").
    pub loop_instructions: usize,
    /// Outer iterations.
    pub iterations: u32,
    /// Inner loop, if any.
    pub inner: Option<(usize, u32)>,
    /// Measured exchange times, cycles (one per run).
    pub samples: Vec<u64>,
    /// Scheduler utilization (fraction of peak issue rate).
    pub utilization: f64,
    /// Fraction of stall cycles attributed to instruction fetch.
    pub ifetch_stall_fraction: f64,
    /// Wall-clock seconds of one verifier replay (the "AMD" column).
    pub verify_seconds: f64,
    /// Modelled enclave verification seconds (the "Intel" column).
    pub verify_seconds_sgx: f64,
}

impl Measurement {
    /// Mean of the samples.
    pub fn t_avg(&self) -> f64 {
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation of the samples.
    pub fn sigma(&self) -> f64 {
        let m = self.t_avg();
        (self
            .samples
            .iter()
            .map(|&s| (s as f64 - m).powi(2))
            .sum::<f64>()
            / self.samples.len() as f64)
            .sqrt()
    }

    /// Minimum sample.
    pub fn t_min(&self) -> u64 {
        *self.samples.iter().min().expect("non-empty")
    }

    /// Simulated seconds at the A100 clock for the mean runtime.
    pub fn t_avg_seconds(&self, cfg: &DeviceConfig) -> f64 {
        cfg.cycles_to_seconds(self.t_avg() as u64)
    }
}

/// Runs one experiment: `runs` timed checksum exchanges (each verified
/// against the replay) plus one instrumented run for utilization, plus a
/// timed verifier replay.
pub fn measure(
    cfg: &DeviceConfig,
    params: &VfParams,
    label: &str,
    runs: usize,
) -> Result<Measurement, sage::SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0xE11A)?;
    let challenges: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                *byte = (sage_vf::spec::splitmix32(b << 8 | i as u32)) as u8;
            }
            c
        })
        .collect();

    // Timed verifier replay ("AMD" column) and checksum expectation.
    let t0 = Instant::now();
    let expected = expected_checksum(session.build(), &challenges);
    let verify_seconds = t0.elapsed().as_secs_f64();
    let epc = EpcModel::default();
    let working_set = params.data_bytes as u64 + params.total_threads() * 32;
    let verify_seconds_sgx = epc.enclave_seconds(verify_seconds, working_set);

    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (got, measured) = session.run_checksum(&challenges)?;
        if got != expected {
            return Err(sage::SageError::ChecksumMismatch { got, expected });
        }
        samples.push(measured);
    }

    // Instrumented run for utilization and stall breakdown.
    let layout = session.build().layout;
    let (_, stats) = session.dev.run_single(LaunchParams {
        ctx: session.ctx,
        entry_pc: layout.entry_addr(),
        grid_dim: params.grid_blocks,
        block_dim: params.block_threads,
        regs_per_thread: session.build().regs_per_thread(),
        smem_bytes: session.build().smem_bytes(),
        params: vec![],
    })?;

    Ok(Measurement {
        label: label.to_string(),
        loop_instructions: session.build().loop_instructions,
        iterations: params.iterations,
        inner: params.inner,
        samples,
        utilization: stats.utilization(),
        ifetch_stall_fraction: stats.stall_fraction(StallReason::InstructionFetch),
        verify_seconds,
        verify_seconds_sgx,
    })
}

/// The shared `host` stanza every `BENCH_*.json` artifact embeds, so a
/// recorded number can always be traced to the machine that produced it
/// (wall-clock figures are meaningless across hosts otherwise). Returns
/// a JSON object: `{"cores": N, "rustc": "rustc 1.x.y (…)"}`.
pub fn host_stanza() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    format!(
        "{{\"cores\": {cores}, \"rustc\": \"{}\"}}",
        rustc.escape_default()
    )
}

/// Renders a list of `(row label, values per column)` as an aligned text
/// table.
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).max(8);
    let col_w: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|(_, vals)| vals.get(i).map(|v| v.len()).unwrap_or(0))
                .max()
                .unwrap_or(0)
                .max(c.len())
        })
        .collect();
    print!("{:label_w$}", "");
    for (c, w) in columns.iter().zip(&col_w) {
        print!("  {c:>w$}");
    }
    println!();
    for (label, vals) in rows {
        print!("{label:label_w$}");
        for (v, w) in vals.iter().zip(&col_w) {
            print!("  {v:>w$}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        let cfg = bench_device();
        for p in [
            experiments::exp1(&cfg),
            experiments::exp2(&cfg),
            experiments::exp3(&cfg),
            experiments::exp4(&cfg),
            experiments::exp5_cctl(&cfg),
            experiments::exp1_naive(&cfg),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn exp3_loop_exceeds_l2i() {
        let cfg = bench_device();
        let p = experiments::exp3(&cfg);
        let build = sage_vf::build_vf(&p, 0, 1).unwrap();
        assert!(build.layout.loop_bytes > cfg.l2i_bytes);
        // ~8300 instructions, mirroring the paper's 8342.
        assert!(build.loop_instructions > 8000 && build.loop_instructions < 8700);
    }

    #[test]
    fn exp1_loop_fits_l0i() {
        let cfg = bench_device();
        let p = experiments::exp1(&cfg);
        let build = sage_vf::build_vf(&p, 0, 1).unwrap();
        assert!(build.layout.loop_bytes < cfg.l0i_bytes);
        // ~420 instructions, mirroring the paper's 428.
        assert!(build.loop_instructions > 380 && build.loop_instructions < 470);
    }

    #[test]
    fn measurement_statistics() {
        let m = Measurement {
            label: "x".into(),
            loop_instructions: 1,
            iterations: 1,
            inner: None,
            samples: vec![10, 14],
            utilization: 0.5,
            ifetch_stall_fraction: 0.0,
            verify_seconds: 1.0,
            verify_seconds_sgx: 4.7,
        };
        assert_eq!(m.t_avg(), 12.0);
        assert_eq!(m.sigma(), 2.0);
        assert_eq!(m.t_min(), 10);
    }

    #[test]
    fn quick_measure_smoke() {
        // A drastically reduced config so this stays fast in CI.
        let mut cfg = bench_device();
        cfg.num_sms = 1;
        let mut p = experiments::exp1(&cfg);
        p.grid_blocks = 2;
        p.block_threads = 128;
        p.iterations = 3;
        p.unroll = 4;
        let m = measure(&cfg, &p, "smoke", 2).unwrap();
        assert_eq!(m.samples.len(), 2);
        assert!(m.utilization > 0.0);
        assert!(m.verify_seconds_sgx > m.verify_seconds);
    }
}
