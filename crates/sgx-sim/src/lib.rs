//! A minimal SGX-like enclave simulator — the trusted host-side substrate
//! SAGE's verifier runs in (paper §4, §6.5).
//!
//! What the verifier actually needs from SGX, and what this crate
//! provides:
//!
//! - **Attestable identity**: an enclave *measurement* (SHA-256 of the
//!   enclave code, an MRENCLAVE analogue) and platform-MAC'd *quotes* an
//!   external challenger can verify ([`enclave`]).
//! - **Sealed storage**: authenticated encryption bound to the platform
//!   key and the measurement.
//! - **A nonce source**: an AES-CTR DRBG seeded at enclave creation
//!   (paper §6.5: "to generate nonces in the enclave … we use AES-CTR
//!   with an IV that has been generated using a TRNG during the enclave
//!   creation").
//! - **An EPC/MEE cost model** ([`epc`]): SGX's memory-encryption and
//!   paging overhead on memory-heavy workloads, used to produce the
//!   paper's "verification (Intel)" column from the plain-CPU
//!   measurement.
//!
//! This is a simulator: isolation is by convention, not hardware. The
//! point is to exercise the same protocol structure and cost model as the
//! paper's setup, not to provide real confidentiality.

pub mod enclave;
pub mod epc;

pub use enclave::{verify_quote, Enclave, Quote, SgxPlatform};
pub use epc::EpcModel;
