//! Enclave lifecycle: measurement, quotes, sealing, DRBG.

use std::collections::HashMap;

use sage_crypto::{
    cmac::{cmac_aes128, cmac_verify},
    ctr::AesCtr,
    sha256::{sha256, Sha256},
    EntropySource,
};

/// The platform: holds the hardware root key that MACs quotes and derives
/// sealing keys (the analogue of the fused SGX keys).
pub struct SgxPlatform {
    root_key: [u8; 16],
}

impl SgxPlatform {
    /// Creates a platform with the given root key (in reality fused at
    /// manufacturing).
    pub fn new(root_key: [u8; 16]) -> SgxPlatform {
        SgxPlatform { root_key }
    }

    /// Launches an enclave from its code image, seeding its DRBG from
    /// `entropy`.
    pub fn launch(&self, code_image: &[u8], entropy: &mut dyn EntropySource) -> Enclave {
        let measurement = sha256(code_image);
        let mut iv = [0u8; 16];
        entropy.fill(&mut iv);
        let mut drbg_key = [0u8; 16];
        entropy.fill(&mut drbg_key);
        Enclave {
            measurement,
            drbg: AesCtr::new(&drbg_key, &iv),
            sealed: HashMap::new(),
            seal_key: self.derive_seal_key(&measurement),
            quote_key: self.root_key,
        }
    }

    /// Derives the per-enclave sealing key (`MRENCLAVE` policy).
    fn derive_seal_key(&self, measurement: &[u8; 32]) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(b"seal");
        h.update(&self.root_key);
        h.update(measurement);
        let d = h.finalize();
        d[..16].try_into().expect("16 bytes")
    }

    /// The verification key an external challenger uses for quotes (in
    /// real SGX this is the attestation service's job).
    pub fn quote_verification_key(&self) -> [u8; 16] {
        self.root_key
    }
}

/// A MAC'd attestation quote over (measurement, user data).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// Enclave measurement (MRENCLAVE analogue).
    pub measurement: [u8; 32],
    /// Caller-chosen report data (e.g. a protocol transcript hash).
    pub user_data: [u8; 32],
    /// Platform MAC over the above.
    pub mac: [u8; 16],
}

/// A running enclave.
pub struct Enclave {
    measurement: [u8; 32],
    drbg: AesCtr,
    sealed: HashMap<String, Vec<u8>>,
    seal_key: [u8; 16],
    quote_key: [u8; 16],
}

impl Enclave {
    /// The enclave measurement.
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Draws `n` bytes from the enclave DRBG (AES-CTR).
    pub fn random(&mut self, n: usize) -> Vec<u8> {
        self.drbg.keystream_bytes(n)
    }

    /// Draws a 16-byte nonce (the per-SM challenge values).
    pub fn nonce16(&mut self) -> [u8; 16] {
        self.random(16).try_into().expect("16 bytes")
    }

    /// Draws a 32-byte random value.
    pub fn nonce32(&mut self) -> [u8; 32] {
        self.random(32).try_into().expect("32 bytes")
    }

    /// Produces a quote binding `user_data` to this enclave's identity.
    pub fn quote(&self, user_data: [u8; 32]) -> Quote {
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(&self.measurement);
        msg.extend_from_slice(&user_data);
        Quote {
            measurement: self.measurement,
            user_data,
            mac: cmac_aes128(&self.quote_key, &msg),
        }
    }

    /// Seals `data` under `label` (encrypt-then-MAC, bound to the
    /// measurement).
    pub fn seal(&mut self, label: &str, data: &[u8]) {
        let mut iv = [0u8; 16];
        let fresh = self.random(16);
        iv.copy_from_slice(&fresh);
        let mut ct = data.to_vec();
        AesCtr::new(&self.seal_key, &iv).apply(&mut ct);
        let mut blob = iv.to_vec();
        blob.extend_from_slice(&ct);
        let mac = cmac_aes128(&self.seal_key, &blob);
        blob.extend_from_slice(&mac);
        self.sealed.insert(label.to_string(), blob);
    }

    /// Unseals `label`, verifying integrity.
    pub fn unseal(&self, label: &str) -> Option<Vec<u8>> {
        let blob = self.sealed.get(label)?;
        if blob.len() < 32 {
            return None;
        }
        let (body, mac) = blob.split_at(blob.len() - 16);
        if !cmac_verify(&self.seal_key, body, mac) {
            return None;
        }
        let (iv, ct) = body.split_at(16);
        let mut pt = ct.to_vec();
        AesCtr::new(&self.seal_key, &iv.try_into().expect("16 bytes")).apply(&mut pt);
        Some(pt)
    }

    /// Mutable access to the sealed-blob store (test/attack surface: the
    /// untrusted OS can corrupt sealed blobs, but not forge them).
    pub fn sealed_store_mut(&mut self) -> &mut HashMap<String, Vec<u8>> {
        &mut self.sealed
    }
}

/// Verifies a quote against the platform verification key.
pub fn verify_quote(verification_key: &[u8; 16], quote: &Quote) -> bool {
    let mut msg = Vec::with_capacity(64);
    msg.extend_from_slice(&quote.measurement);
    msg.extend_from_slice(&quote.user_data);
    cmac_verify(verification_key, &msg, &quote.mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entropy() -> impl EntropySource {
        let mut state = 7u8;
        move |buf: &mut [u8]| {
            for b in buf {
                state = state.wrapping_mul(181).wrapping_add(101);
                *b = state;
            }
        }
    }

    fn platform() -> SgxPlatform {
        SgxPlatform::new([0x42; 16])
    }

    #[test]
    fn measurement_is_code_hash() {
        let p = platform();
        let e = p.launch(b"verifier-v1", &mut entropy());
        assert_eq!(e.measurement(), sha256(b"verifier-v1"));
    }

    #[test]
    fn quotes_verify_and_bind_data() {
        let p = platform();
        let e = p.launch(b"verifier-v1", &mut entropy());
        let q = e.quote([9u8; 32]);
        assert!(verify_quote(&p.quote_verification_key(), &q));

        // Tampered user data fails.
        let mut bad = q.clone();
        bad.user_data[0] ^= 1;
        assert!(!verify_quote(&p.quote_verification_key(), &bad));

        // A different platform key fails.
        assert!(!verify_quote(&[0x43; 16], &q));

        // A different enclave produces a different measurement.
        let e2 = p.launch(b"verifier-v2", &mut entropy());
        assert_ne!(e2.quote([9u8; 32]).measurement, q.measurement);
    }

    #[test]
    fn drbg_streams_are_distinct_and_deterministic_per_seed() {
        let p = platform();
        let mut src = entropy();
        let mut e1 = p.launch(b"code", &mut src);
        let mut e2 = p.launch(b"code", &mut src);
        // Different creation entropy draws → different nonces.
        assert_ne!(e1.nonce16(), e2.nonce16());
        // Within one enclave, successive nonces differ.
        assert_ne!(e1.nonce16(), e1.nonce16());
    }

    #[test]
    fn seal_unseal_round_trip() {
        let p = platform();
        let mut e = p.launch(b"code", &mut entropy());
        e.seal("dh-key", b"secret material");
        assert_eq!(e.unseal("dh-key").unwrap(), b"secret material");
        assert_eq!(e.unseal("missing"), None);
    }

    #[test]
    fn corrupted_sealed_blob_rejected() {
        let p = platform();
        let mut e = p.launch(b"code", &mut entropy());
        e.seal("k", b"data");
        e.sealed_store_mut().get_mut("k").unwrap()[20] ^= 1;
        assert_eq!(e.unseal("k"), None);
    }
}
