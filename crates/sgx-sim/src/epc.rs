//! EPC / memory-encryption-engine cost model.
//!
//! The paper reports verification times on two hosts (Table 1): a
//! dual-socket AMD EPYC 7742 running the verifier natively, and an Intel
//! Xeon Gold 6348 running it inside SGX, where the Memory Encryption
//! Engine and EPC management slow memory-heavy replay down by roughly
//! 4.7× (102 s vs 21.6 s for experiment 1). Real EPC overhead cannot be
//! measured without SGX hardware, so this model reproduces it as a
//! calibrated multiplier with a small working-set-dependent ramp: inside
//! the (historical) 92 MiB usable EPC the MEE costs a fixed factor; once
//! the working set exceeds the EPC, paging multiplies the cost further.

/// Cost model for enclave execution time.
#[derive(Clone, Copy, Debug)]
pub struct EpcModel {
    /// Usable EPC size in bytes (92 MiB on the paper-era parts).
    pub epc_bytes: u64,
    /// MEE slowdown for workloads fitting in the EPC (calibrated to the
    /// paper's Intel/AMD ratio).
    pub mee_factor: f64,
    /// Additional multiplier applied to the portion of the working set
    /// that spills past the EPC (page-swap cost).
    pub paging_factor: f64,
}

impl Default for EpcModel {
    fn default() -> EpcModel {
        EpcModel {
            epc_bytes: 92 * 1024 * 1024,
            // 102 s (Intel, in SGX) / 21.6 s (AMD, native) ≈ 4.72 from
            // Table 1, experiments 1–2. The dominant term is the MEE plus
            // the core-count difference between the two hosts; we fold
            // both into one verifier-host factor.
            mee_factor: 4.72,
            paging_factor: 12.0,
        }
    }
}

impl EpcModel {
    /// Converts a native execution time into the modelled enclave time
    /// for a given working-set size.
    pub fn enclave_seconds(&self, native_seconds: f64, working_set_bytes: u64) -> f64 {
        if working_set_bytes <= self.epc_bytes {
            native_seconds * self.mee_factor
        } else {
            let resident = self.epc_bytes as f64 / working_set_bytes as f64;
            let spilled = 1.0 - resident;
            native_seconds * (self.mee_factor * resident + self.paging_factor * spilled)
        }
    }

    /// The effective slowdown factor for a working set.
    pub fn factor(&self, working_set_bytes: u64) -> f64 {
        self.enclave_seconds(1.0, working_set_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_epc_uses_mee_factor() {
        let m = EpcModel::default();
        let t = m.enclave_seconds(21.6, 1024 * 1024);
        assert!((t - 21.6 * 4.72).abs() < 1e-9);
        // Matches the paper's Table 1 shape: ≈ 102 s.
        assert!((t - 102.0).abs() < 2.0);
    }

    #[test]
    fn spilling_working_sets_pay_paging() {
        let m = EpcModel::default();
        let inside = m.factor(64 * 1024 * 1024);
        let outside = m.factor(1024 * 1024 * 1024);
        assert!(outside > inside);
        assert!(outside > 4.72 && outside <= 12.0);
    }

    #[test]
    fn factor_is_monotonic_in_working_set() {
        let m = EpcModel::default();
        let mut last = 0.0;
        for ws in [1u64 << 20, 1 << 26, 1 << 27, 1 << 28, 1 << 30, 1 << 34] {
            let f = m.factor(ws);
            assert!(f >= last, "ws={ws} f={f} last={last}");
            last = f;
        }
    }
}
