//! Property-based round-trip tests over the whole instruction space:
//! typed → binary → typed, and typed → text → typed (paper Fig. 6's
//! encode/decode framework must be lossless for the checksum to be
//! replayable).

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage_isa::{
    encode::{decode_bytes, encode_bytes, patch_immediate_bytes, read_immediate_bytes},
    CmpOp, CtrlInfo, Instruction, Opcode, Operand, Pred, PredReg, Program, Reg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..32).prop_map(Reg), Just(Reg::RZ)]
}

fn arb_ctrl() -> impl Strategy<Value = CtrlInfo> {
    (
        0u8..16,
        0u8..64,
        prop_oneof![Just(None), (0u8..6).prop_map(Some)],
        prop_oneof![Just(None), (0u8..6).prop_map(Some)],
        any::<bool>(),
        0u8..16,
    )
        .prop_map(
            |(reuse, wait_mask, read_bar, write_bar, yield_flag, stall)| CtrlInfo {
                reuse,
                wait_mask,
                read_bar,
                write_bar,
                yield_flag,
                stall,
            },
        )
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (
        prop_oneof![Just(PredReg::PT), (0u8..7).prop_map(PredReg)],
        any::<bool>(),
    )
        .prop_map(|(reg, neg)| Pred { reg, neg })
}

/// Generates a structurally valid instruction for every opcode, with the
/// same operand shapes the assembler would produce.
fn arb_insn() -> impl Strategy<Value = Instruction> {
    (
        prop::sample::select(Opcode::ALL.to_vec()),
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<u32>(),
        0u8..32,
        any::<u8>(),
        prop::sample::select(CmpOp::ALL.to_vec()),
        arb_ctrl(),
        arb_pred(),
        any::<bool>(),
    )
        .prop_map(
            |(op, dst, ra, rc, imm, shift, lut, cmp, ctrl, pred, use_imm)| {
                let mut i = Instruction::new(op);
                i.ctrl = ctrl;
                i.pred = pred;
                match op {
                    Opcode::Nop | Opcode::BarSync | Opcode::Bsync | Opcode::Ret | Opcode::Exit => {}
                    Opcode::Imad | Opcode::Iadd3 | Opcode::Ffma => {
                        i.dst = dst;
                        i.srcs = [
                            ra.into(),
                            if use_imm {
                                Operand::Imm(imm)
                            } else {
                                rc.into()
                            },
                            rc.into(),
                        ];
                    }
                    Opcode::Lea | Opcode::LeaHi => {
                        i.dst = dst;
                        i.srcs = [ra.into(), rc.into(), Operand::RZ];
                        i.shift = shift;
                    }
                    Opcode::ShfL | Opcode::ShfR => {
                        i.dst = dst;
                        i.srcs = [ra.into(), Operand::Imm(imm & 31), rc.into()];
                    }
                    Opcode::Lop3 => {
                        i.dst = dst;
                        i.srcs = [ra.into(), rc.into(), ra.into()];
                        i.lut = lut;
                    }
                    Opcode::Mov | Opcode::I2f | Opcode::F2i => {
                        i.dst = dst;
                        i.srcs[0] = if use_imm && op == Opcode::Mov {
                            Operand::Imm(imm)
                        } else {
                            ra.into()
                        };
                    }
                    Opcode::Fadd | Opcode::Fmul => {
                        i.dst = dst;
                        i.srcs[0] = ra.into();
                        i.srcs[1] = rc.into();
                    }
                    Opcode::Isetp => {
                        i.dst_pred = Some(PredReg(lut % 7));
                        i.cmp = cmp;
                        i.srcs[0] = ra.into();
                        i.srcs[1] = rc.into();
                    }
                    Opcode::S2r => {
                        i.dst = dst;
                        i.srcs[1] = Operand::Imm((imm % 8) as u32);
                    }
                    Opcode::Lepc => i.dst = dst,
                    Opcode::Ldg | Opcode::Lds => {
                        i.dst = dst;
                        i.srcs[0] = ra.into();
                        i.srcs[1] = Operand::Imm(imm & 0xFFFF);
                    }
                    Opcode::Stg | Opcode::Sts | Opcode::AtomgAdd | Opcode::AtomsAdd => {
                        i.srcs[0] = ra.into();
                        i.srcs[1] = Operand::Imm(imm & 0xFFFF);
                        i.srcs[2] = rc.into();
                    }
                    Opcode::Cctl => {
                        i.srcs[0] = ra.into();
                        i.srcs[1] = Operand::Imm(imm & 0xFFFF);
                    }
                    Opcode::Bra | Opcode::Bssy | Opcode::Cal => {
                        i.srcs[1] = Operand::Imm(imm & 0xFFFF_FFF0);
                    }
                    Opcode::Jmx => {
                        i.srcs[0] = ra.into();
                    }
                }
                i
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_round_trip(insn in arb_insn()) {
        let bytes = encode_bytes(&insn);
        let back = decode_bytes(&bytes).unwrap();
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn text_round_trip(insn in arb_insn()) {
        // The text control prefix (paper syntax) carries no reuse flags,
        // so text round-trips are exact up to `reuse`.
        let mut insn = insn;
        insn.ctrl.reuse = 0;
        let text = insn.to_string();
        let prog = Program::assemble(&text)
            .unwrap_or_else(|e| panic!("reassembly of `{text}` failed: {e}"));
        prop_assert_eq!(prog.insns[0], insn);
    }

    #[test]
    fn immediate_patch_is_isolated(insn in arb_insn(), value in any::<u32>()) {
        // Patching the immediate field of the encoded word must change the
        // immediate and nothing else.
        let mut bytes = encode_bytes(&insn);
        let original = decode_bytes(&bytes).unwrap();
        patch_immediate_bytes(&mut bytes, value);
        prop_assert_eq!(read_immediate_bytes(&bytes), value);
        let patched = decode_bytes(&bytes).unwrap();
        let mut expect = original;
        if expect.imm_count() == 1 {
            expect.patch_immediate(value);
        } else {
            // No immediate operand: the field is ignored by decode.
        }
        prop_assert_eq!(patched.op, expect.op);
        prop_assert_eq!(patched.ctrl, expect.ctrl);
        prop_assert_eq!(patched.dst, expect.dst);
        if original.imm_count() == 1 {
            prop_assert_eq!(patched, expect);
        }
    }

    #[test]
    fn program_round_trip(insns in prop::collection::vec(arb_insn(), 1..64)) {
        let insns = insns
            .into_iter()
            .map(|mut i| {
                // Text syntax carries no reuse flags; see text_round_trip.
                i.ctrl.reuse = 0;
                i
            })
            .collect();
        let prog = Program { insns, labels: Default::default() };
        let decoded = Program::decode(&prog.encode()).unwrap();
        prop_assert_eq!(&decoded.insns, &prog.insns);
        let reasm = Program::assemble(&prog.disassemble()).unwrap();
        prop_assert_eq!(&reasm.insns, &prog.insns);
    }
}
