//! A program: an ordered instruction sequence with labels, binary
//! round-tripping, relocation and immediate patching.

use std::collections::HashMap;

use crate::{
    asm::{assemble, AsmError},
    encode::{decode_bytes, encode_bytes, DecodeError},
    insn::{Instruction, Operand},
    op::Opcode,
    INSN_BYTES,
};

/// An instruction sequence plus label map.
///
/// Addresses are byte offsets from the program base; instruction `i` sits
/// at byte `i * 16`. Programs are assembled relative to base `0` and can be
/// [`relocate`](Program::relocate)d when loaded at a different device
/// address (the VF loader does this, paper §5.2.1).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The instructions, in order.
    pub insns: Vec<Instruction>,
    /// Label name → instruction index.
    pub labels: HashMap<String, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Assembles source text (see [`crate::asm`] for the syntax).
    pub fn assemble(src: &str) -> Result<Program, AsmError> {
        let (insns, labels) = assemble(src)?;
        Ok(Program { insns, labels })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Size of the encoded program in bytes.
    pub fn byte_len(&self) -> usize {
        self.insns.len() * INSN_BYTES
    }

    /// Returns the byte address of a label.
    pub fn label_addr(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&i| (i * INSN_BYTES) as u32)
    }

    /// Encodes to microcode bytes (16 bytes per instruction, little
    /// endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        for i in &self.insns {
            out.extend_from_slice(&encode_bytes(i));
        }
        out
    }

    /// Decodes microcode bytes produced by [`Program::encode`].
    ///
    /// Labels are not preserved in the binary and come back empty.
    pub fn decode(bytes: &[u8]) -> Result<Program, DecodeError> {
        if !bytes.len().is_multiple_of(INSN_BYTES) {
            return Err(DecodeError::Truncated(bytes.len()));
        }
        let mut insns = Vec::with_capacity(bytes.len() / INSN_BYTES);
        for chunk in bytes.chunks_exact(INSN_BYTES) {
            let mut word = [0u8; INSN_BYTES];
            word.copy_from_slice(chunk);
            insns.push(decode_bytes(&word)?);
        }
        Ok(Program {
            insns,
            labels: HashMap::new(),
        })
    }

    /// Produces the disassembly listing, one instruction per line with the
    /// control prefix, in the same syntax [`Program::assemble`] accepts.
    pub fn disassemble(&self) -> String {
        let mut addr_to_label: HashMap<usize, &str> = HashMap::new();
        for (name, &idx) in &self.labels {
            addr_to_label.insert(idx, name);
        }
        let mut out = String::new();
        for (idx, insn) in self.insns.iter().enumerate() {
            if let Some(name) = addr_to_label.get(&idx) {
                out.push_str(name);
                out.push_str(":\n");
            }
            out.push_str(&insn.to_string());
            out.push('\n');
        }
        out
    }

    /// Adds `base` to every absolute control-flow target (`BRA`, `BSSY`,
    /// `CAL`), for loading the program at device address `base`.
    pub fn relocate(&mut self, base: u32) {
        for insn in &mut self.insns {
            if matches!(insn.op, Opcode::Bra | Opcode::Bssy | Opcode::Cal) {
                if let Operand::Imm(t) = insn.srcs[1] {
                    insn.srcs[1] = Operand::Imm(t.wrapping_add(base));
                }
            }
        }
    }

    /// Appends another program, relocating its control-flow targets and
    /// renaming clashing labels with a `suffix`.
    pub fn append(&mut self, mut other: Program) {
        let base = self.byte_len() as u32;
        other.relocate(base);
        let offset = self.insns.len();
        for (name, idx) in other.labels {
            self.labels.entry(name).or_insert(idx + offset);
        }
        self.insns.extend(other.insns);
    }

    /// Patches the immediate operand of the instruction at `index`,
    /// returning the previous value.
    ///
    /// This is the typed equivalent of the byte-level patch that
    /// self-modifying code performs on the device.
    pub fn patch_immediate(&mut self, index: usize, value: u32) -> Option<u32> {
        self.insns.get_mut(index)?.patch_immediate(value)
    }

    /// Statically validates the program for loading: control-flow
    /// targets must be 16-byte aligned and inside `[0, code_limit)`
    /// (after relocation, pass the code segment's end), and `EXIT` must
    /// be reachable as the final instruction of straight-line fallthrough
    /// (the last instruction must be a terminator).
    ///
    /// Returns a list of human-readable findings; empty means valid.
    pub fn validate(&self, code_limit: u32) -> Vec<String> {
        let mut findings = Vec::new();
        for (i, insn) in self.insns.iter().enumerate() {
            if matches!(insn.op, Opcode::Bra | Opcode::Bssy | Opcode::Cal) {
                if let Operand::Imm(t) = insn.srcs[1] {
                    if t % INSN_BYTES as u32 != 0 {
                        findings.push(format!("insn {i}: misaligned target {t:#x}"));
                    }
                    if t >= code_limit {
                        findings.push(format!(
                            "insn {i}: target {t:#x} beyond code limit {code_limit:#x}"
                        ));
                    }
                }
            }
        }
        match self.insns.last() {
            None => findings.push("empty program".to_string()),
            Some(last) => {
                if !matches!(
                    last.op,
                    Opcode::Exit | Opcode::Bra | Opcode::Ret | Opcode::Jmx
                ) {
                    findings.push(format!(
                        "last instruction {} falls through past the end",
                        last.op
                    ));
                }
            }
        }
        findings
    }

    /// Counts instructions per opcode, for utilization accounting.
    pub fn histogram(&self) -> HashMap<Opcode, usize> {
        let mut h = HashMap::new();
        for insn in &self.insns {
            *h.entry(insn.op).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    const SRC: &str = "\
entry:
B------|R-|W0|Y0|S01| LDG.E R8, [R2+0x0] ;
B0-----|R-|W-|Y0|S02| IMAD R4, R8, 0x11, R4 ;
@!P0 BRA entry ;
EXIT ;
";

    #[test]
    fn encode_decode_round_trip() {
        let p = Program::assemble(SRC).unwrap();
        let q = Program::decode(&p.encode()).unwrap();
        assert_eq!(p.insns, q.insns);
    }

    #[test]
    fn disassemble_reassembles_identically() {
        let p = Program::assemble(SRC).unwrap();
        let q = Program::assemble(&p.disassemble()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn relocation_adjusts_branch_targets() {
        let mut p = Program::assemble(SRC).unwrap();
        p.relocate(0x1000);
        assert_eq!(p.insns[2].srcs[1], Operand::Imm(0x1000));
    }

    #[test]
    fn append_relocates_and_offsets_labels() {
        let mut a = Program::assemble("NOP ;\nNOP ;").unwrap();
        let b = Program::assemble("tail:\nBRA tail ;").unwrap();
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.labels["tail"], 2);
        assert_eq!(a.insns[2].srcs[1], Operand::Imm(32));
    }

    #[test]
    fn truncated_bytes_rejected() {
        assert_eq!(Program::decode(&[0u8; 15]), Err(DecodeError::Truncated(15)));
    }

    #[test]
    fn histogram_counts() {
        let p = Program::assemble(SRC).unwrap();
        let h = p.histogram();
        assert_eq!(h[&Opcode::Ldg], 1);
        assert_eq!(h[&Opcode::Exit], 1);
    }

    #[test]
    fn validate_catches_loader_hazards() {
        let good = Program::assemble(SRC).unwrap();
        assert!(good.validate(4096).is_empty());

        // Target beyond the code limit.
        let p = Program::assemble("BRA 0x4000 ;\nEXIT ;").unwrap();
        assert_eq!(p.validate(0x100).len(), 1);

        // Misaligned target.
        let mut p = Program::assemble("BRA 0x0 ;\nEXIT ;").unwrap();
        p.insns[0].srcs[1] = Operand::Imm(0x8);
        assert_eq!(p.validate(4096).len(), 1);

        // Fallthrough off the end.
        let p = Program::assemble("NOP ;").unwrap();
        assert_eq!(p.validate(4096).len(), 1);

        // Empty program.
        assert_eq!(Program::new().validate(4096).len(), 1);
    }

    #[test]
    fn patch_immediate_typed() {
        let mut p = Program::assemble("IMAD R4, R4, 0x11, R5 ;").unwrap();
        assert_eq!(p.patch_immediate(0, 0x21), Some(0x11));
        assert_eq!(p.insns[0].immediate(), Some(0x21));
        assert_eq!(p.insns[0].srcs[2], Operand::Reg(Reg(5)));
    }
}
