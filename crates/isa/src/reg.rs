//! Register operands: general-purpose registers, predicate registers and
//! special (read-only) registers.

use core::fmt;

/// A general-purpose 32-bit register.
///
/// Registers `R0`–`R254` are ordinary registers; `R255` is the hardwired
/// zero register [`Reg::RZ`] (reads as `0`, writes are discarded), mirroring
/// SASS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const RZ: Reg = Reg(255);

    /// Returns `true` if this is the zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 255
    }

    /// Returns the register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A 1-bit predicate register.
///
/// `P0`–`P6` are ordinary predicates; `P7` is the hardwired true predicate
/// [`PredReg::PT`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredReg(pub u8);

impl PredReg {
    /// The hardwired true predicate.
    pub const PT: PredReg = PredReg(7);

    /// Returns `true` if this is the hardwired true predicate.
    pub fn is_true(self) -> bool {
        self.0 == 7
    }

    /// Returns the predicate index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl fmt::Debug for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Special read-only registers exposed through `S2R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum SpecialReg {
    /// Thread index within the thread block (x dimension).
    TidX = 0,
    /// Thread-block index within the grid (x dimension).
    CtaIdX = 1,
    /// Number of thread blocks in the grid (x dimension).
    NCtaIdX = 2,
    /// Lane index within the warp (0–31).
    LaneId = 3,
    /// Warp index within the thread block.
    WarpId = 4,
    /// Physical streaming-multiprocessor identifier.
    SmId = 5,
    /// Low 32 bits of the SM cycle counter.
    ClockLo = 6,
    /// Number of threads per block (x dimension).
    NTidX = 7,
}

impl SpecialReg {
    /// All special registers, in encoding order.
    pub const ALL: [SpecialReg; 8] = [
        SpecialReg::TidX,
        SpecialReg::CtaIdX,
        SpecialReg::NCtaIdX,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
        SpecialReg::SmId,
        SpecialReg::ClockLo,
        SpecialReg::NTidX,
    ];

    /// Decodes a special register from its encoding value.
    pub fn from_code(code: u8) -> Option<SpecialReg> {
        SpecialReg::ALL.get(code as usize).copied()
    }

    /// Returns the encoding value.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Returns the SASS-style name.
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
            SpecialReg::SmId => "SR_SMID",
            SpecialReg::ClockLo => "SR_CLOCKLO",
            SpecialReg::NTidX => "SR_NTID.X",
        }
    }

    /// Parses a SASS-style name.
    pub fn from_name(name: &str) -> Option<SpecialReg> {
        SpecialReg::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_display() {
        assert_eq!(Reg::RZ.to_string(), "RZ");
        assert_eq!(Reg(7).to_string(), "R7");
        assert!(Reg::RZ.is_zero());
        assert!(!Reg(0).is_zero());
    }

    #[test]
    fn predicate_display() {
        assert_eq!(PredReg::PT.to_string(), "PT");
        assert_eq!(PredReg(3).to_string(), "P3");
        assert!(PredReg::PT.is_true());
    }

    #[test]
    fn special_reg_round_trip() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_code(sr.code()), Some(sr));
            assert_eq!(SpecialReg::from_name(sr.name()), Some(sr));
        }
        assert_eq!(SpecialReg::from_code(200), None);
        assert_eq!(SpecialReg::from_name("SR_BOGUS"), None);
    }
}
