//! Text assembler for the SASS-like syntax used throughout the paper.
//!
//! Accepts exactly the syntax the disassembler produces, e.g.:
//!
//! ```text
//! B------|R-|W-|Y1|S01| IMAD R28, R28, 0x800, R28 ;
//! B--2---|R-|W0|Y0|S04| LDG.E R8, [R2+0x10] ;
//! loop:
//!     @!P0 BRA loop ;
//! ```
//!
//! The 21-character control prefix is optional (defaulting to
//! `B------|R-|W-|Y0|S01|`), labels may be defined with `name:` and used
//! as branch/call targets, and `//`-comments are ignored.

use std::collections::HashMap;
use std::fmt;

use crate::{
    ctrl::CtrlInfo,
    insn::{Instruction, Operand, Pred},
    op::{CmpOp, Opcode},
    reg::{PredReg, Reg, SpecialReg},
    INSN_BYTES,
};

/// An assembly error, with the 1-based source line it occurred on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Result of parsing one source line.
enum Line {
    Empty,
    Label(String),
    Insn(Instruction, Option<String>),
}

/// Assembles source text into instructions plus a label map.
///
/// Returns the instruction list and a map from label name to instruction
/// index. Branch targets referencing labels are resolved to absolute byte
/// addresses (`index * 16`) relative to a zero program base; callers that
/// load code at a different base must relocate (see
/// [`crate::program::Program::relocate`]).
pub fn assemble(src: &str) -> Result<(Vec<Instruction>, HashMap<String, usize>), AsmError> {
    let mut insns: Vec<Instruction> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (insn idx, label, line)

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        match parse_line(raw, lineno)? {
            Line::Empty => {}
            Line::Label(name) => {
                if labels.insert(name.clone(), insns.len()).is_some() {
                    return err(lineno, format!("duplicate label `{name}`"));
                }
            }
            Line::Insn(insn, label_ref) => {
                if let Some(label) = label_ref {
                    fixups.push((insns.len(), label, lineno));
                }
                insns.push(insn);
            }
        }
    }

    for (idx, label, lineno) in fixups {
        let Some(&target) = labels.get(&label) else {
            return err(lineno, format!("undefined label `{label}`"));
        };
        insns[idx].srcs[1] = Operand::Imm((target * INSN_BYTES) as u32);
    }

    Ok((insns, labels))
}

fn parse_line(raw: &str, lineno: usize) -> Result<Line, AsmError> {
    let no_comment = match raw.find("//") {
        Some(pos) => &raw[..pos],
        None => raw,
    };
    let mut s = no_comment.trim();
    if s.is_empty() {
        return Ok(Line::Empty);
    }
    if let Some(name) = s.strip_suffix(':') {
        let name = name.trim();
        if name.is_empty() || !is_ident(name) {
            return err(lineno, format!("invalid label `{name}`"));
        }
        return Ok(Line::Label(name.to_string()));
    }

    // Optional fixed-width control prefix: `B......|R.|W.|Y.|S..|`.
    let mut ctrl = CtrlInfo::default();
    if s.len() >= 21 && s.starts_with('B') && s.as_bytes().get(7) == Some(&b'|') {
        ctrl = parse_ctrl(&s[..21], lineno)?;
        s = s[21..].trim_start();
    }

    // Optional predicate guard.
    let mut pred = Pred::TRUE;
    if let Some(rest) = s.strip_prefix('@') {
        let (neg, rest) = match rest.strip_prefix('!') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let end = rest.find(char::is_whitespace).ok_or_else(|| AsmError {
            line: lineno,
            msg: "predicate guard without instruction".into(),
        })?;
        let preg = parse_pred_reg(&rest[..end], lineno)?;
        pred = Pred { reg: preg, neg };
        s = rest[end..].trim_start();
    }

    let s = s.strip_suffix(';').map(str::trim_end).unwrap_or(s);
    let (mnemonic, rest) = match s.find(char::is_whitespace) {
        Some(pos) => (&s[..pos], s[pos..].trim_start()),
        None => (s, ""),
    };

    let (insn, label_ref) = parse_insn(mnemonic, rest, lineno)?;
    let mut insn = insn;
    insn.pred = pred;
    insn.ctrl = ctrl;
    Ok(Line::Insn(insn, label_ref))
}

fn parse_ctrl(s: &str, lineno: usize) -> Result<CtrlInfo, AsmError> {
    let bad = || AsmError {
        line: lineno,
        msg: format!("malformed control prefix `{s}`"),
    };
    let b = s.as_bytes();
    // Layout: B(1) wait(6) |R(2) rd(1) |W(2) wr(1) |Y(2) y(1) |S(2) dd(2) |(1)
    if b.len() != 21
        || b[0] != b'B'
        || &s[7..9] != "|R"
        || &s[10..12] != "|W"
        || &s[13..15] != "|Y"
        || &s[16..18] != "|S"
        || b[20] != b'|'
    {
        return Err(bad());
    }
    let mut wait_mask = 0u8;
    for (slot, ch) in s[1..7].bytes().enumerate() {
        match ch {
            b'-' | b'.' => {}
            b'0'..=b'5' => {
                if (ch - b'0') as usize != slot {
                    return Err(bad());
                }
                wait_mask |= 1 << slot;
            }
            _ => return Err(bad()),
        }
    }
    let bar = |ch: u8| -> Result<Option<u8>, AsmError> {
        match ch {
            b'-' => Ok(None),
            b'0'..=b'5' => Ok(Some(ch - b'0')),
            _ => Err(bad()),
        }
    };
    let read_bar = bar(b[9])?;
    let write_bar = bar(b[12])?;
    let yield_flag = match b[15] {
        b'0' => false,
        b'1' => true,
        _ => return Err(bad()),
    };
    let stall: u8 = s[18..20].parse().map_err(|_| bad())?;
    if stall > 15 {
        return Err(bad());
    }
    Ok(CtrlInfo {
        reuse: 0,
        wait_mask,
        read_bar,
        write_bar,
        yield_flag,
        stall,
    })
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_pred_reg(s: &str, lineno: usize) -> Result<PredReg, AsmError> {
    if s == "PT" {
        return Ok(PredReg::PT);
    }
    if let Some(n) = s.strip_prefix('P') {
        if let Ok(idx) = n.parse::<u8>() {
            if idx < 7 {
                return Ok(PredReg(idx));
            }
        }
    }
    err(lineno, format!("invalid predicate register `{s}`"))
}

fn parse_reg(s: &str, lineno: usize) -> Result<Reg, AsmError> {
    if s == "RZ" {
        return Ok(Reg::RZ);
    }
    if let Some(n) = s.strip_prefix('R') {
        if let Ok(idx) = n.parse::<u8>() {
            if idx < 255 {
                return Ok(Reg(idx));
            }
        }
    }
    err(lineno, format!("invalid register `{s}`"))
}

fn parse_imm(s: &str, lineno: usize) -> Result<u32, AsmError> {
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = s.strip_prefix('-') {
        neg.parse::<i64>().ok().and_then(|v| {
            let v = -v;
            (-(u32::MAX as i64 / 2 + 1)..=u32::MAX as i64)
                .contains(&v)
                .then_some(v as u32)
        })
    } else {
        s.parse::<u32>().ok()
    };
    v.map_or_else(|| err(lineno, format!("invalid immediate `{s}`")), Ok)
}

/// Register or immediate operand.
fn parse_operand(s: &str, lineno: usize) -> Result<Operand, AsmError> {
    match parse_reg_quiet(s) {
        Some(r) => Ok(Operand::Reg(r)),
        None => Ok(Operand::Imm(parse_imm(s, lineno)?)),
    }
}

/// Parses `[Rn+0xOFF]` or `[Rn]` into (base, offset).
fn parse_memref(s: &str, lineno: usize) -> Result<(Reg, u32), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError {
            line: lineno,
            msg: format!("invalid memory operand `{s}`"),
        })?;
    match inner.split_once('+') {
        Some((base, off)) => Ok((
            parse_reg(base.trim(), lineno)?,
            parse_imm(off.trim(), lineno)?,
        )),
        None => Ok((parse_reg(inner.trim(), lineno)?, 0)),
    }
}

fn split_operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn expect_n(ops: &[&str], n: usize, mnemonic: &str, lineno: usize) -> Result<(), AsmError> {
    if ops.len() != n {
        err(
            lineno,
            format!("{mnemonic} expects {n} operands, got {}", ops.len()),
        )
    } else {
        Ok(())
    }
}

#[allow(clippy::too_many_lines)]
fn parse_insn(
    mnemonic: &str,
    rest: &str,
    lineno: usize,
) -> Result<(Instruction, Option<String>), AsmError> {
    let ops = split_operands(rest);

    // ISETP carries its comparison in the mnemonic: `ISETP.LT.AND`.
    if let Some(suffix) = mnemonic.strip_prefix("ISETP.") {
        let cmp_str = suffix.strip_suffix(".AND").unwrap_or(suffix);
        let cmp = CmpOp::from_suffix(cmp_str).ok_or_else(|| AsmError {
            line: lineno,
            msg: format!("unknown comparison `{cmp_str}`"),
        })?;
        // Accept both `ISETP.LT P0, R2, R3` and the full SASS form
        // `ISETP.LT.AND P0, PT, R2, R3, PT`.
        let (p, a, b) = match ops.len() {
            3 => (ops[0], ops[1], ops[2]),
            5 => (ops[0], ops[2], ops[3]),
            n => {
                return err(lineno, format!("ISETP expects 3 or 5 operands, got {n}"));
            }
        };
        let mut i = Instruction::new(Opcode::Isetp);
        i.dst_pred = Some(parse_pred_reg(p, lineno)?);
        i.cmp = cmp;
        i.srcs[0] = parse_operand(a, lineno)?;
        i.srcs[1] = parse_operand(b, lineno)?;
        return Ok((i, None));
    }

    let op = Opcode::from_mnemonic(mnemonic).ok_or_else(|| AsmError {
        line: lineno,
        msg: format!("unknown mnemonic `{mnemonic}`"),
    })?;
    let mut i = Instruction::new(op);
    let mut label_ref = None;

    match op {
        Opcode::Nop | Opcode::BarSync | Opcode::Bsync | Opcode::Ret | Opcode::Exit => {
            expect_n(&ops, 0, mnemonic, lineno)?;
        }
        Opcode::Imad | Opcode::Iadd3 | Opcode::Ffma => {
            expect_n(&ops, 4, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            for k in 0..3 {
                i.srcs[k] = parse_operand(ops[k + 1], lineno)?;
            }
        }
        Opcode::Lea | Opcode::LeaHi => {
            expect_n(&ops, 4, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            i.srcs[0] = parse_operand(ops[1], lineno)?;
            i.srcs[1] = parse_operand(ops[2], lineno)?;
            let shift = parse_imm(ops[3], lineno)?;
            if shift > 31 {
                return err(lineno, format!("shift amount {shift} out of range"));
            }
            i.shift = shift as u8;
        }
        Opcode::ShfL | Opcode::ShfR => {
            expect_n(&ops, 4, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            for k in 0..3 {
                i.srcs[k] = parse_operand(ops[k + 1], lineno)?;
            }
        }
        Opcode::Lop3 => {
            expect_n(&ops, 5, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            for k in 0..3 {
                i.srcs[k] = parse_operand(ops[k + 1], lineno)?;
            }
            let lut = parse_imm(ops[4], lineno)?;
            if lut > 0xFF {
                return err(lineno, format!("LUT {lut:#x} out of range"));
            }
            i.lut = lut as u8;
        }
        Opcode::Mov | Opcode::I2f | Opcode::F2i | Opcode::Lepc => {
            if op == Opcode::Lepc {
                expect_n(&ops, 1, mnemonic, lineno)?;
                i.dst = parse_reg(ops[0], lineno)?;
            } else {
                expect_n(&ops, 2, mnemonic, lineno)?;
                i.dst = parse_reg(ops[0], lineno)?;
                i.srcs[0] = parse_operand(ops[1], lineno)?;
            }
        }
        Opcode::Fadd | Opcode::Fmul => {
            expect_n(&ops, 3, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            i.srcs[0] = parse_operand(ops[1], lineno)?;
            i.srcs[1] = parse_operand(ops[2], lineno)?;
        }
        Opcode::S2r => {
            expect_n(&ops, 2, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            let sr = SpecialReg::from_name(ops[1]).ok_or_else(|| AsmError {
                line: lineno,
                msg: format!("unknown special register `{}`", ops[1]),
            })?;
            i.srcs[1] = Operand::Imm(sr.code() as u32);
        }
        Opcode::Ldg | Opcode::Lds => {
            expect_n(&ops, 2, mnemonic, lineno)?;
            i.dst = parse_reg(ops[0], lineno)?;
            let (base, off) = parse_memref(ops[1], lineno)?;
            i.srcs[0] = Operand::Reg(base);
            i.srcs[1] = Operand::Imm(off);
        }
        Opcode::Stg | Opcode::Sts | Opcode::AtomgAdd | Opcode::AtomsAdd => {
            expect_n(&ops, 2, mnemonic, lineno)?;
            let (base, off) = parse_memref(ops[0], lineno)?;
            i.srcs[0] = Operand::Reg(base);
            i.srcs[1] = Operand::Imm(off);
            i.srcs[2] = parse_operand(ops[1], lineno)?;
        }
        Opcode::Cctl => {
            expect_n(&ops, 1, mnemonic, lineno)?;
            let (base, off) = parse_memref(ops[0], lineno)?;
            i.srcs[0] = Operand::Reg(base);
            i.srcs[1] = Operand::Imm(off);
        }
        Opcode::Jmx => {
            expect_n(&ops, 1, mnemonic, lineno)?;
            i.srcs[0] = Operand::Reg(parse_reg(ops[0], lineno)?);
        }
        Opcode::Bra | Opcode::Bssy | Opcode::Cal => {
            expect_n(&ops, 1, mnemonic, lineno)?;
            if labels_allowed(ops[0]) {
                label_ref = Some(ops[0].to_string());
                i.srcs[1] = Operand::Imm(0); // patched by fixup
            } else {
                i.srcs[1] = Operand::Imm(parse_imm(ops[0], lineno)?);
            }
        }
        Opcode::Isetp => unreachable!("handled above"),
    }

    Ok((i, label_ref))
}

/// Accepts identifiers that start with `R` but are not registers
/// (e.g. `retry_loop`) as labels.
fn labels_allowed(s: &str) -> bool {
    is_ident(s) && parse_reg_quiet(s).is_none()
}

fn parse_reg_quiet(s: &str) -> Option<Reg> {
    if s == "RZ" {
        return Some(Reg::RZ);
    }
    let n = s.strip_prefix('R')?;
    let idx: u8 = n.parse().ok()?;
    (idx < 255).then_some(Reg(idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_basic() {
        let (insns, labels) = assemble(
            "// checksum fragment\n\
             start:\n\
             B------|R-|W0|Y0|S01| LDG.E R8, [R2+0x10] ;\n\
             B0-----|R-|W-|Y0|S02| IMAD R4, R8, 0x11, R4 ;\n\
             BRA start ;\n\
             EXIT ;",
        )
        .unwrap();
        assert_eq!(insns.len(), 4);
        assert_eq!(labels["start"], 0);
        assert_eq!(insns[0].op, Opcode::Ldg);
        assert_eq!(insns[0].ctrl.write_bar, Some(0));
        assert_eq!(insns[1].ctrl.wait_mask, 0b1);
        assert_eq!(insns[1].ctrl.stall, 2);
        assert_eq!(insns[2].srcs[1], Operand::Imm(0)); // label start = insn 0
        assert_eq!(insns[3].op, Opcode::Exit);
    }

    #[test]
    fn label_resolution_to_byte_address() {
        let (insns, _) = assemble("NOP ;\nNOP ;\ntarget:\nNOP ;\nBRA target ;").unwrap();
        assert_eq!(insns[3].srcs[1], Operand::Imm(32)); // insn index 2 * 16
    }

    #[test]
    fn predicated_branch() {
        let (insns, _) = assemble("loop:\n@!P0 BRA loop ;").unwrap();
        assert_eq!(insns[0].pred.reg, PredReg(0));
        assert!(insns[0].pred.neg);
    }

    #[test]
    fn isetp_both_forms() {
        let (a, _) = assemble("ISETP.LT P0, R2, R3 ;").unwrap();
        let (b, _) = assemble("ISETP.LT.AND P0, PT, R2, R3, PT ;").unwrap();
        assert_eq!(a[0].cmp, CmpOp::Lt);
        assert_eq!(a[0].dst_pred, Some(PredReg(0)));
        assert_eq!(a[0].srcs[0], Operand::Reg(Reg(2)));
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_through_display() {
        let src = "B--2---|R-|W1|Y1|S04| LOP3.LUT R4, R1, R2, R3, 0x96 ;";
        let (insns, _) = assemble(src).unwrap();
        let printed = insns[0].to_string();
        let (again, _) = assemble(&printed).unwrap();
        assert_eq!(insns, again);
    }

    #[test]
    fn errors_are_reported_with_line() {
        let e = assemble("NOP ;\nBOGUS R1 ;").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("BOGUS"));

        let e = assemble("BRA nowhere ;").unwrap_err();
        assert!(e.msg.contains("undefined label"));

        let e = assemble("dup:\ndup:\nNOP ;").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn malformed_ctrl_rejected() {
        let e = assemble("B-----x|R-|W-|Y0|S01| NOP ;").unwrap_err();
        assert!(e.msg.contains("control prefix"));
    }

    #[test]
    fn shift_bounds_checked() {
        let e = assemble("LEA R1, R2, R3, 0x20 ;").unwrap_err();
        assert!(e.msg.contains("out of range"));
    }

    #[test]
    fn s2r_special_registers() {
        let (insns, _) = assemble("S2R R0, SR_TID.X ;\nS2R R1, SR_SMID ;").unwrap();
        assert_eq!(
            insns[0].srcs[1],
            Operand::Imm(SpecialReg::TidX.code() as u32)
        );
        assert_eq!(
            insns[1].srcs[1],
            Operand::Imm(SpecialReg::SmId.code() as u32)
        );
    }
}
