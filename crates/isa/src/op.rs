//! Operation codes, execution pipelines and instruction modifiers.

use core::fmt;

/// The functional pipeline an instruction dispatches to.
///
/// Modern NVIDIA SMs dispatch FP32/`IMAD` instructions to the *FMA*
/// pipeline and 32-bit integer/logic/move instructions to the *ALU*
/// pipeline; the two have separate dispatch ports with a two-cycle issue
/// latency each, so peak throughput requires alternating them (paper §2,
/// §6.3). Memory and control instructions use their own units.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pipeline {
    /// Fused multiply-add pipeline (FP32 and integer multiply-add).
    Fma,
    /// Integer/logic/shift/move pipeline.
    Alu,
    /// Load/store unit (variable latency, scoreboarded).
    Mem,
    /// Branch/control unit.
    Control,
}

/// Integer comparison operation for `ISETP`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum CmpOp {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Unsigned less-than.
    Lt = 2,
    /// Unsigned less-or-equal.
    Le = 3,
    /// Unsigned greater-than.
    Gt = 4,
    /// Unsigned greater-or-equal.
    Ge = 5,
}

impl CmpOp {
    /// All comparison operations, in encoding order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Decodes from the 3-bit encoding value.
    pub fn from_code(code: u8) -> Option<CmpOp> {
        CmpOp::ALL.get(code as usize).copied()
    }

    /// Evaluates the comparison on unsigned 32-bit operands.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Returns the SASS-style suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        }
    }

    /// Parses a SASS-style suffix.
    pub fn from_suffix(s: &str) -> Option<CmpOp> {
        CmpOp::ALL.iter().copied().find(|c| c.suffix() == s)
    }
}

/// Operation codes of the simulated SASS-like ISA.
///
/// The set covers everything the SAGE verification function, its epilog,
/// the user kernels (matrix multiply, vector add) and the adversarial code
/// in `sage-attacks` need. Semantics are documented per variant; the
/// authoritative implementation lives in the simulator's execution unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u16)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// Integer multiply-add: `d = a * b + c` (wrapping, FMA pipeline).
    Imad = 1,
    /// Shifted add: `d = (a << shift) + b` (ALU pipeline).
    Lea = 2,
    /// High shifted add: `d = (a >> shift) + b` — the paper's
    /// `x += x >> N` shift-and-add building block (ALU pipeline).
    LeaHi = 3,
    /// Funnel shift left: `d = (a << s) | (c >> (32 - s))`; plain shift
    /// when `c` is `RZ`.
    ShfL = 4,
    /// Funnel shift right: `d = (a >> s) | (c << (32 - s))`; plain shift
    /// when `c` is `RZ`.
    ShfR = 5,
    /// Three-input logic op: per-bit `d = lut[(a << 2) | (b << 1) | c]`.
    Lop3 = 6,
    /// Three-input add: `d = a + b + c` (wrapping).
    Iadd3 = 7,
    /// Register/immediate move: `d = a`.
    Mov = 8,
    /// Integer compare, sets a predicate: `p = cmp(a, b)`.
    Isetp = 9,
    /// Read special register into `d`.
    S2r = 10,
    /// Load current program counter (byte address) into `d`.
    Lepc = 11,
    /// Load 32-bit word from global memory: `d = [a + imm]`.
    Ldg = 12,
    /// Store 32-bit word to global memory: `[a + imm] = c`.
    Stg = 13,
    /// Load 32-bit word from shared memory: `d = [a + imm]`.
    Lds = 14,
    /// Store 32-bit word to shared memory: `[a + imm] = c`.
    Sts = 15,
    /// Atomic add on global memory: `[a + imm] += c`.
    AtomgAdd = 16,
    /// Atomic add on shared memory: `[a + imm] += c`.
    AtomsAdd = 17,
    /// Branch to absolute byte address `imm` (predicated).
    Bra = 18,
    /// Push branch-synchronization (reconvergence) point `imm`.
    Bssy = 19,
    /// Pop branch-synchronization point; reconverges the warp.
    Bsync = 20,
    /// Thread-block-wide barrier.
    BarSync = 21,
    /// Call absolute byte address `imm`, pushing the return address.
    Cal = 22,
    /// Return from call.
    Ret = 23,
    /// Terminate the thread.
    Exit = 24,
    /// FP32 fused multiply-add: `d = a * b + c` (FMA pipeline).
    Ffma = 25,
    /// FP32 add: `d = a + b`.
    Fadd = 26,
    /// FP32 multiply: `d = a * b`.
    Fmul = 27,
    /// Convert signed i32 in `a` to f32.
    I2f = 28,
    /// Convert f32 in `a` to signed i32 (truncating).
    F2i = 29,
    /// Evict the instruction-cache line containing byte address `a + imm`
    /// (the `CCTL`-style maintenance op discussed in paper §6.4).
    Cctl = 30,
    /// Indirect branch to the (warp-uniform) byte address in register `a`
    /// (SASS `BRX`/`JMX`).
    Jmx = 31,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 32] = [
        Opcode::Nop,
        Opcode::Imad,
        Opcode::Lea,
        Opcode::LeaHi,
        Opcode::ShfL,
        Opcode::ShfR,
        Opcode::Lop3,
        Opcode::Iadd3,
        Opcode::Mov,
        Opcode::Isetp,
        Opcode::S2r,
        Opcode::Lepc,
        Opcode::Ldg,
        Opcode::Stg,
        Opcode::Lds,
        Opcode::Sts,
        Opcode::AtomgAdd,
        Opcode::AtomsAdd,
        Opcode::Bra,
        Opcode::Bssy,
        Opcode::Bsync,
        Opcode::BarSync,
        Opcode::Cal,
        Opcode::Ret,
        Opcode::Exit,
        Opcode::Ffma,
        Opcode::Fadd,
        Opcode::Fmul,
        Opcode::I2f,
        Opcode::F2i,
        Opcode::Cctl,
        Opcode::Jmx,
    ];

    /// Decodes an opcode from its encoding value.
    pub fn from_code(code: u16) -> Option<Opcode> {
        Opcode::ALL.get(code as usize).copied()
    }

    /// Returns the encoding value.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Returns the pipeline this opcode dispatches to.
    pub fn pipeline(self) -> Pipeline {
        match self {
            Opcode::Imad | Opcode::Ffma | Opcode::Fadd | Opcode::Fmul => Pipeline::Fma,
            Opcode::Lea
            | Opcode::LeaHi
            | Opcode::ShfL
            | Opcode::ShfR
            | Opcode::Lop3
            | Opcode::Iadd3
            | Opcode::Mov
            | Opcode::Isetp
            | Opcode::S2r
            | Opcode::Lepc
            | Opcode::I2f
            | Opcode::F2i
            | Opcode::Nop => Pipeline::Alu,
            Opcode::Ldg
            | Opcode::Stg
            | Opcode::Lds
            | Opcode::Sts
            | Opcode::AtomgAdd
            | Opcode::AtomsAdd
            | Opcode::Cctl => Pipeline::Mem,
            Opcode::Bra
            | Opcode::Bssy
            | Opcode::Bsync
            | Opcode::BarSync
            | Opcode::Cal
            | Opcode::Ret
            | Opcode::Exit
            | Opcode::Jmx => Pipeline::Control,
        }
    }

    /// Returns `true` for instructions with variable latency that must
    /// signal completion through a scoreboard write barrier.
    pub fn is_variable_latency(self) -> bool {
        matches!(
            self,
            Opcode::Ldg | Opcode::Lds | Opcode::AtomgAdd | Opcode::AtomsAdd
        )
    }

    /// Returns `true` if the instruction writes a general-purpose
    /// destination register.
    pub fn writes_dst(self) -> bool {
        matches!(
            self,
            Opcode::Imad
                | Opcode::Lea
                | Opcode::LeaHi
                | Opcode::ShfL
                | Opcode::ShfR
                | Opcode::Lop3
                | Opcode::Iadd3
                | Opcode::Mov
                | Opcode::S2r
                | Opcode::Lepc
                | Opcode::Ldg
                | Opcode::Lds
                | Opcode::Ffma
                | Opcode::Fadd
                | Opcode::Fmul
                | Opcode::I2f
                | Opcode::F2i
        )
    }

    /// Returns the SASS-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "NOP",
            Opcode::Imad => "IMAD",
            Opcode::Lea => "LEA",
            Opcode::LeaHi => "LEA.HI",
            Opcode::ShfL => "SHF.L",
            Opcode::ShfR => "SHF.R",
            Opcode::Lop3 => "LOP3.LUT",
            Opcode::Iadd3 => "IADD3",
            Opcode::Mov => "MOV",
            Opcode::Isetp => "ISETP",
            Opcode::S2r => "S2R",
            Opcode::Lepc => "LEPC",
            Opcode::Ldg => "LDG.E",
            Opcode::Stg => "STG.E",
            Opcode::Lds => "LDS",
            Opcode::Sts => "STS",
            Opcode::AtomgAdd => "ATOMG.ADD",
            Opcode::AtomsAdd => "ATOMS.ADD",
            Opcode::Bra => "BRA",
            Opcode::Bssy => "BSSY",
            Opcode::Bsync => "BSYNC",
            Opcode::BarSync => "BAR.SYNC",
            Opcode::Cal => "CAL",
            Opcode::Ret => "RET",
            Opcode::Exit => "EXIT",
            Opcode::Ffma => "FFMA",
            Opcode::Fadd => "FADD",
            Opcode::Fmul => "FMUL",
            Opcode::I2f => "I2F.F32.S32",
            Opcode::F2i => "F2I.S32.F32",
            Opcode::Cctl => "CCTL.IVALL",
            Opcode::Jmx => "JMX",
        }
    }

    /// Parses a SASS-style mnemonic (exact match).
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|o| o.mnemonic() == s)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Common `LOP3` look-up tables, using the SASS convention
/// `A = 0xF0`, `B = 0xCC`, `C = 0xAA`.
pub mod lut {
    /// `a & b`
    pub const AND_AB: u8 = 0xF0 & 0xCC;
    /// `a | b`
    pub const OR_AB: u8 = 0xF0 | 0xCC;
    /// `a ^ b`
    pub const XOR_AB: u8 = 0xF0 ^ 0xCC;
    /// `a ^ b ^ c`
    pub const XOR_ABC: u8 = 0xF0 ^ 0xCC ^ 0xAA;
    /// `(a & b) | c`
    pub const AND_AB_OR_C: u8 = (0xF0 & 0xCC) | 0xAA;
    /// `a & b & c`
    pub const AND_ABC: u8 = 0xF0 & 0xCC & 0xAA;
    /// `!a` (complement of A)
    pub const NOT_A: u8 = !0xF0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_code(999), None);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Lt.eval(4, 3));
        for c in CmpOp::ALL {
            assert_eq!(CmpOp::from_code(c as u8), Some(c));
            assert_eq!(CmpOp::from_suffix(c.suffix()), Some(c));
        }
    }

    #[test]
    fn pipelines_match_paper_model() {
        // IMAD goes to the FMA pipeline, LEA.HI to the ALU pipeline — the
        // pair used for the dual-issue busy-wait pattern (paper §6.5).
        assert_eq!(Opcode::Imad.pipeline(), Pipeline::Fma);
        assert_eq!(Opcode::LeaHi.pipeline(), Pipeline::Alu);
        assert_eq!(Opcode::Ldg.pipeline(), Pipeline::Mem);
        assert_eq!(Opcode::Bra.pipeline(), Pipeline::Control);
    }

    #[test]
    fn variable_latency_ops() {
        assert!(Opcode::Ldg.is_variable_latency());
        assert!(Opcode::AtomsAdd.is_variable_latency());
        assert!(!Opcode::Imad.is_variable_latency());
        // Plain stores complete asynchronously without a readable result.
        assert!(!Opcode::Stg.is_variable_latency());
    }

    #[test]
    fn lut_constants() {
        // Verify the LUT convention by brute force over all bit patterns.
        for a in [0u8, 1] {
            for b in [0u8, 1] {
                for c in [0u8, 1] {
                    let idx = (a << 2) | (b << 1) | c;
                    assert_eq!((lut::XOR_AB >> idx) & 1, a ^ b);
                    assert_eq!((lut::AND_AB >> idx) & 1, a & b);
                    assert_eq!((lut::OR_AB >> idx) & 1, a | b);
                    assert_eq!((lut::XOR_ABC >> idx) & 1, a ^ b ^ c);
                }
            }
        }
    }
}
