//! Typed instruction representation and its disassembly syntax.

use core::fmt;

use crate::{
    ctrl::CtrlInfo,
    op::{CmpOp, Opcode},
    reg::{PredReg, Reg, SpecialReg},
};

/// A source operand: either a register or a 32-bit immediate.
///
/// At most one operand of an instruction may be an immediate (there is a
/// single 32-bit immediate field in the encoding, mirroring SASS).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// General-purpose register operand.
    Reg(Reg),
    /// 32-bit immediate operand.
    Imm(u32),
}

impl Operand {
    /// The zero register as an operand.
    pub const RZ: Operand = Operand::Reg(Reg::RZ);

    /// Returns the immediate value, if this operand is an immediate.
    pub fn imm(self) -> Option<u32> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }

    /// Returns the register, if this operand is a register.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
        }
    }
}

/// A predicate guard (`@P0`, `@!P3`, or the always-true default).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pred {
    /// Guarding predicate register.
    pub reg: PredReg,
    /// Whether the predicate value is negated.
    pub neg: bool,
}

impl Pred {
    /// The always-true guard (`@PT`).
    pub const TRUE: Pred = Pred {
        reg: PredReg::PT,
        neg: false,
    };

    /// Guard on `@Pn`.
    pub fn on(reg: PredReg) -> Pred {
        Pred { reg, neg: false }
    }

    /// Guard on `@!Pn`.
    pub fn on_not(reg: PredReg) -> Pred {
        Pred { reg, neg: true }
    }

    /// Returns `true` if this is the unconditional guard.
    pub fn is_unconditional(self) -> bool {
        self.reg.is_true() && !self.neg
    }
}

impl Default for Pred {
    fn default() -> Pred {
        Pred::TRUE
    }
}

/// One decoded instruction: operation, operands, modifiers and scheduling
/// control information.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instruction {
    /// Predicate guard.
    pub pred: Pred,
    /// Operation code.
    pub op: Opcode,
    /// Destination register (ignored for ops without a GPR destination).
    pub dst: Reg,
    /// Destination predicate (`ISETP` only).
    pub dst_pred: Option<PredReg>,
    /// Source operands A, B, C.
    pub srcs: [Operand; 3],
    /// Shift amount modifier (`LEA`/`LEA.HI`, 5 bits).
    pub shift: u8,
    /// Logic look-up table (`LOP3`).
    pub lut: u8,
    /// Comparison operation (`ISETP`).
    pub cmp: CmpOp,
    /// Scheduling control information.
    pub ctrl: CtrlInfo,
}

impl Instruction {
    /// Creates a new instruction with default guard, modifiers and control
    /// information. Use the field setters or [`crate::builder`] for the rest.
    pub fn new(op: Opcode) -> Instruction {
        Instruction {
            pred: Pred::TRUE,
            op,
            dst: Reg::RZ,
            dst_pred: None,
            srcs: [Operand::RZ; 3],
            shift: 0,
            lut: 0,
            cmp: CmpOp::Eq,
            ctrl: CtrlInfo::default(),
        }
    }

    /// Returns the number of immediate operands.
    pub fn imm_count(&self) -> usize {
        self.srcs.iter().filter(|s| s.imm().is_some()).count()
    }

    /// Returns the single immediate value, if any.
    pub fn immediate(&self) -> Option<u32> {
        self.srcs.iter().find_map(|s| s.imm())
    }

    /// Replaces the single immediate value, returning the previous one.
    ///
    /// This is the hook used by self-modifying code: the checksum kernel
    /// patches the immediate field of an in-memory instruction word
    /// (paper §6.5, step 5).
    pub fn patch_immediate(&mut self, value: u32) -> Option<u32> {
        for s in &mut self.srcs {
            if let Operand::Imm(old) = *s {
                *s = Operand::Imm(value);
                return Some(old);
            }
        }
        None
    }

    /// Formats only the operation and operands (no control prefix).
    pub fn body(&self) -> InsnBody<'_> {
        InsnBody(self)
    }
}

/// Helper that displays the instruction body without the control prefix.
pub struct InsnBody<'a>(&'a Instruction);

impl fmt::Display for InsnBody<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let i = self.0;
        if !i.pred.is_unconditional() {
            if i.pred.neg {
                write!(f, "@!{} ", i.pred.reg)?;
            } else {
                write!(f, "@{} ", i.pred.reg)?;
            }
        }
        let [a, b, c] = i.srcs;
        match i.op {
            Opcode::Nop | Opcode::BarSync | Opcode::Bsync | Opcode::Ret | Opcode::Exit => {
                write!(f, "{}", i.op)?
            }
            Opcode::Imad | Opcode::Iadd3 | Opcode::Ffma => {
                write!(f, "{} {}, {a}, {b}, {c}", i.op, i.dst)?
            }
            Opcode::Lea | Opcode::LeaHi => {
                write!(f, "{} {}, {a}, {b}, 0x{:x}", i.op, i.dst, i.shift)?
            }
            Opcode::ShfL | Opcode::ShfR => write!(f, "{} {}, {a}, {b}, {c}", i.op, i.dst)?,
            Opcode::Lop3 => write!(f, "{} {}, {a}, {b}, {c}, 0x{:02x}", i.op, i.dst, i.lut)?,
            Opcode::Mov => write!(f, "{} {}, {a}", i.op, i.dst)?,
            Opcode::Fadd | Opcode::Fmul => write!(f, "{} {}, {a}, {b}", i.op, i.dst)?,
            Opcode::Isetp => {
                let p = i.dst_pred.unwrap_or(PredReg::PT);
                write!(f, "ISETP.{}.AND {p}, PT, {a}, {b}, PT", i.cmp.suffix())?
            }
            Opcode::S2r => {
                let code = b.imm().unwrap_or(0) as u8;
                let name = SpecialReg::from_code(code)
                    .map(SpecialReg::name)
                    .unwrap_or("SR_INVALID");
                write!(f, "{} {}, {name}", i.op, i.dst)?
            }
            Opcode::Lepc => write!(f, "{} {}", i.op, i.dst)?,
            Opcode::Ldg | Opcode::Lds => {
                write!(f, "{} {}, [{a}+0x{:x}]", i.op, i.dst, b.imm().unwrap_or(0))?
            }
            Opcode::Stg | Opcode::Sts | Opcode::AtomgAdd | Opcode::AtomsAdd => {
                write!(f, "{} [{a}+0x{:x}], {c}", i.op, b.imm().unwrap_or(0))?
            }
            Opcode::Cctl => write!(f, "{} [{a}+0x{:x}]", i.op, b.imm().unwrap_or(0))?,
            Opcode::Bra | Opcode::Bssy | Opcode::Cal => {
                write!(f, "{} 0x{:x}", i.op, b.imm().unwrap_or(0))?
            }
            Opcode::I2f | Opcode::F2i => write!(f, "{} {}, {a}", i.op, i.dst)?,
            Opcode::Jmx => write!(f, "{} {a}", i.op)?,
        }
        write!(f, " ;")
    }
}

impl fmt::Display for Instruction {
    /// Formats as `<ctrl-prefix> <body>` in the paper's syntax, e.g.
    /// `B------|R-|W-|Y1|S01| IMAD.U32 R28, R28, 0x800, R28 ;`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.ctrl, self.body())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(4)).reg(), Some(Reg(4)));
        assert_eq!(Operand::from(17u32).imm(), Some(17));
        assert_eq!(Operand::RZ.reg(), Some(Reg::RZ));
    }

    #[test]
    fn patch_immediate_replaces_single_imm() {
        let mut i = Instruction::new(Opcode::LeaHi);
        i.srcs = [Operand::Reg(Reg(3)), Operand::Imm(9), Operand::RZ];
        assert_eq!(i.patch_immediate(21), Some(9));
        assert_eq!(i.immediate(), Some(21));
        let mut j = Instruction::new(Opcode::Iadd3);
        assert_eq!(j.patch_immediate(1), None);
    }

    #[test]
    fn display_formats() {
        let mut i = Instruction::new(Opcode::Imad);
        i.dst = Reg(4);
        i.srcs = [Reg(4).into(), Operand::Imm(0x11), Reg(5).into()];
        assert_eq!(i.body().to_string(), "IMAD R4, R4, 0x11, R5 ;");

        let mut l = Instruction::new(Opcode::Ldg);
        l.dst = Reg(8);
        l.srcs = [Reg(2).into(), Operand::Imm(0x10), Operand::RZ];
        assert_eq!(l.body().to_string(), "LDG.E R8, [R2+0x10] ;");

        let mut s = Instruction::new(Opcode::Stg);
        s.srcs = [Reg(2).into(), Operand::Imm(0), Reg(9).into()];
        assert_eq!(s.body().to_string(), "STG.E [R2+0x0], R9 ;");

        let mut b = Instruction::new(Opcode::Bra);
        b.pred = Pred::on_not(PredReg(0));
        b.srcs[1] = Operand::Imm(0x120);
        assert_eq!(b.body().to_string(), "@!P0 BRA 0x120 ;");
    }

    #[test]
    fn display_with_ctrl_prefix() {
        let mut i = Instruction::new(Opcode::Ldg);
        i.dst = Reg(8);
        i.srcs = [Reg(2).into(), Operand::Imm(0), Operand::RZ];
        i.ctrl = CtrlInfo::stall(1).with_write_bar(0);
        assert_eq!(i.to_string(), "B------|R-|W0|Y0|S01| LDG.E R8, [R2+0x0] ;");
    }
}
