//! Emitters: translate a [`Program`] to each of the instruction
//! generation framework's target languages (paper §6.2) — native
//! microcode bytes, PTX-like virtual assembly, or CUDA-C-like source.
//!
//! Only microcode executes on the simulator; the PTX and CUDA renderings
//! exist for inspection and for the naive-codegen performance comparison
//! (paper §7.1: optimized microcode is ~2.3× faster than compiler-emitted
//! code, a gap reproduced by `sage-vf`'s naive schedule).

use std::fmt::Write as _;

use crate::{insn::Operand, op::Opcode, program::Program, reg::SpecialReg};

/// Target language of the emitter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// Binary microcode executed natively by the simulator.
    Microcode,
    /// PTX-like virtual assembly text.
    Ptx,
    /// CUDA-C-like source text.
    Cuda,
}

/// Emits the program in the requested target language.
///
/// [`Target::Microcode`] yields the encoded bytes; the text targets yield
/// UTF-8 source.
pub fn emit(prog: &Program, target: Target) -> Vec<u8> {
    match target {
        Target::Microcode => prog.encode(),
        Target::Ptx => to_ptx(prog).into_bytes(),
        Target::Cuda => to_cuda(prog).into_bytes(),
    }
}

fn operand_ptx(op: Operand) -> String {
    match op {
        Operand::Reg(r) if r.is_zero() => "0".to_string(),
        Operand::Reg(r) => format!("%r{}", r.0),
        Operand::Imm(v) => format!("{v}"),
    }
}

/// Renders the program as PTX-like virtual assembly.
pub fn to_ptx(prog: &Program) -> String {
    let mut out = String::from(".visible .entry kernel()\n{\n");
    let mut label_at = vec![Vec::new(); prog.insns.len() + 1];
    for (name, &idx) in &prog.labels {
        label_at[idx].push(name.clone());
    }
    for (idx, i) in prog.insns.iter().enumerate() {
        for l in &label_at[idx] {
            let _ = writeln!(out, "{l}:");
        }
        let guard = if i.pred.is_unconditional() {
            String::new()
        } else if i.pred.neg {
            format!("@!%p{} ", i.pred.reg.0)
        } else {
            format!("@%p{} ", i.pred.reg.0)
        };
        let d = format!("%r{}", i.dst.0);
        let [a, b, c] = i.srcs;
        let (a, b, c) = (operand_ptx(a), operand_ptx(b), operand_ptx(c));
        let line = match i.op {
            Opcode::Nop => "// nop".to_string(),
            Opcode::Imad => format!("mad.lo.u32 {d}, {a}, {b}, {c};"),
            Opcode::Lea => format!("vshl.u32.u32.u32 {d}, {a}, {}, {b}; // lea", i.shift),
            Opcode::LeaHi => format!("vshr.u32.u32.u32 {d}, {a}, {}, {b}; // lea.hi", i.shift),
            Opcode::ShfL => format!("shf.l.wrap.b32 {d}, {a}, {c}, {b};"),
            Opcode::ShfR => format!("shf.r.wrap.b32 {d}, {a}, {c}, {b};"),
            Opcode::Lop3 => format!("lop3.b32 {d}, {a}, {b}, {c}, {:#04x};", i.lut),
            Opcode::Iadd3 => format!("add.u32 {d}, {a}, {b}; add.u32 {d}, {d}, {c};"),
            Opcode::Mov => format!("mov.u32 {d}, {a};"),
            Opcode::Isetp => {
                let p = i.dst_pred.map(|p| p.0).unwrap_or(7);
                format!(
                    "setp.{}.u32 %p{p}, {a}, {b};",
                    i.cmp.suffix().to_lowercase()
                )
            }
            Opcode::S2r => {
                let code = i.srcs[1].imm().unwrap_or(0) as u8;
                let sr = SpecialReg::from_code(code)
                    .map(|s| match s {
                        SpecialReg::TidX => "%tid.x",
                        SpecialReg::CtaIdX => "%ctaid.x",
                        SpecialReg::NCtaIdX => "%nctaid.x",
                        SpecialReg::LaneId => "%laneid",
                        SpecialReg::WarpId => "%warpid",
                        SpecialReg::SmId => "%smid",
                        SpecialReg::ClockLo => "%clock",
                        SpecialReg::NTidX => "%ntid.x",
                    })
                    .unwrap_or("%invalid");
                format!("mov.u32 {d}, {sr};")
            }
            Opcode::Lepc => format!("// no PTX equivalent: LEPC {d}"),
            Opcode::Ldg => format!("ld.global.u32 {d}, [{a}+{b}];"),
            Opcode::Stg => format!("st.global.u32 [{a}+{b}], {c};"),
            Opcode::Lds => format!("ld.shared.u32 {d}, [{a}+{b}];"),
            Opcode::Sts => format!("st.shared.u32 [{a}+{b}], {c};"),
            Opcode::AtomgAdd => format!("red.global.add.u32 [{a}+{b}], {c};"),
            Opcode::AtomsAdd => format!("red.shared.add.u32 [{a}+{b}], {c};"),
            Opcode::Bra => format!("bra L_{};", i.srcs[1].imm().unwrap_or(0)),
            Opcode::Bssy => format!("// bssy L_{};", i.srcs[1].imm().unwrap_or(0)),
            Opcode::Bsync => "// bsync".to_string(),
            Opcode::BarSync => "bar.sync 0;".to_string(),
            Opcode::Cal => format!("call F_{};", i.srcs[1].imm().unwrap_or(0)),
            Opcode::Ret => "ret;".to_string(),
            Opcode::Exit => "exit;".to_string(),
            Opcode::Ffma => format!("fma.rn.f32 {d}, {a}, {b}, {c};"),
            Opcode::Fadd => format!("add.f32 {d}, {a}, {b};"),
            Opcode::Fmul => format!("mul.f32 {d}, {a}, {b};"),
            Opcode::I2f => format!("cvt.rn.f32.s32 {d}, {a};"),
            Opcode::F2i => format!("cvt.rzi.s32.f32 {d}, {a};"),
            Opcode::Cctl => format!("discard.global.L2 [{a}+{b}], 128;"),
            Opcode::Jmx => format!("brx.idx {a}; // indirect"),
        };
        let _ = writeln!(out, "    {guard}{line}");
    }
    out.push_str("}\n");
    out
}

fn operand_cuda(op: Operand) -> String {
    match op {
        Operand::Reg(r) if r.is_zero() => "0u".to_string(),
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => format!("{v}u"),
    }
}

/// Renders the program as CUDA-C-like source.
///
/// Control flow is rendered as `goto`s over instruction labels, which is
/// how the framework's C++ backend kept the instruction-level structure.
pub fn to_cuda(prog: &Program) -> String {
    let mut out = String::from("__global__ void kernel(unsigned* gmem, unsigned* smem)\n{\n");
    out.push_str("    unsigned r0 = 0; /* ... register file ... */\n");
    for (idx, i) in prog.insns.iter().enumerate() {
        let d = format!("r{}", i.dst.0);
        let [a, b, c] = i.srcs;
        let (a, b, c) = (operand_cuda(a), operand_cuda(b), operand_cuda(c));
        let guard = if i.pred.is_unconditional() {
            String::new()
        } else if i.pred.neg {
            format!("if (!p{}) ", i.pred.reg.0)
        } else {
            format!("if (p{}) ", i.pred.reg.0)
        };
        let stmt = match i.op {
            Opcode::Nop => ";".to_string(),
            Opcode::Imad => format!("{d} = {a} * {b} + {c};"),
            Opcode::Lea => format!("{d} = ({a} << {}) + {b};", i.shift),
            Opcode::LeaHi => format!("{d} = ({a} >> {}) + {b};", i.shift),
            Opcode::ShfL => format!("{d} = __funnelshift_l({c}, {a}, {b});"),
            Opcode::ShfR => format!("{d} = __funnelshift_r({a}, {c}, {b});"),
            Opcode::Lop3 => format!("{d} = __lop3_0x{:02x}({a}, {b}, {c});", i.lut),
            Opcode::Iadd3 => format!("{d} = {a} + {b} + {c};"),
            Opcode::Mov => format!("{d} = {a};"),
            Opcode::Isetp => {
                let p = i.dst_pred.map(|p| p.0).unwrap_or(7);
                let op = match i.cmp {
                    crate::op::CmpOp::Eq => "==",
                    crate::op::CmpOp::Ne => "!=",
                    crate::op::CmpOp::Lt => "<",
                    crate::op::CmpOp::Le => "<=",
                    crate::op::CmpOp::Gt => ">",
                    crate::op::CmpOp::Ge => ">=",
                };
                format!("bool p{p} = {a} {op} {b};")
            }
            Opcode::S2r => {
                let code = i.srcs[1].imm().unwrap_or(0) as u8;
                let sr = SpecialReg::from_code(code)
                    .map(|s| match s {
                        SpecialReg::TidX => "threadIdx.x",
                        SpecialReg::CtaIdX => "blockIdx.x",
                        SpecialReg::NCtaIdX => "gridDim.x",
                        SpecialReg::LaneId => "(threadIdx.x & 31)",
                        SpecialReg::WarpId => "(threadIdx.x >> 5)",
                        SpecialReg::SmId => "__smid()",
                        SpecialReg::ClockLo => "clock()",
                        SpecialReg::NTidX => "blockDim.x",
                    })
                    .unwrap_or("0");
                format!("{d} = {sr};")
            }
            Opcode::Lepc => format!("{d} = /* LEPC: no C++ equivalent */ 0;"),
            Opcode::Ldg => format!("{d} = gmem[({a} + {b}) / 4];"),
            Opcode::Stg => format!("gmem[({a} + {b}) / 4] = {c};"),
            Opcode::Lds => format!("{d} = smem[({a} + {b}) / 4];"),
            Opcode::Sts => format!("smem[({a} + {b}) / 4] = {c};"),
            Opcode::AtomgAdd => format!("atomicAdd(&gmem[({a} + {b}) / 4], {c});"),
            Opcode::AtomsAdd => format!("atomicAdd(&smem[({a} + {b}) / 4], {c});"),
            Opcode::Bra => format!("goto I{};", i.srcs[1].imm().unwrap_or(0) as usize / 16),
            Opcode::Bssy | Opcode::Bsync => "/* reconvergence */;".to_string(),
            Opcode::BarSync => "__syncthreads();".to_string(),
            Opcode::Cal => format!("f{}();", i.srcs[1].imm().unwrap_or(0) as usize / 16),
            Opcode::Ret => "return;".to_string(),
            Opcode::Exit => "return;".to_string(),
            Opcode::Ffma => format!("{d} = __fmaf_rn(__uint_as_float({a}), __uint_as_float({b}), __uint_as_float({c}));"),
            Opcode::Fadd => format!("{d} = __float_as_uint(__uint_as_float({a}) + __uint_as_float({b}));"),
            Opcode::Fmul => format!("{d} = __float_as_uint(__uint_as_float({a}) * __uint_as_float({b}));"),
            Opcode::I2f => format!("{d} = __float_as_uint((float)(int){a});"),
            Opcode::F2i => format!("{d} = (unsigned)(int)__uint_as_float({a});"),
            Opcode::Cctl => "/* CCTL: icache maintenance */;".to_string(),
            Opcode::Jmx => format!("goto *(void*)(unsigned long){a};"),
        };
        let _ = writeln!(out, "I{idx}: {guard}{stmt}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::assemble(
            "entry:\n\
             S2R R0, SR_TID.X ;\n\
             LDG.E R8, [R2+0x10] ;\n\
             IMAD R4, R8, 0x11, R4 ;\n\
             LOP3.LUT R4, R4, R0, RZ, 0x3c ;\n\
             @!P0 BRA entry ;\n\
             BAR.SYNC ;\n\
             EXIT ;",
        )
        .unwrap()
    }

    #[test]
    fn microcode_target_equals_encode() {
        let p = sample();
        assert_eq!(emit(&p, Target::Microcode), p.encode());
    }

    #[test]
    fn ptx_contains_expected_ops() {
        let p = sample();
        let ptx = to_ptx(&p);
        assert!(ptx.contains("mad.lo.u32"));
        assert!(ptx.contains("ld.global.u32"));
        assert!(ptx.contains("lop3.b32"));
        assert!(ptx.contains("%tid.x"));
        assert!(ptx.contains("bar.sync"));
    }

    #[test]
    fn cuda_contains_expected_ops() {
        let p = sample();
        let cuda = to_cuda(&p);
        assert!(cuda.contains("threadIdx.x"));
        assert!(cuda.contains("__syncthreads"));
        assert!(cuda.contains("goto I0;"));
        assert!(cuda.contains("gmem["));
    }

    #[test]
    fn all_opcodes_render_in_all_targets() {
        use crate::builder::ProgramBuilder;
        use crate::reg::Reg;
        let mut b = ProgramBuilder::new();
        b.label("top");
        b.nop();
        b.imad(Reg(1), Reg(2), Reg(3).into(), Reg(4));
        b.lea(Reg(1), Reg(2), Reg(3).into(), 4);
        b.lea_hi(Reg(1), Reg(2), Reg(3).into(), 4);
        b.shf_l(Reg(1), Reg(2), 3u32.into(), Reg(4));
        b.shf_r(Reg(1), Reg(2), 3u32.into(), Reg(4));
        b.lop3(Reg(1), Reg(2), Reg(3).into(), Reg(4), 0x96);
        b.iadd3(Reg(1), Reg(2), Reg(3).into(), Reg(4));
        b.mov(Reg(1), 7u32.into());
        b.isetp(
            crate::reg::PredReg(0),
            crate::op::CmpOp::Ne,
            Reg(1),
            0u32.into(),
        );
        b.s2r(Reg(1), SpecialReg::SmId);
        b.lepc(Reg(1));
        b.ldg(Reg(1), Reg(2), 0);
        b.stg(Reg(2), 0, Reg(1));
        b.lds(Reg(1), Reg(2), 0);
        b.sts(Reg(2), 0, Reg(1));
        b.atomg_add(Reg(2), 0, Reg(1));
        b.atoms_add(Reg(2), 0, Reg(1));
        b.bra("top");
        b.bssy("top");
        b.bsync();
        b.bar_sync();
        b.cal("top");
        b.ret();
        b.ffma(Reg(1), Reg(2), Reg(3).into(), Reg(4));
        b.fadd(Reg(1), Reg(2), Reg(3).into());
        b.fmul(Reg(1), Reg(2), Reg(3).into());
        b.i2f(Reg(1), Reg(2));
        b.f2i(Reg(1), Reg(2));
        b.cctl(Reg(2), 0);
        b.jmx(Reg(1));
        b.exit();
        let p = b.build().unwrap();
        // Every opcode is covered.
        assert_eq!(p.histogram().len(), crate::op::Opcode::ALL.len());
        let ptx = to_ptx(&p);
        let cuda = to_cuda(&p);
        assert!(!ptx.is_empty() && !cuda.is_empty());
        // Microcode round-trips.
        assert_eq!(Program::decode(&p.encode()).unwrap().insns, p.insns);
    }
}
