//! Fluent builder for constructing programs in code.
//!
//! The verification-function generator (`sage-vf`) and the user-kernel
//! library build their microcode through this interface rather than via
//! text assembly — the equivalent of the paper's "rapid prototyping"
//! path through the instruction generation framework (§6.2).

use std::collections::HashMap;

use crate::{
    ctrl::CtrlInfo,
    insn::{Instruction, Operand, Pred},
    op::{CmpOp, Opcode},
    program::Program,
    reg::{PredReg, Reg, SpecialReg},
    INSN_BYTES,
};

/// Incrementally builds a [`Program`].
///
/// Labels may be referenced before they are defined; unresolved references
/// are fixed up in [`ProgramBuilder::build`].
///
/// # Examples
///
/// ```
/// use sage_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.label("loop");
/// b.imad(Reg(4), Reg(4), 3u32.into(), Reg(5));
/// b.bra("loop");
/// b.exit();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 3);
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    insns: Vec<Instruction>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    /// Control info applied to the next pushed instruction, if set.
    pending_ctrl: Option<CtrlInfo>,
    /// Predicate guard applied to the next pushed instruction, if set.
    pending_pred: Option<Pred>,
}

/// An unresolved-label error from [`ProgramBuilder::build`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnresolvedLabel(pub String);

impl std::fmt::Display for UnresolvedLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unresolved label `{}`", self.0)
    }
}

impl std::error::Error for UnresolvedLabel {}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Byte address of the next instruction to be emitted.
    pub fn here(&self) -> u32 {
        (self.insns.len() * INSN_BYTES) as u32
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label definitions.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.insns.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Sets the control info for the next instruction only.
    pub fn ctrl(&mut self, ctrl: CtrlInfo) -> &mut Self {
        self.pending_ctrl = Some(ctrl);
        self
    }

    /// Sets the predicate guard for the next instruction only.
    pub fn pred(&mut self, pred: Pred) -> &mut Self {
        self.pending_pred = Some(pred);
        self
    }

    /// Pushes a raw instruction (applying any pending ctrl/pred).
    pub fn push(&mut self, mut insn: Instruction) -> &mut Self {
        if let Some(c) = self.pending_ctrl.take() {
            insn.ctrl = c;
        }
        if let Some(p) = self.pending_pred.take() {
            insn.pred = p;
        }
        self.insns.push(insn);
        self
    }

    fn emit(&mut self, op: Opcode, dst: Reg, srcs: [Operand; 3]) -> &mut Self {
        let mut i = Instruction::new(op);
        i.dst = dst;
        i.srcs = srcs;
        self.push(i)
    }

    /// `d = a * b + c` (wrapping u32, FMA pipeline).
    pub fn imad(&mut self, d: Reg, a: Reg, b: Operand, c: Reg) -> &mut Self {
        self.emit(Opcode::Imad, d, [a.into(), b, c.into()])
    }

    /// `d = (a << shift) + b` (ALU pipeline).
    pub fn lea(&mut self, d: Reg, a: Reg, b: Operand, shift: u8) -> &mut Self {
        self.emit(Opcode::Lea, d, [a.into(), b, Operand::RZ]);
        self.insns.last_mut().expect("just pushed").shift = shift;
        self
    }

    /// `d = (a >> shift) + b` (ALU pipeline) — shift-and-add.
    pub fn lea_hi(&mut self, d: Reg, a: Reg, b: Operand, shift: u8) -> &mut Self {
        self.emit(Opcode::LeaHi, d, [a.into(), b, Operand::RZ]);
        self.insns.last_mut().expect("just pushed").shift = shift;
        self
    }

    /// Funnel shift left.
    pub fn shf_l(&mut self, d: Reg, a: Reg, s: Operand, c: Reg) -> &mut Self {
        self.emit(Opcode::ShfL, d, [a.into(), s, c.into()])
    }

    /// Funnel shift right.
    pub fn shf_r(&mut self, d: Reg, a: Reg, s: Operand, c: Reg) -> &mut Self {
        self.emit(Opcode::ShfR, d, [a.into(), s, c.into()])
    }

    /// Three-input logic op with the given look-up table.
    pub fn lop3(&mut self, d: Reg, a: Reg, b: Operand, c: Reg, lut: u8) -> &mut Self {
        self.emit(Opcode::Lop3, d, [a.into(), b, c.into()]);
        self.insns.last_mut().expect("just pushed").lut = lut;
        self
    }

    /// `d = a ^ b` via `LOP3`.
    pub fn xor(&mut self, d: Reg, a: Reg, b: Operand) -> &mut Self {
        self.lop3(d, a, b, Reg::RZ, crate::op::lut::XOR_AB)
    }

    /// `d = a & b` via `LOP3`.
    pub fn and(&mut self, d: Reg, a: Reg, b: Operand) -> &mut Self {
        self.lop3(d, a, b, Reg::RZ, crate::op::lut::AND_AB)
    }

    /// `d = a + b + c`.
    pub fn iadd3(&mut self, d: Reg, a: Reg, b: Operand, c: Reg) -> &mut Self {
        self.emit(Opcode::Iadd3, d, [a.into(), b, c.into()])
    }

    /// `d = a + b`.
    pub fn iadd(&mut self, d: Reg, a: Reg, b: Operand) -> &mut Self {
        self.iadd3(d, a, b, Reg::RZ)
    }

    /// `d = src`.
    pub fn mov(&mut self, d: Reg, src: Operand) -> &mut Self {
        self.emit(Opcode::Mov, d, [src, Operand::RZ, Operand::RZ])
    }

    /// Sets predicate `p = cmp(a, b)`.
    pub fn isetp(&mut self, p: PredReg, cmp: CmpOp, a: Reg, b: Operand) -> &mut Self {
        let mut i = Instruction::new(Opcode::Isetp);
        i.dst_pred = Some(p);
        i.cmp = cmp;
        i.srcs[0] = a.into();
        i.srcs[1] = b;
        self.push(i)
    }

    /// Reads a special register.
    pub fn s2r(&mut self, d: Reg, sr: SpecialReg) -> &mut Self {
        self.emit(
            Opcode::S2r,
            d,
            [Operand::RZ, Operand::Imm(sr.code() as u32), Operand::RZ],
        )
    }

    /// Loads the current program counter.
    pub fn lepc(&mut self, d: Reg) -> &mut Self {
        self.emit(Opcode::Lepc, d, [Operand::RZ; 3])
    }

    /// Global load: `d = [base + off]`.
    pub fn ldg(&mut self, d: Reg, base: Reg, off: u32) -> &mut Self {
        self.emit(
            Opcode::Ldg,
            d,
            [base.into(), Operand::Imm(off), Operand::RZ],
        )
    }

    /// Global store: `[base + off] = v`.
    pub fn stg(&mut self, base: Reg, off: u32, v: Reg) -> &mut Self {
        self.emit(
            Opcode::Stg,
            Reg::RZ,
            [base.into(), Operand::Imm(off), v.into()],
        )
    }

    /// Shared load: `d = [base + off]`.
    pub fn lds(&mut self, d: Reg, base: Reg, off: u32) -> &mut Self {
        self.emit(
            Opcode::Lds,
            d,
            [base.into(), Operand::Imm(off), Operand::RZ],
        )
    }

    /// Shared store: `[base + off] = v`.
    pub fn sts(&mut self, base: Reg, off: u32, v: Reg) -> &mut Self {
        self.emit(
            Opcode::Sts,
            Reg::RZ,
            [base.into(), Operand::Imm(off), v.into()],
        )
    }

    /// Global atomic add: `[base + off] += v`.
    pub fn atomg_add(&mut self, base: Reg, off: u32, v: Reg) -> &mut Self {
        self.emit(
            Opcode::AtomgAdd,
            Reg::RZ,
            [base.into(), Operand::Imm(off), v.into()],
        )
    }

    /// Shared atomic add: `[base + off] += v`.
    pub fn atoms_add(&mut self, base: Reg, off: u32, v: Reg) -> &mut Self {
        self.emit(
            Opcode::AtomsAdd,
            Reg::RZ,
            [base.into(), Operand::Imm(off), v.into()],
        )
    }

    /// Indirect branch to the warp-uniform address in `target`.
    pub fn jmx(&mut self, target: Reg) -> &mut Self {
        self.emit(
            Opcode::Jmx,
            Reg::RZ,
            [target.into(), Operand::RZ, Operand::RZ],
        )
    }

    /// Instruction-cache maintenance on the line containing `base + off`.
    pub fn cctl(&mut self, base: Reg, off: u32) -> &mut Self {
        self.emit(
            Opcode::Cctl,
            Reg::RZ,
            [base.into(), Operand::Imm(off), Operand::RZ],
        )
    }

    fn control_to(&mut self, op: Opcode, target: &str) -> &mut Self {
        let mut i = Instruction::new(op);
        i.srcs[1] = Operand::Imm(0);
        self.fixups.push((self.insns.len(), target.to_string()));
        self.push(i)
    }

    /// Branch to a label.
    pub fn bra(&mut self, target: &str) -> &mut Self {
        self.control_to(Opcode::Bra, target)
    }

    /// Branch to an absolute byte address.
    pub fn bra_abs(&mut self, addr: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Bra);
        i.srcs[1] = Operand::Imm(addr);
        self.push(i)
    }

    /// Push a reconvergence point at a label.
    pub fn bssy(&mut self, target: &str) -> &mut Self {
        self.control_to(Opcode::Bssy, target)
    }

    /// Pop the reconvergence point.
    pub fn bsync(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Bsync))
    }

    /// Thread-block barrier.
    pub fn bar_sync(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::BarSync))
    }

    /// Call a label.
    pub fn cal(&mut self, target: &str) -> &mut Self {
        self.control_to(Opcode::Cal, target)
    }

    /// Call an absolute byte address.
    pub fn cal_abs(&mut self, addr: u32) -> &mut Self {
        let mut i = Instruction::new(Opcode::Cal);
        i.srcs[1] = Operand::Imm(addr);
        self.push(i)
    }

    /// Return from a call.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Ret))
    }

    /// Terminate the thread.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Exit))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Nop))
    }

    /// FP32 `d = a * b + c`.
    pub fn ffma(&mut self, d: Reg, a: Reg, b: Operand, c: Reg) -> &mut Self {
        self.emit(Opcode::Ffma, d, [a.into(), b, c.into()])
    }

    /// FP32 `d = a + b`.
    pub fn fadd(&mut self, d: Reg, a: Reg, b: Operand) -> &mut Self {
        self.emit(Opcode::Fadd, d, [a.into(), b, Operand::RZ])
    }

    /// FP32 `d = a * b`.
    pub fn fmul(&mut self, d: Reg, a: Reg, b: Operand) -> &mut Self {
        self.emit(Opcode::Fmul, d, [a.into(), b, Operand::RZ])
    }

    /// Convert i32 → f32.
    pub fn i2f(&mut self, d: Reg, a: Reg) -> &mut Self {
        self.emit(Opcode::I2f, d, [a.into(), Operand::RZ, Operand::RZ])
    }

    /// Convert f32 → i32.
    pub fn f2i(&mut self, d: Reg, a: Reg) -> &mut Self {
        self.emit(Opcode::F2i, d, [a.into(), Operand::RZ, Operand::RZ])
    }

    /// Resolves all label references and produces the [`Program`].
    pub fn build(self) -> Result<Program, UnresolvedLabel> {
        let ProgramBuilder {
            mut insns,
            labels,
            fixups,
            ..
        } = self;
        for (idx, name) in fixups {
            let Some(&target) = labels.get(&name) else {
                return Err(UnresolvedLabel(name));
            };
            insns[idx].srcs[1] = Operand::Imm((target * INSN_BYTES) as u32);
        }
        Ok(Program { insns, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.bra("end"); // forward reference
        b.label("loop");
        b.nop();
        b.bra("loop"); // backward reference
        b.label("end");
        b.exit();
        let p = b.build().unwrap();
        assert_eq!(p.insns[0].srcs[1], Operand::Imm(48));
        assert_eq!(p.insns[2].srcs[1], Operand::Imm(16));
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.bra("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            UnresolvedLabel("nowhere".to_string())
        );
    }

    #[test]
    fn pending_ctrl_applies_once() {
        let mut b = ProgramBuilder::new();
        b.ctrl(CtrlInfo::stall(4).with_write_bar(0));
        b.ldg(Reg(8), Reg(2), 0);
        b.nop();
        let p = b.build().unwrap();
        assert_eq!(p.insns[0].ctrl.write_bar, Some(0));
        assert_eq!(p.insns[1].ctrl, CtrlInfo::default());
    }

    #[test]
    fn builder_matches_assembler() {
        let mut b = ProgramBuilder::new();
        b.label("entry");
        b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
        b.ldg(Reg(8), Reg(2), 0x10);
        b.ctrl(CtrlInfo::stall(2).with_wait(0));
        b.imad(Reg(4), Reg(8), Operand::Imm(0x11), Reg(4));
        b.exit();
        let built = b.build().unwrap();

        let asm = Program::assemble(
            "entry:\n\
             B------|R-|W0|Y0|S01| LDG.E R8, [R2+0x10] ;\n\
             B0-----|R-|W-|Y0|S02| IMAD R4, R8, 0x11, R4 ;\n\
             B------|R-|W-|Y0|S01| EXIT ;",
        )
        .unwrap();
        assert_eq!(built, asm);
    }

    #[test]
    fn round_trips_through_encode() {
        let mut b = ProgramBuilder::new();
        b.s2r(Reg(0), SpecialReg::TidX);
        b.isetp(PredReg(0), CmpOp::Lt, Reg(0), Operand::Imm(16));
        b.pred(Pred::on(PredReg(0)));
        b.iadd(Reg(1), Reg(1), Operand::Imm(1));
        b.exit();
        let p = b.build().unwrap();
        let q = Program::decode(&p.encode()).unwrap();
        assert_eq!(p.insns, q.insns);
    }
}
