//! Scheduling control information embedded in every instruction.
//!
//! Volta/Turing/Ampere encode compiler scheduling decisions into each
//! 128-bit instruction word; the hardware enforces them (paper §6.1,
//! Fig. 6). The fields are: reuse flags (4 b), wait-barrier mask (6 b),
//! read-barrier index (3 b), write-barrier index (3 b), yield flag (1 b)
//! and stall cycles (4 b).

use core::fmt;

/// Number of per-warp scoreboard (dependency-barrier) slots.
pub const NUM_BARRIERS: usize = 6;

/// Maximum stall value representable in the 4-bit field.
pub const MAX_STALL: u8 = 15;

/// Control information attached to one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CtrlInfo {
    /// Operand-reuse flags (4 bits); allow data reuse between adjacent
    /// instructions without consuming register-file ports. Modelled but
    /// without a timing effect in the simulator.
    pub reuse: u8,
    /// Wait-barrier mask (6 bits): issue stalls until every scoreboard slot
    /// named in the mask has signalled completion.
    pub wait_mask: u8,
    /// Scoreboard slot set when this instruction's *operands have been
    /// read* (for variable-latency consumers), or `None`.
    pub read_bar: Option<u8>,
    /// Scoreboard slot set when this instruction's *result is available*
    /// (for variable-latency producers such as `LDG`), or `None`.
    pub write_bar: Option<u8>,
    /// Yield flag: hints the scheduler to prefer switching warps.
    pub yield_flag: bool,
    /// Number of cycles the issuing warp stalls before its next
    /// instruction (4 bits).
    pub stall: u8,
}

impl CtrlInfo {
    /// Control info with a one-cycle stall and no barriers — the default
    /// for fixed-latency back-to-back issue.
    pub const fn stall(stall: u8) -> CtrlInfo {
        CtrlInfo {
            reuse: 0,
            wait_mask: 0,
            read_bar: None,
            write_bar: None,
            yield_flag: false,
            stall,
        }
    }

    /// Sets the write-barrier slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= NUM_BARRIERS`.
    pub fn with_write_bar(mut self, slot: u8) -> CtrlInfo {
        assert!((slot as usize) < NUM_BARRIERS, "barrier slot out of range");
        self.write_bar = Some(slot);
        self
    }

    /// Sets the read-barrier slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= NUM_BARRIERS`.
    pub fn with_read_bar(mut self, slot: u8) -> CtrlInfo {
        assert!((slot as usize) < NUM_BARRIERS, "barrier slot out of range");
        self.read_bar = Some(slot);
        self
    }

    /// Adds a slot to the wait mask.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= NUM_BARRIERS`.
    pub fn with_wait(mut self, slot: u8) -> CtrlInfo {
        assert!((slot as usize) < NUM_BARRIERS, "barrier slot out of range");
        self.wait_mask |= 1 << slot;
        self
    }

    /// Sets the yield flag.
    pub fn with_yield(mut self) -> CtrlInfo {
        self.yield_flag = true;
        self
    }

    /// Packs the control information into its 21-bit representation.
    pub fn pack(&self) -> u32 {
        let rd = self.read_bar.unwrap_or(7) as u32;
        let wr = self.write_bar.unwrap_or(7) as u32;
        (self.reuse as u32 & 0xF)
            | ((self.wait_mask as u32 & 0x3F) << 4)
            | (rd << 10)
            | (wr << 13)
            | ((self.yield_flag as u32) << 16)
            | ((self.stall as u32 & 0xF) << 17)
    }

    /// Unpacks control information from its 21-bit representation.
    pub fn unpack(bits: u32) -> CtrlInfo {
        let rd = ((bits >> 10) & 0x7) as u8;
        let wr = ((bits >> 13) & 0x7) as u8;
        CtrlInfo {
            reuse: (bits & 0xF) as u8,
            wait_mask: ((bits >> 4) & 0x3F) as u8,
            read_bar: if rd == 7 { None } else { Some(rd) },
            write_bar: if wr == 7 { None } else { Some(wr) },
            yield_flag: (bits >> 16) & 1 != 0,
            stall: ((bits >> 17) & 0xF) as u8,
        }
    }
}

impl Default for CtrlInfo {
    /// One-cycle stall, no barriers, no yield.
    fn default() -> CtrlInfo {
        CtrlInfo::stall(1)
    }
}

impl fmt::Display for CtrlInfo {
    /// Formats in the paper's prefix syntax, e.g. `B--2---|R-|W1|Y0|S02|`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B")?;
        for slot in 0..NUM_BARRIERS {
            if self.wait_mask & (1 << slot) != 0 {
                write!(f, "{slot}")?;
            } else {
                write!(f, "-")?;
            }
        }
        match self.read_bar {
            Some(r) => write!(f, "|R{r}")?,
            None => write!(f, "|R-")?,
        }
        match self.write_bar {
            Some(w) => write!(f, "|W{w}")?,
            None => write!(f, "|W-")?,
        }
        write!(f, "|Y{}", self.yield_flag as u8)?;
        write!(f, "|S{:02}|", self.stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for reuse in 0..16u8 {
            for wait in [0u8, 1, 0b101, 0b111111] {
                for rd in [None, Some(0u8), Some(5)] {
                    for wr in [None, Some(2u8)] {
                        for y in [false, true] {
                            for stall in [0u8, 1, 4, 15] {
                                let c = CtrlInfo {
                                    reuse,
                                    wait_mask: wait,
                                    read_bar: rd,
                                    write_bar: wr,
                                    yield_flag: y,
                                    stall,
                                };
                                assert_eq!(CtrlInfo::unpack(c.pack()), c);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pack_fits_21_bits() {
        let c = CtrlInfo {
            reuse: 0xF,
            wait_mask: 0x3F,
            read_bar: Some(5),
            write_bar: Some(5),
            yield_flag: true,
            stall: 15,
        };
        assert!(c.pack() < (1 << 21));
    }

    #[test]
    fn display_syntax() {
        let c = CtrlInfo::stall(1);
        assert_eq!(c.to_string(), "B------|R-|W-|Y0|S01|");
        let c = CtrlInfo::stall(4)
            .with_wait(2)
            .with_write_bar(1)
            .with_yield();
        assert_eq!(c.to_string(), "B--2---|R-|W1|Y1|S04|");
    }

    #[test]
    #[should_panic(expected = "barrier slot out of range")]
    fn barrier_slot_bounds_checked() {
        let _ = CtrlInfo::stall(1).with_write_bar(6);
    }
}
