//! `sage-as` — assemble SASS-like text into microcode (or PTX/CUDA
//! renderings).
//!
//! ```text
//! sage-as [--target microcode|ptx|cuda] [-o OUT] [INPUT]
//! ```
//!
//! Reads from `INPUT` (or stdin), writes to `OUT` (or stdout; binary
//! microcode on a terminal is printed as a hex listing).

use std::io::{Read, Write};
use std::process::ExitCode;

use sage_isa::{emit, Program};

fn usage() -> ! {
    eprintln!("usage: sage-as [--target microcode|ptx|cuda] [-o OUT] [INPUT]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut target = emit::Target::Microcode;
    let mut out_path: Option<String> = None;
    let mut in_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" | "-t" => match args.next().as_deref() {
                Some("microcode") => target = emit::Target::Microcode,
                Some("ptx") => target = emit::Target::Ptx,
                Some("cuda") => target = emit::Target::Cuda,
                _ => usage(),
            },
            "-o" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            other if in_path.is_none() && !other.starts_with('-') => {
                in_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }

    let src = match &in_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sage-as: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("sage-as: cannot read stdin");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let prog = match Program::assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sage-as: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes = emit::emit(&prog, target);

    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &bytes) {
                eprintln!("sage-as: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            if target == emit::Target::Microcode {
                // Hex listing for terminals.
                for (i, chunk) in bytes.chunks(16).enumerate() {
                    let hex: String = chunk.iter().map(|b| format!("{b:02x}")).collect();
                    println!("{:08x}: {hex}", i * 16);
                }
            } else {
                let mut stdout = std::io::stdout();
                let _ = stdout.write_all(&bytes);
            }
        }
    }
    ExitCode::SUCCESS
}
