//! `sage-dis` — disassemble microcode into SASS-like text (the
//! `nvdisasm` counterpart of the instruction decoding framework,
//! paper §6.1).
//!
//! ```text
//! sage-dis [--addr BASE] [INPUT.bin]
//! ```
//!
//! Invalid words are printed as `.word` directives rather than aborting,
//! so data regions embedded in a dump remain inspectable.

use std::io::Read;
use std::process::ExitCode;

use sage_isa::{encode, INSN_BYTES};

fn usage() -> ! {
    eprintln!("usage: sage-dis [--addr BASE] [INPUT.bin]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut base: u32 = 0;
    let mut in_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" | "-a" => {
                let v = args.next().unwrap_or_else(|| usage());
                let v = v.strip_prefix("0x").unwrap_or(&v);
                base = u32::from_str_radix(v, 16).unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            other if in_path.is_none() && !other.starts_with('-') => {
                in_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }

    let bytes = match &in_path {
        Some(path) => match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sage-dis: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut b = Vec::new();
            if std::io::stdin().read_to_end(&mut b).is_err() {
                eprintln!("sage-dis: cannot read stdin");
                return ExitCode::FAILURE;
            }
            b
        }
    };

    if bytes.len() % INSN_BYTES != 0 {
        eprintln!(
            "sage-dis: warning: {} trailing bytes ignored",
            bytes.len() % INSN_BYTES
        );
    }
    for (i, chunk) in bytes.chunks_exact(INSN_BYTES).enumerate() {
        let mut word = [0u8; INSN_BYTES];
        word.copy_from_slice(chunk);
        let addr = base + (i * INSN_BYTES) as u32;
        match encode::decode_bytes(&word) {
            Ok(insn) => println!("/*{addr:08x}*/  {insn}"),
            Err(_) => {
                let lo = u64::from_le_bytes(word[..8].try_into().expect("8 bytes"));
                let hi = u64::from_le_bytes(word[8..].try_into().expect("8 bytes"));
                println!("/*{addr:08x}*/  .word 0x{hi:016x}{lo:016x}");
            }
        }
    }
    ExitCode::SUCCESS
}
