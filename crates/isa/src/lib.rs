//! A SASS-like GPU instruction set architecture for the SAGE reproduction.
//!
//! This crate is the reproduction of SAGE's *instruction generation
//! framework* (paper §6.1–§6.2): it defines a fixed-length 128-bit
//! instruction encoding carrying both the operation and its associated
//! scheduling *control information* (reuse flags, wait-barrier mask,
//! read/write barrier indices, yield flag, stall cycles — paper Fig. 6),
//! and provides:
//!
//! - typed [`Instruction`]s with [`Opcode`]s modelled after NVIDIA Ampere
//!   SASS (`IMAD`, `LEA.HI`, `SHF`, `LOP3`, `LDG`, `ATOMG.ADD`, …),
//! - a binary [encoder/decoder](encode) with exhaustive round-trip tests,
//! - a text [assembler](asm) for the paper's
//!   `B......|R.|W.|Y1|S1| IMAD.U32 R28, R28, 2048, R28;` syntax and a
//!   matching disassembler,
//! - [builders](builder) used by the verification-function generator, and
//! - [emitters](emit) that translate a program to microcode bytes, a
//!   PTX-like virtual assembly, or CUDA-C-like source text.
//!
//! The encoding is our own (NVIDIA's is undocumented), but it preserves the
//! properties SAGE depends on: fixed 128-bit size, an immediate field at a
//! known bit position (so self-modifying code can patch it with a single
//! 32-bit store), and hardware-enforced scheduling metadata.
//!
//! # Examples
//!
//! ```
//! use sage_isa::{Program, encode};
//!
//! let prog = Program::assemble(
//!     "B------|R-|W-|Y0|S01| IMAD R4, R4, 0x11, R5 ;\n\
//!      B------|R-|W-|Y0|S01| EXIT ;",
//! )
//! .unwrap();
//! let bytes = prog.encode();
//! assert_eq!(bytes.len(), 2 * 16);
//! let back = Program::decode(&bytes).unwrap();
//! assert_eq!(prog.insns, back.insns);
//! ```

pub mod asm;
pub mod builder;
pub mod ctrl;
pub mod emit;
pub mod encode;
pub mod insn;
pub mod op;
pub mod program;
pub mod reg;

pub use asm::AsmError;
pub use builder::ProgramBuilder;
pub use ctrl::CtrlInfo;
pub use encode::DecodeError;
pub use insn::{Instruction, Operand, Pred};
pub use op::{CmpOp, Opcode, Pipeline};
pub use program::Program;
pub use reg::{PredReg, Reg, SpecialReg};

/// Size of one encoded instruction in bytes (128-bit fixed length, as on
/// Volta/Turing/Ampere).
pub const INSN_BYTES: usize = 16;
