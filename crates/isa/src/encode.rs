//! Fixed-length 128-bit binary encoding of instructions.
//!
//! Bit layout (least-significant bit first), our analogue of paper Fig. 6:
//!
//! ```text
//!   [  0, 10)  opcode
//!   [ 10, 13)  guard predicate register (7 = PT)
//!   [ 13, 14)  guard predicate negation
//!   [ 14, 22)  destination register
//!   [ 22, 30)  source A register
//!   [ 30, 38)  source B register
//!   [ 38, 46)  source C register
//!   [ 46, 49)  destination predicate (7 = none)
//!   [ 49, 52)  immediate-slot flags (A, B, C; at most one set)
//!   [ 52, 57)  shift modifier
//!   [ 57, 60)  comparison op
//!   [ 64, 96)  32-bit immediate        <- patched by self-modifying code
//!   [ 96,104)  LOP3 look-up table
//!   [104,125)  control information (reuse 4, wait 6, rd 3, wr 3, yield 1,
//!              stall 4) — see [`crate::ctrl`]
//! ```
//!
//! The immediate field occupies bytes `[8, 12)` of the 16-byte word, a
//! 4-byte-aligned offset ([`IMM_BYTE_OFFSET`]), so a single aligned 32-bit
//! store can patch it — the property the checksum function's
//! self-modifying code relies on (paper §6.5).

use core::fmt;

use crate::{
    ctrl::CtrlInfo,
    insn::{Instruction, Operand, Pred},
    op::{CmpOp, Opcode},
    reg::{PredReg, Reg},
};

/// Byte offset of the 32-bit immediate field inside the 16-byte word
/// (immediate bits `[64, 96)` = bytes `[8, 12)`, 4-byte aligned).
pub const IMM_BYTE_OFFSET: usize = 8;

const OPCODE_SHIFT: u32 = 0;
const PRED_SHIFT: u32 = 10;
const PRED_NEG_SHIFT: u32 = 13;
const DST_SHIFT: u32 = 14;
const SRCA_SHIFT: u32 = 22;
const SRCB_SHIFT: u32 = 30;
const SRCC_SHIFT: u32 = 38;
const DPRED_SHIFT: u32 = 46;
const IMMFLAG_SHIFT: u32 = 49;
const SHIFTMOD_SHIFT: u32 = 52;
const CMP_SHIFT: u32 = 57;
const IMM_SHIFT: u32 = 64;
const LUT_SHIFT: u32 = 96;
const CTRL_SHIFT: u32 = 104;

/// Errors produced while decoding a 128-bit instruction word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field does not name a known operation.
    UnknownOpcode(u16),
    /// The comparison-operation field is out of range.
    UnknownCmpOp(u8),
    /// More than one immediate-slot flag is set.
    MultipleImmediates,
    /// The byte slice length is not a multiple of 16.
    Truncated(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(c) => write!(f, "unknown opcode {c:#x}"),
            DecodeError::UnknownCmpOp(c) => write!(f, "unknown comparison op {c:#x}"),
            DecodeError::MultipleImmediates => {
                write!(f, "more than one immediate operand encoded")
            }
            DecodeError::Truncated(n) => {
                write!(f, "byte length {n} is not a multiple of 16")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one instruction into a 128-bit word.
///
/// # Panics
///
/// Panics if the instruction carries more than one immediate operand (the
/// encoding has a single immediate field, as on real SASS).
pub fn encode(i: &Instruction) -> u128 {
    assert!(
        i.imm_count() <= 1,
        "at most one immediate operand is encodable"
    );
    let mut w: u128 = 0;
    w |= (i.op.code() as u128) << OPCODE_SHIFT;
    w |= (i.pred.reg.0 as u128 & 0x7) << PRED_SHIFT;
    w |= (i.pred.neg as u128) << PRED_NEG_SHIFT;
    w |= (i.dst.0 as u128) << DST_SHIFT;
    let mut imm_flags = 0u128;
    let mut imm_val = 0u32;
    let shifts = [SRCA_SHIFT, SRCB_SHIFT, SRCC_SHIFT];
    for (k, src) in i.srcs.iter().enumerate() {
        match *src {
            Operand::Reg(r) => w |= (r.0 as u128) << shifts[k],
            Operand::Imm(v) => {
                imm_flags |= 1 << k;
                imm_val = v;
                // Register field left as zero for immediate slots.
            }
        }
    }
    w |= (i.dst_pred.map(|p| p.0).unwrap_or(7) as u128 & 0x7) << DPRED_SHIFT;
    w |= imm_flags << IMMFLAG_SHIFT;
    w |= (imm_val as u128) << IMM_SHIFT;
    w |= (i.shift as u128 & 0x1F) << SHIFTMOD_SHIFT;
    w |= (i.lut as u128) << LUT_SHIFT;
    w |= (i.cmp as u8 as u128 & 0x7) << CMP_SHIFT;
    w |= (i.ctrl.pack() as u128) << CTRL_SHIFT;
    w
}

/// Decodes one 128-bit word into an instruction.
pub fn decode(w: u128) -> Result<Instruction, DecodeError> {
    let opcode = ((w >> OPCODE_SHIFT) & 0x3FF) as u16;
    let op = Opcode::from_code(opcode).ok_or(DecodeError::UnknownOpcode(opcode))?;
    let imm_flags = ((w >> IMMFLAG_SHIFT) & 0x7) as u8;
    if imm_flags.count_ones() > 1 {
        return Err(DecodeError::MultipleImmediates);
    }
    let imm_val = ((w >> IMM_SHIFT) & 0xFFFF_FFFF) as u32;
    let shifts = [SRCA_SHIFT, SRCB_SHIFT, SRCC_SHIFT];
    let mut srcs = [Operand::RZ; 3];
    for (k, slot) in srcs.iter_mut().enumerate() {
        if imm_flags & (1 << k) != 0 {
            *slot = Operand::Imm(imm_val);
        } else {
            *slot = Operand::Reg(Reg(((w >> shifts[k]) & 0xFF) as u8));
        }
    }
    let dpred = ((w >> DPRED_SHIFT) & 0x7) as u8;
    let cmp_code = ((w >> CMP_SHIFT) & 0x7) as u8;
    let cmp = CmpOp::from_code(cmp_code).ok_or(DecodeError::UnknownCmpOp(cmp_code))?;
    Ok(Instruction {
        pred: Pred {
            reg: PredReg(((w >> PRED_SHIFT) & 0x7) as u8),
            neg: (w >> PRED_NEG_SHIFT) & 1 != 0,
        },
        op,
        dst: Reg(((w >> DST_SHIFT) & 0xFF) as u8),
        dst_pred: if dpred == 7 {
            None
        } else {
            Some(PredReg(dpred))
        },
        srcs,
        shift: ((w >> SHIFTMOD_SHIFT) & 0x1F) as u8,
        lut: ((w >> LUT_SHIFT) & 0xFF) as u8,
        cmp,
        ctrl: CtrlInfo::unpack(((w >> CTRL_SHIFT) & 0x1F_FFFF) as u32),
    })
}

/// Encodes an instruction directly to 16 little-endian bytes.
pub fn encode_bytes(i: &Instruction) -> [u8; 16] {
    encode(i).to_le_bytes()
}

/// Decodes an instruction from 16 little-endian bytes.
pub fn decode_bytes(b: &[u8; 16]) -> Result<Instruction, DecodeError> {
    decode(u128::from_le_bytes(*b))
}

/// Decodes a whole cache line (any multiple of 16 bytes) into per-slot
/// decode results. This is the pre-decode step the simulator's
/// instruction caches run at line-install time: decode errors are kept
/// per slot (not propagated) so data bytes that happen to share a line
/// with code only fault if they are actually fetched as instructions.
pub fn decode_line(bytes: &[u8]) -> Vec<Result<Instruction, DecodeError>> {
    bytes
        .chunks_exact(crate::INSN_BYTES)
        .map(|chunk| {
            let mut word = [0u8; crate::INSN_BYTES];
            word.copy_from_slice(chunk);
            decode_bytes(&word)
        })
        .collect()
}

/// Patches the 32-bit immediate field inside an encoded 16-byte
/// instruction word in place, without re-encoding.
///
/// This is the operation the self-modifying checksum code performs with an
/// `STG` into its own instruction stream (paper §6.5, step 5).
pub fn patch_immediate_bytes(word: &mut [u8; 16], value: u32) {
    // Immediate occupies bits [64, 96) = bytes [8, 12).
    word[IMM_BYTE_OFFSET..IMM_BYTE_OFFSET + 4].copy_from_slice(&value.to_le_bytes());
}

/// Reads the 32-bit immediate field from an encoded 16-byte word.
pub fn read_immediate_bytes(word: &[u8; 16]) -> u32 {
    u32::from_le_bytes([word[8], word[9], word[10], word[11]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::lut;

    fn sample() -> Instruction {
        let mut i = Instruction::new(Opcode::Lop3);
        i.dst = Reg(12);
        i.srcs = [Reg(1).into(), Reg(2).into(), Reg(3).into()];
        i.lut = lut::XOR_ABC;
        i.ctrl = CtrlInfo::stall(2).with_wait(1);
        i
    }

    #[test]
    fn encode_decode_round_trip() {
        let i = sample();
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn bytes_round_trip() {
        let i = sample();
        assert_eq!(decode_bytes(&encode_bytes(&i)).unwrap(), i);
    }

    #[test]
    fn immediate_patching_matches_reencode() {
        let mut i = Instruction::new(Opcode::LeaHi);
        i.dst = Reg(28);
        i.srcs = [Reg(28).into(), Operand::Imm(0xDEAD_BEEF), Operand::RZ];
        let mut bytes = encode_bytes(&i);
        patch_immediate_bytes(&mut bytes, 0x1234_5678);
        let decoded = decode_bytes(&bytes).unwrap();
        assert_eq!(decoded.immediate(), Some(0x1234_5678));
        assert_eq!(read_immediate_bytes(&bytes), 0x1234_5678);

        // Patching bytes must agree with patching the typed form.
        let mut typed = i;
        typed.patch_immediate(0x1234_5678);
        assert_eq!(decoded, typed);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let w: u128 = 0x3FF; // opcode field all-ones
        assert_eq!(decode(w), Err(DecodeError::UnknownOpcode(0x3FF)));
    }

    #[test]
    fn multiple_immediates_rejected() {
        let i = sample();
        let mut w = encode(&i);
        w |= 0b11 << IMMFLAG_SHIFT;
        assert_eq!(decode(w), Err(DecodeError::MultipleImmediates));
    }

    #[test]
    #[should_panic(expected = "at most one immediate")]
    fn encoding_two_immediates_panics() {
        let mut i = Instruction::new(Opcode::Iadd3);
        i.srcs = [Operand::Imm(1), Operand::Imm(2), Operand::RZ];
        let _ = encode(&i);
    }

    #[test]
    fn control_info_survives() {
        let mut i = sample();
        i.ctrl = CtrlInfo {
            reuse: 0b1010,
            wait_mask: 0b010110,
            read_bar: Some(3),
            write_bar: Some(0),
            yield_flag: true,
            stall: 13,
        };
        assert_eq!(decode(encode(&i)).unwrap().ctrl, i.ctrl);
    }
}
