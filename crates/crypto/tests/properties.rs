//! Property-based tests of the crypto substrate: round trips, algebraic
//! identities against wide-integer references, and tamper detection.

// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// locally to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage_crypto::{
    chain::HashChain,
    cmac::{cmac_aes128, cmac_verify},
    AesCtr, BigUint, DhGroup, Montgomery, Sha256,
};

/// An arbitrary odd modulus of 64–2048 bits (Montgomery's domain).
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 8..=256).prop_map(|mut bytes| {
        bytes[0] |= 0x80; // pin the width
        let n = bytes.len();
        bytes[n - 1] |= 1; // odd
        BigUint::from_bytes_be(&bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        split in any::<usize>(),
    ) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sage_crypto::sha256(&data));
    }

    #[test]
    fn aes_ctr_round_trips(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut enc = AesCtr::new(&key, &iv);
        let mut buf = data.clone();
        enc.apply(&mut buf);
        let mut dec = AesCtr::new(&key, &iv);
        dec.apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aes_ctr_chunking_invariant(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        data in prop::collection::vec(any::<u8>(), 1..512),
        chunk in 1usize..64,
    ) {
        let mut whole = data.clone();
        AesCtr::new(&key, &iv).apply(&mut whole);
        let mut pieces = data.clone();
        let mut ctr = AesCtr::new(&key, &iv);
        for c in pieces.chunks_mut(chunk) {
            ctr.apply(c);
        }
        prop_assert_eq!(whole, pieces);
    }

    #[test]
    fn cmac_detects_any_tamper(
        key in any::<[u8; 16]>(),
        msg in prop::collection::vec(any::<u8>(), 1..256),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let tag = cmac_aes128(&key, &msg);
        prop_assert!(cmac_verify(&key, &msg, &tag));
        let mut bad = msg.clone();
        let i = pos % bad.len();
        bad[i] ^= flip;
        prop_assert!(!cmac_verify(&key, &bad, &tag));
    }

    #[test]
    fn cmac_keys_separate(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let t1 = cmac_aes128(&k1, &msg);
        let t2 = cmac_aes128(&k2, &msg);
        if k1 == k2 {
            prop_assert_eq!(t1, t2);
        } else {
            prop_assert_ne!(t1, t2);
        }
    }

    #[test]
    fn bignum_add_sub_inverse(a in any::<u128>(), b in any::<u128>()) {
        let ba = BigUint::from_bytes_be(&a.to_be_bytes());
        let bb = BigUint::from_bytes_be(&b.to_be_bytes());
        prop_assert_eq!(ba.add(&bb).sub(&bb), ba);
    }

    #[test]
    fn bignum_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let r = BigUint::from_bytes_be(&a.to_be_bytes())
            .mul(&BigUint::from_bytes_be(&b.to_be_bytes()));
        let expect = a as u128 * b as u128;
        prop_assert_eq!(r, BigUint::from_bytes_be(&expect.to_be_bytes()));
    }

    #[test]
    fn bignum_rem_matches_u128(a in any::<u128>(), m in 1u128..) {
        let r = BigUint::from_bytes_be(&a.to_be_bytes())
            .rem(&BigUint::from_bytes_be(&m.to_be_bytes()));
        prop_assert_eq!(r, BigUint::from_bytes_be(&(a % m).to_be_bytes()));
    }

    #[test]
    fn bignum_modpow_matches_u128(base in any::<u64>(), exp in any::<u8>(), m in 2u64..) {
        // u128-checked reference for small exponents.
        let mut expect: u128 = 1;
        let mm = m as u128;
        let mut b = base as u128 % mm;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                expect = expect * b % mm;
            }
            b = b * b % mm;
            e >>= 1;
        }
        let r = BigUint::from_bytes_be(&base.to_be_bytes()).modpow(
            &BigUint::from_bytes_be(&[exp]),
            &BigUint::from_bytes_be(&m.to_be_bytes()),
        );
        prop_assert_eq!(r, BigUint::from_bytes_be(&expect.to_be_bytes()));
    }

    #[test]
    fn bignum_bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let b = BigUint::from_bytes_be(&bytes);
        let back = b.to_bytes_be();
        // Canonical form: no leading zeros.
        let canon: Vec<u8> = bytes.iter().copied().skip_while(|&x| x == 0).collect();
        prop_assert_eq!(back, canon);
    }

    #[test]
    fn hash_chain_links_verify(root in any::<[u8; 32]>()) {
        let c = HashChain::from_root(root);
        prop_assert!(HashChain::verify_link(c.x2(), c.x1()));
        prop_assert!(HashChain::verify_link(c.x1(), c.x0()));
        // Cross-links never verify (collision would be a SHA-256 break).
        prop_assert!(!HashChain::verify_link(c.x2(), c.x0()));
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in prop::collection::vec(any::<u8>(), 0..64),
                            b in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(sage_crypto::ct_eq(&a, &b), a == b);
    }

    #[test]
    fn montgomery_mul_matches_reference(
        m in odd_modulus(),
        a_bytes in prop::collection::vec(any::<u8>(), 1..=256),
        b_bytes in prop::collection::vec(any::<u8>(), 1..=256),
    ) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let a = BigUint::from_bytes_be(&a_bytes).rem(&m);
        let b = BigUint::from_bytes_be(&b_bytes).rem(&m);
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn montgomery_modpow_matches_reference(
        m in odd_modulus(),
        base_bytes in prop::collection::vec(any::<u8>(), 1..=256),
        exp_bytes in prop::collection::vec(any::<u8>(), 1..=32),
    ) {
        // The pre-Montgomery square-and-multiply modpow is kept compiled
        // exactly as the oracle for this property.
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let base = BigUint::from_bytes_be(&base_bytes).rem(&m);
        let exp = BigUint::from_bytes_be(&exp_bytes);
        prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow(&exp, &m));
    }

    #[test]
    fn montgomery_form_round_trips(
        m in odd_modulus(),
        a_bytes in prop::collection::vec(any::<u8>(), 1..=256),
    ) {
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let a = BigUint::from_bytes_be(&a_bytes).rem(&m);
        prop_assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
    }

    #[test]
    fn modpow_fast_dispatch_is_transparent(
        m_bytes in prop::collection::vec(any::<u8>(), 8..=64),
        base_bytes in prop::collection::vec(any::<u8>(), 1..=64),
        exp_bytes in prop::collection::vec(any::<u8>(), 1..=16),
    ) {
        // Even moduli must fall back to the reference path, odd ones
        // take Montgomery; both agree with the oracle.
        let m = {
            let mut b = m_bytes;
            b[0] |= 0x80;
            BigUint::from_bytes_be(&b)
        };
        prop_assume!(!m.is_zero());
        let base = BigUint::from_bytes_be(&base_bytes);
        let exp = BigUint::from_bytes_be(&exp_bytes);
        prop_assert_eq!(base.modpow_fast(&exp, &m), base.modpow(&exp, &m));
    }

    #[test]
    fn dh_shared_secret_round_trips_with_montgomery(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        // Both parties' exponentiations run through the group's
        // Montgomery context; the DH identity (g^a)^b == (g^b)^a must
        // keep holding.
        let group = DhGroup::test_group();
        let mut ea = {
            let mut s = seed_a | 1;
            move |buf: &mut [u8]| for b in buf.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *b = (s >> 56) as u8;
            }
        };
        let mut eb = {
            let mut s = seed_b | 3;
            move |buf: &mut [u8]| for b in buf.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *b = (s >> 56) as u8;
            }
        };
        let ka = group.generate(&mut ea);
        let kb = group.generate(&mut eb);
        prop_assert_eq!(
            group.shared_secret(&ka, &kb.public),
            group.shared_secret(&kb, &ka.public)
        );
    }
}
