//! Hash chains in the Guy Fawkes style (Anderson et al.), as used by the
//! SAKE key-establishment protocol: each party commits to the head of a
//! short chain (`v₂ = H(v₁) = H(H(v₀))`) and gradually discloses the
//! pre-images, which the peer verifies link by link (paper §5.2.3,
//! Eqs. 1–7).

use crate::sha256::sha256;

/// A length-3 hash chain `x₀ → x₁ = H(x₀) → x₂ = H(x₁)` over 32-byte
/// values, matching the SAKE message flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashChain {
    links: [[u8; 32]; 3],
}

impl HashChain {
    /// Builds the chain from its secret root `x₀`.
    pub fn from_root(x0: [u8; 32]) -> HashChain {
        let x1 = sha256(&x0);
        let x2 = sha256(&x1);
        HashChain {
            links: [x0, x1, x2],
        }
    }

    /// The secret root `x₀`.
    pub fn x0(&self) -> &[u8; 32] {
        &self.links[0]
    }

    /// The middle link `x₁ = H(x₀)`.
    pub fn x1(&self) -> &[u8; 32] {
        &self.links[1]
    }

    /// The public commitment `x₂ = H(x₁)`.
    pub fn x2(&self) -> &[u8; 32] {
        &self.links[2]
    }

    /// Verifies that `candidate` is the pre-image of `commitment`
    /// (`H(candidate) == commitment`).
    pub fn verify_link(commitment: &[u8; 32], candidate: &[u8; 32]) -> bool {
        crate::ct::ct_eq(&sha256(candidate), commitment)
    }
}

/// Verifier-side view of a peer's chain: holds the last verified link and
/// accepts pre-images one at a time.
#[derive(Clone, Debug)]
pub struct ChainVerifier {
    expected: [u8; 32],
    accepted: u32,
}

impl ChainVerifier {
    /// Starts from a received commitment `x₂`.
    pub fn new(commitment: [u8; 32]) -> ChainVerifier {
        ChainVerifier {
            expected: commitment,
            accepted: 0,
        }
    }

    /// Accepts the next pre-image if it hashes to the current expectation;
    /// returns `true` and advances on success.
    pub fn accept(&mut self, preimage: &[u8; 32]) -> bool {
        if HashChain::verify_link(&self.expected, preimage) {
            self.expected = *preimage;
            self.accepted += 1;
            true
        } else {
            false
        }
    }

    /// Number of links verified so far.
    pub fn accepted(&self) -> u32 {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let c = HashChain::from_root([7u8; 32]);
        assert_eq!(*c.x1(), sha256(c.x0()));
        assert_eq!(*c.x2(), sha256(c.x1()));
        assert!(HashChain::verify_link(c.x2(), c.x1()));
        assert!(HashChain::verify_link(c.x1(), c.x0()));
        assert!(!HashChain::verify_link(c.x2(), c.x0()));
    }

    #[test]
    fn verifier_walks_the_chain() {
        let c = HashChain::from_root([42u8; 32]);
        let mut v = ChainVerifier::new(*c.x2());
        assert!(v.accept(c.x1()));
        assert!(v.accept(c.x0()));
        assert_eq!(v.accepted(), 2);
    }

    #[test]
    fn verifier_rejects_wrong_preimage_and_replays() {
        let c = HashChain::from_root([42u8; 32]);
        let mut v = ChainVerifier::new(*c.x2());
        assert!(!v.accept(c.x0())); // skipping a link fails
        assert!(v.accept(c.x1()));
        assert!(!v.accept(c.x1())); // replaying the same link fails
        assert!(v.accept(c.x0()));
    }

    #[test]
    fn distinct_roots_give_distinct_commitments() {
        let a = HashChain::from_root([1u8; 32]);
        let b = HashChain::from_root([2u8; 32]);
        assert_ne!(a.x2(), b.x2());
    }
}
