//! AES-128 in counter mode (NIST SP 800-38A §6.5).
//!
//! Used by the verifier enclave as a nonce/challenge generator (paper
//! §6.5: "AES-CTR with an IV that has been generated using a TRNG during
//! the enclave creation") and by the secure channel for data secrecy
//! (§5.2.4).

use crate::aes::Aes128;

/// AES-CTR keystream generator / stream cipher.
#[derive(Clone)]
pub struct AesCtr {
    cipher: Aes128,
    counter: [u8; 16],
    keystream: [u8; 16],
    used: usize,
}

impl AesCtr {
    /// Creates a CTR stream from key and initial counter block (IV).
    pub fn new(key: &[u8; 16], iv: &[u8; 16]) -> AesCtr {
        AesCtr {
            cipher: Aes128::new(key),
            counter: *iv,
            keystream: [0; 16],
            used: 16, // force refill on first use
        }
    }

    fn refill(&mut self) {
        self.keystream = self.cipher.encrypt(&self.counter);
        self.bump_counter();
        self.used = 0;
    }

    /// Increments the counter block as a 128-bit big-endian integer.
    fn bump_counter(&mut self) {
        for i in (0..16).rev() {
            self.counter[i] = self.counter[i].wrapping_add(1);
            if self.counter[i] != 0 {
                break;
            }
        }
    }

    /// XORs the keystream into `data` (encrypt == decrypt).
    ///
    /// Block-aligned middle sections are processed a full AES block at a
    /// time (no per-byte refill checks, no buffered-keystream copies);
    /// the ragged head and tail go through the buffered path. Bit-exact
    /// with the byte-at-a-time implementation for every split.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut data = data;
        // Head: drain the buffered keystream remainder.
        if self.used < 16 {
            let take = (16 - self.used).min(data.len());
            let (head, rest) = data.split_at_mut(take);
            for b in head.iter_mut() {
                *b ^= self.keystream[self.used];
                self.used += 1;
            }
            data = rest;
        }
        // Middle: whole blocks straight from the cipher.
        let mut chunks = data.chunks_exact_mut(16);
        for chunk in &mut chunks {
            let ks = self.cipher.encrypt(&self.counter);
            self.bump_counter();
            for (b, k) in chunk.iter_mut().zip(&ks) {
                *b ^= k;
            }
        }
        // Tail: buffer one more block and use part of it.
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            self.refill();
            for b in tail.iter_mut() {
                *b ^= self.keystream[self.used];
                self.used += 1;
            }
        }
    }

    /// Fills `out` with keystream bytes — the multi-message batching
    /// entry point: one call generates the keystream for any number of
    /// back-to-back 16-byte challenges without intermediate allocation.
    pub fn keystream_into(&mut self, out: &mut [u8]) {
        out.fill(0);
        self.apply(out);
    }

    /// Returns `n` keystream bytes (a deterministic random generator when
    /// keyed with fresh entropy).
    pub fn keystream_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.apply(&mut v);
        v
    }

    /// Encrypts a copy of `data`.
    pub fn encrypt_vec(&mut self, data: &[u8]) -> Vec<u8> {
        let mut v = data.to_vec();
        self.apply(&mut v);
        v
    }
}

impl crate::EntropySource for AesCtr {
    fn fill(&mut self, buf: &mut [u8]) {
        buf.fill(0);
        self.apply(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_f51() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
        let key: [u8; 16] = unhex("2b7e151628aed2a6abf7158809cf4f3c")
            .try_into()
            .unwrap();
        let iv: [u8; 16] = unhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let plain = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let expect = unhex(
            "874d6191b620e3261bef6864990db6ce\
             9806f66b7970fdff8617187bb9fffdff\
             5ae4df3edbd5d35e5b4f09020db03eab\
             1e031dda2fbe03d1792170a0f3009cee",
        );
        let mut ctr = AesCtr::new(&key, &iv);
        let mut data = plain.clone();
        ctr.apply(&mut data);
        assert_eq!(data, expect);

        // Decryption is the same operation.
        let mut ctr = AesCtr::new(&key, &iv);
        ctr.apply(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [9u8; 16];
        let iv = [3u8; 16];
        let mut a = AesCtr::new(&key, &iv);
        let mut b = AesCtr::new(&key, &iv);
        let mut one = vec![0u8; 100];
        a.apply(&mut one);
        let mut parts = vec![0u8; 100];
        for chunk in parts.chunks_mut(7) {
            b.apply(chunk);
        }
        assert_eq!(one, parts);
    }

    #[test]
    fn counter_wraps_within_byte() {
        let key = [0u8; 16];
        let mut iv = [0u8; 16];
        iv[15] = 0xFF; // next increment carries into byte 14
        let mut ctr = AesCtr::new(&key, &iv);
        let _ = ctr.keystream_bytes(48); // consumes 3 blocks without panic
    }

    #[test]
    fn keystream_into_matches_keystream_bytes() {
        let key = [7u8; 16];
        let iv = [1u8; 16];
        let mut a = AesCtr::new(&key, &iv);
        let mut b = AesCtr::new(&key, &iv);
        let mut batched = vec![0xAAu8; 6 * 16 + 5]; // pre-fill ignored
        a.keystream_into(&mut batched);
        assert_eq!(batched, b.keystream_bytes(6 * 16 + 5));
    }

    #[test]
    fn entropy_source_impl() {
        use crate::EntropySource;
        let mut ctr = AesCtr::new(&[1u8; 16], &[2u8; 16]);
        let a = ctr.bytes(32);
        let b = ctr.bytes(32);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
