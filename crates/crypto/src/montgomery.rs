//! Montgomery-form modular arithmetic for odd moduli.
//!
//! The SAKE enrollment cost is dominated by 2048-bit modular
//! exponentiation. The reference [`crate::BigUint::modpow`] pays a full
//! schoolbook multiply *plus* a shift-subtract reduction per exponent
//! bit; Montgomery reduction replaces the reduction with one extra pass
//! of word-level multiply-accumulates (CIOS — coarsely integrated
//! operand scanning), and a 4-bit fixed window cuts the number of
//! multiplies by ~4×. The reference implementation stays compiled and
//! serves as the test oracle; every result here is bit-exact against it.
//!
//! All MODP group moduli are odd primes, so the odd-modulus restriction
//! costs nothing in practice; callers fall back to the reference path
//! for even moduli (see [`crate::BigUint::modpow_fast`]).

use crate::bignum::BigUint;

/// Precomputed Montgomery context for one odd modulus.
///
/// Holds the modulus limbs, `n0' = -m⁻¹ mod 2³²` and `R² mod m` where
/// `R = 2^(32·n)` for an `n`-limb modulus. Reusable across any number of
/// multiplications and exponentiations mod the same modulus.
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// Modulus limbs, little-endian, top limb non-zero.
    m: Vec<u32>,
    /// `-m[0]⁻¹ mod 2³²`.
    n0: u32,
    /// `R² mod m`, Montgomery form of `R`.
    r2: Vec<u32>,
    /// `R mod m` — the Montgomery representation of 1.
    r1: Vec<u32>,
}

impl Montgomery {
    /// Builds a context for `m`. Returns `None` if `m` is even or zero
    /// (Montgomery reduction requires `gcd(m, 2³²) = 1`).
    pub fn new(m: &BigUint) -> Option<Montgomery> {
        if m.is_zero() || !m.is_odd() {
            return None;
        }
        let limbs = m.limbs().to_vec();
        let n = limbs.len();
        // Newton–Hensel iteration: each step doubles the valid bits of
        // the inverse of m[0] mod 2³² (5 steps cover 32 bits).
        let mut inv: u32 = limbs[0];
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(limbs[0].wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();
        // R mod m and R² mod m via the (slow, one-time) reference path.
        let r = BigUint::one().shl(32 * n).rem(m);
        let r2 = r.mul(&r).rem(m);
        Some(Montgomery {
            n0,
            r1: pad_limbs(&r, n),
            r2: pad_limbs(&r2, n),
            m: limbs,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.m.clone())
    }

    /// `true` if this context was built for exactly `m` — a cheap guard
    /// for callers that cache a context next to a mutable modulus.
    pub fn modulus_matches(&self, m: &BigUint) -> bool {
        self.m == m.limbs()
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod m`.
    /// Both inputs must be `< m` (n-limb, zero-padded); the result is
    /// `< m`.
    fn mont_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let n = self.m.len();
        let mut t = vec![0u32; n + 2];
        for &ai in a.iter().take(n) {
            // t += ai * b
            let mut carry = 0u64;
            for j in 0..n {
                let s = t[j] as u64 + ai as u64 * b[j] as u64 + carry;
                t[j] = s as u32;
                carry = s >> 32;
            }
            let s = t[n] as u64 + carry;
            t[n] = s as u32;
            t[n + 1] = (s >> 32) as u32;
            // t = (t + mu*m) / 2³², exact because mu kills the low limb.
            let mu = t[0].wrapping_mul(self.n0);
            let mut carry = (t[0] as u64 + mu as u64 * self.m[0] as u64) >> 32;
            for j in 1..n {
                let s = t[j] as u64 + mu as u64 * self.m[j] as u64 + carry;
                t[j - 1] = s as u32;
                carry = s >> 32;
            }
            let s = t[n] as u64 + carry;
            t[n - 1] = s as u32;
            t[n] = t[n + 1] + (s >> 32) as u32;
            t[n + 1] = 0;
        }
        // Conditional final subtraction brings t into [0, m).
        if t[n] != 0 || ge(&t[..n], &self.m) {
            sub_in_place(&mut t, &self.m);
        }
        t.truncate(n);
        t
    }

    /// Converts into Montgomery form: `x·R mod m` (requires `x < m`).
    pub fn to_mont(&self, x: &BigUint) -> Vec<u32> {
        self.mont_mul(&pad_limbs(x, self.m.len()), &self.r2)
    }

    /// Converts out of Montgomery form: `x·R⁻¹ mod m`.
    // Conventional crypto name: "from Montgomery form", not a constructor.
    #[allow(clippy::wrong_self_convention)]
    pub fn from_mont(&self, x: &[u32]) -> BigUint {
        let mut one = vec![0u32; self.m.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// `a·b mod m` through Montgomery form.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(&a.rem(&self.modulus()));
        let bm = self.to_mont(&b.rem(&self.modulus()));
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod m` by fixed 4-bit-window exponentiation over
    /// Montgomery products. Bit-exact with [`BigUint::modpow`].
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let m_big = self.modulus();
        if m_big.cmp_big(&BigUint::one()) == core::cmp::Ordering::Equal {
            return BigUint::zero();
        }
        let base_m = self.to_mont(&base.rem(&m_big));
        // table[w] = base^w in Montgomery form, w = 0..16.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        table.push(base_m.clone());
        for w in 2..16 {
            table.push(self.mont_mul(&table[w - 1], &base_m));
        }
        let nbits = exp.bits();
        let windows = nbits.div_ceil(4);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + b) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
            }
        }
        self.from_mont(&acc)
    }
}

impl BigUint {
    /// `self^exp mod m`, using Montgomery arithmetic when `m` is odd and
    /// the slow reference path otherwise. Bit-exact with
    /// [`BigUint::modpow`] in all cases.
    pub fn modpow_fast(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        match Montgomery::new(m) {
            Some(ctx) => ctx.modpow(self, exp),
            None => self.modpow(exp, m),
        }
    }
}

/// `x`'s limbs zero-padded to `n` (x must fit).
fn pad_limbs(x: &BigUint, n: usize) -> Vec<u32> {
    let mut v = x.limbs().to_vec();
    assert!(v.len() <= n, "operand wider than modulus");
    v.resize(n, 0);
    v
}

/// `a >= b` over equal-length little-endian limb slices.
fn ge(a: &[u32], b: &[u32]) -> bool {
    for i in (0..b.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `t -= m` over limb slices (`t` at least as long as `m`; no final
/// borrow may remain by caller contract).
fn sub_in_place(t: &mut [u32], m: &[u32]) {
    let mut borrow = 0i64;
    for i in 0..t.len() {
        let sub = if i < m.len() { m[i] as i64 } else { 0 };
        let mut d = t[i] as i64 - sub - borrow;
        if d < 0 {
            d += 1 << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        t[i] = d as u32;
    }
    debug_assert_eq!(borrow, 0, "montgomery subtraction underflow");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    /// Deterministic pseudo-random bytes (xorshift64*).
    fn rng(seed: u64) -> impl FnMut(usize) -> Vec<u8> {
        let mut s = seed | 1;
        move |n| {
            (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
                })
                .collect()
        }
    }

    #[test]
    fn rejects_even_and_zero_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&big(4096)).is_none());
        assert!(Montgomery::new(&big(3)).is_some());
    }

    #[test]
    fn n0_inverse_identity() {
        let ctx = Montgomery::new(&big(0x1_0000_0001)).unwrap();
        // n0 = -m[0]^{-1}: m[0]*(-n0) ≡ 1 (mod 2^32).
        assert_eq!(ctx.m[0].wrapping_mul(ctx.n0.wrapping_neg()), 1);
    }

    #[test]
    fn mul_mod_matches_reference() {
        let m = big(0xFFFF_FFFF_FFFF_FFC5); // largest 64-bit prime
        let ctx = Montgomery::new(&m).unwrap();
        let a = big(0x1234_5678_9ABC_DEF0);
        let b = big(0x0FED_CBA9_8765_4321);
        assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn modpow_matches_reference_small() {
        for (b, e, m) in [(5u64, 117u64, 19u64), (4, 13, 497), (2, 0, 7), (7, 1, 13)] {
            let (b, e, m) = (big(b), big(e), big(m));
            assert_eq!(
                Montgomery::new(&m).unwrap().modpow(&b, &e),
                b.modpow(&e, &m)
            );
        }
    }

    #[test]
    fn modpow_mod_one_is_zero() {
        let ctx = Montgomery::new(&BigUint::one()).unwrap();
        assert_eq!(ctx.modpow(&big(5), &big(3)), BigUint::zero());
    }

    #[test]
    fn modpow_fast_handles_even_modulus() {
        let (b, e, m) = (big(7), big(22), big(100));
        assert_eq!(b.modpow_fast(&e, &m), b.modpow(&e, &m));
    }

    #[test]
    fn modpow_matches_reference_wide_random() {
        let mut r = rng(0xC0FFEE);
        for bits in [64usize, 160, 256, 521, 1024, 2048] {
            let nbytes = bits / 8 + 1;
            let mut m = BigUint::from_bytes_be(&r(nbytes));
            if !m.is_odd() {
                m = m.add(&BigUint::one());
            }
            let base = BigUint::from_bytes_be(&r(nbytes + 3));
            let exp = BigUint::from_bytes_be(&r(16));
            assert_eq!(
                base.modpow_fast(&exp, &m),
                base.modpow(&exp, &m),
                "bits={bits}"
            );
        }
    }
}
