//! Canonical byte encoding — the shared little-endian, length-prefixed
//! wire form every hashed or MACed structure in the tree uses.
//!
//! Attestation evidence is only as strong as the bytes the hash and MAC
//! actually cover: if two distinct structures can serialize to the same
//! bytes (or one structure to two byte strings), chained hashes stop
//! identifying records. The helpers here make the canonical form a
//! library property instead of a per-call-site convention:
//!
//! - every integer is fixed-width little-endian,
//! - every variable-length field carries an explicit `u32` length prefix,
//! - decoding is total: any input yields `Ok` or a typed [`CanonError`],
//!   never a panic, and trailing bytes are rejected by
//!   [`Reader::finish`].
//!
//! The service snapshot codec and the wire codec predate this module and
//! keep their local encoders; new canonical structures (the evidence
//! chain, Merkle epochs, verifiable reports) build on this one.

/// Why a canonical decode failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CanonError {
    /// The byte stream ended before the structure did.
    Truncated,
    /// An enum/flag tag held an out-of-range value.
    BadTag {
        /// Which field the tag belongs to.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// A declared length exceeds the hard per-field bound (decoders must
    /// not allocate unbounded memory on hostile input).
    OversizedField,
    /// Bytes remained after the structure ended.
    TrailingBytes,
}

impl core::fmt::Display for CanonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CanonError::Truncated => write!(f, "canonical encoding truncated"),
            CanonError::BadTag { field, value } => {
                write!(f, "bad {field} tag {value} in canonical encoding")
            }
            CanonError::OversizedField => write!(f, "oversized field in canonical encoding"),
            CanonError::TrailingBytes => write!(f, "trailing bytes after canonical encoding"),
        }
    }
}

impl std::error::Error for CanonError {}

/// Hard bound on any single variable-length field (1 MiB). Canonical
/// structures in this tree are all far smaller; the bound exists so a
/// hostile length prefix cannot drive a huge allocation.
pub const MAX_FIELD_LEN: usize = 1 << 20;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a fixed-width byte array (no length prefix — the width is
/// part of the structure).
pub fn put_fixed<const N: usize>(out: &mut Vec<u8>, v: &[u8; N]) {
    out.extend_from_slice(v);
}

/// Appends a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len().min(u32::MAX as usize) as u32);
    out.extend_from_slice(&v[..v.len().min(u32::MAX as usize)]);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over a canonical encoding. Every accessor
/// returns a typed error instead of panicking, so decoders built on it
/// are total by construction.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a reader at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        let end = self.pos.checked_add(n).ok_or(CanonError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CanonError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CanonError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CanonError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CanonError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CanonError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a fixed-width byte array.
    pub fn fixed<const N: usize>(&mut self) -> Result<[u8; N], CanonError> {
        let b = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads a `u32`-length-prefixed byte string (bounded by
    /// [`MAX_FIELD_LEN`]).
    pub fn bytes(&mut self) -> Result<Vec<u8>, CanonError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CanonError::OversizedField);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CanonError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| CanonError::BadTag {
            field: "utf-8 string",
            value: 0,
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the structure consumed the input exactly.
    pub fn finish(self) -> Result<(), CanonError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CanonError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_fixed(&mut out, &[9u8; 32]);
        put_bytes(&mut out, b"payload");
        put_str(&mut out, "gpu-a");

        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.fixed::<32>().unwrap(), [9u8; 32]);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.str().unwrap(), "gpu-a");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        let mut r = Reader::new(&out[..5]);
        assert_eq!(r.u64(), Err(CanonError::Truncated));

        let mut r = Reader::new(&out);
        r.u32().unwrap();
        assert_eq!(r.finish(), Err(CanonError::TrailingBytes));
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX); // claims a 4 GiB field
        let mut r = Reader::new(&out);
        assert_eq!(r.bytes(), Err(CanonError::OversizedField));
    }

    #[test]
    fn non_utf8_string_is_an_error_not_a_panic() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE, 0xFD]);
        let mut r = Reader::new(&out);
        assert!(r.str().is_err());
    }
}
