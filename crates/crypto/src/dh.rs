//! Classic finite-field Diffie-Hellman (the paper's Eq. 1/5/8:
//! `v₀ = gᵃ mod p`, `k = gᵇ mod p`, `sk = g^{ab} mod p`).

use crate::{
    bignum::BigUint,
    montgomery::Montgomery,
    sha256::{sha256, Sha256},
    EntropySource,
};

/// A multiplicative MODP group `(p, g)`.
#[derive(Clone, Debug)]
pub struct DhGroup {
    /// Prime modulus.
    pub p: BigUint,
    /// Generator.
    pub g: BigUint,
    /// Private-exponent length in bytes.
    pub exponent_bytes: usize,
    /// Montgomery context for `p`, precomputed once per group. `None`
    /// only for degenerate even moduli (never a valid MODP prime).
    mont: Option<Montgomery>,
}

/// RFC 3526 group 14 (2048-bit MODP) prime, big-endian.
const MODP_2048_P: [u8; 256] = [
    0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xC9, 0x0F, 0xDA, 0xA2, 0x21, 0x68, 0xC2, 0x34,
    0xC4, 0xC6, 0x62, 0x8B, 0x80, 0xDC, 0x1C, 0xD1, 0x29, 0x02, 0x4E, 0x08, 0x8A, 0x67, 0xCC, 0x74,
    0x02, 0x0B, 0xBE, 0xA6, 0x3B, 0x13, 0x9B, 0x22, 0x51, 0x4A, 0x08, 0x79, 0x8E, 0x34, 0x04, 0xDD,
    0xEF, 0x95, 0x19, 0xB3, 0xCD, 0x3A, 0x43, 0x1B, 0x30, 0x2B, 0x0A, 0x6D, 0xF2, 0x5F, 0x14, 0x37,
    0x4F, 0xE1, 0x35, 0x6D, 0x6D, 0x51, 0xC2, 0x45, 0xE4, 0x85, 0xB5, 0x76, 0x62, 0x5E, 0x7E, 0xC6,
    0xF4, 0x4C, 0x42, 0xE9, 0xA6, 0x37, 0xED, 0x6B, 0x0B, 0xFF, 0x5C, 0xB6, 0xF4, 0x06, 0xB7, 0xED,
    0xEE, 0x38, 0x6B, 0xFB, 0x5A, 0x89, 0x9F, 0xA5, 0xAE, 0x9F, 0x24, 0x11, 0x7C, 0x4B, 0x1F, 0xE6,
    0x49, 0x28, 0x66, 0x51, 0xEC, 0xE4, 0x5B, 0x3D, 0xC2, 0x00, 0x7C, 0xB8, 0xA1, 0x63, 0xBF, 0x05,
    0x98, 0xDA, 0x48, 0x36, 0x1C, 0x55, 0xD3, 0x9A, 0x69, 0x16, 0x3F, 0xA8, 0xFD, 0x24, 0xCF, 0x5F,
    0x83, 0x65, 0x5D, 0x23, 0xDC, 0xA3, 0xAD, 0x96, 0x1C, 0x62, 0xF3, 0x56, 0x20, 0x85, 0x52, 0xBB,
    0x9E, 0xD5, 0x29, 0x07, 0x70, 0x96, 0x96, 0x6D, 0x67, 0x0C, 0x35, 0x4E, 0x4A, 0xBC, 0x98, 0x04,
    0xF1, 0x74, 0x6C, 0x08, 0xCA, 0x18, 0x21, 0x7C, 0x32, 0x90, 0x5E, 0x46, 0x2E, 0x36, 0xCE, 0x3B,
    0xE3, 0x9E, 0x77, 0x2C, 0x18, 0x0E, 0x86, 0x03, 0x9B, 0x27, 0x83, 0xA2, 0xEC, 0x07, 0xA2, 0x8F,
    0xB5, 0xC5, 0x5D, 0xF0, 0x6F, 0x4C, 0x52, 0xC9, 0xDE, 0x2B, 0xCB, 0xF6, 0x95, 0x58, 0x17, 0x18,
    0x39, 0x95, 0x49, 0x7C, 0xEA, 0x95, 0x6A, 0xE5, 0x15, 0xD2, 0x26, 0x18, 0x98, 0xFA, 0x05, 0x10,
    0x15, 0x72, 0x8E, 0x5A, 0x8A, 0xAC, 0xAA, 0x68, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
];

impl DhGroup {
    /// RFC 3526 group 14: 2048-bit MODP, generator 2 — the production
    /// group.
    pub fn modp_2048() -> DhGroup {
        DhGroup::from_parts(
            BigUint::from_bytes_be(&MODP_2048_P),
            BigUint::from_u64(2),
            32, // 256-bit exponents
        )
    }

    /// A small (127-bit Mersenne prime `2¹²⁷ − 1`) group for fast tests.
    /// Functionally identical protocol flow; no security claim.
    pub fn test_group() -> DhGroup {
        let p = BigUint::from_bytes_be(&((1u128 << 127) - 1).to_be_bytes());
        DhGroup::from_parts(p, BigUint::from_u64(3), 16)
    }

    /// Builds a group from explicit parameters, precomputing the
    /// Montgomery context for the modulus.
    pub fn from_parts(p: BigUint, g: BigUint, exponent_bytes: usize) -> DhGroup {
        let mont = Montgomery::new(&p);
        DhGroup {
            p,
            g,
            exponent_bytes,
            mont,
        }
    }

    /// `base^exp mod p` on the group's hot path: the precomputed
    /// Montgomery context when it still matches `p`, the reference
    /// square-and-multiply otherwise (even modulus, or a caller that
    /// mutated the public `p` field after construction).
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match &self.mont {
            Some(ctx) if ctx.modulus_matches(&self.p) => ctx.modpow(base, exp),
            _ => base.modpow_fast(exp, &self.p),
        }
    }

    /// Generates a key pair from the entropy source.
    pub fn generate(&self, entropy: &mut dyn EntropySource) -> DhKeyPair {
        // Sample until 2 <= private < p (rejection sampling at byte
        // granularity; at most a couple of iterations).
        let private = loop {
            let bytes = entropy.bytes(self.exponent_bytes);
            let candidate = BigUint::from_bytes_be(&bytes);
            if candidate.cmp_big(&BigUint::from_u64(2)) != std::cmp::Ordering::Less
                && candidate.cmp_big(&self.p) == std::cmp::Ordering::Less
            {
                break candidate;
            }
        };
        let public = self.modpow(&self.g, &private);
        DhKeyPair { private, public }
    }

    /// Computes the shared secret `peer_public ^ private mod p`.
    pub fn shared_secret(&self, keys: &DhKeyPair, peer_public: &BigUint) -> BigUint {
        self.modpow(peer_public, &keys.private)
    }

    /// Derives a 128-bit symmetric key from the shared secret:
    /// `SHA-256("sage-kdf" ‖ secret)[..16]`.
    pub fn derive_key(&self, shared: &BigUint) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(b"sage-kdf");
        h.update(&shared.to_bytes_be());
        let digest = h.finalize();
        let mut key = [0u8; 16];
        key.copy_from_slice(&digest[..16]);
        key
    }

    /// Validates a peer public key: `1 < y < p - 1`.
    pub fn valid_public(&self, y: &BigUint) -> bool {
        use std::cmp::Ordering::Less;
        let one = BigUint::one();
        let p_minus_1 = self.p.sub(&one);
        one.cmp_big(y) == Less && y.cmp_big(&p_minus_1) == Less
    }
}

/// A Diffie-Hellman key pair.
#[derive(Clone, Debug)]
pub struct DhKeyPair {
    /// Secret exponent.
    pub private: BigUint,
    /// Public value `g^private mod p`.
    pub public: BigUint,
}

/// Hashes a DH public value for transcript binding.
pub fn public_digest(y: &BigUint) -> [u8; 32] {
    sha256(&y.to_bytes_be())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingEntropy(u8);
    impl EntropySource for CountingEntropy {
        fn fill(&mut self, buf: &mut [u8]) {
            for b in buf {
                self.0 = self.0.wrapping_mul(181).wrapping_add(97);
                *b = self.0;
            }
        }
    }

    #[test]
    fn exchange_agrees() {
        let g = DhGroup::test_group();
        let mut e1 = CountingEntropy(1);
        let mut e2 = CountingEntropy(99);
        let alice = g.generate(&mut e1);
        let bob = g.generate(&mut e2);
        let s1 = g.shared_secret(&alice, &bob.public);
        let s2 = g.shared_secret(&bob, &alice.public);
        assert_eq!(s1, s2);
        assert_eq!(g.derive_key(&s1), g.derive_key(&s2));
    }

    #[test]
    fn distinct_entropy_distinct_keys() {
        let g = DhGroup::test_group();
        let a = g.generate(&mut CountingEntropy(1));
        let b = g.generate(&mut CountingEntropy(2));
        assert_ne!(a.public.to_bytes_be(), b.public.to_bytes_be());
    }

    #[test]
    fn public_validation() {
        let g = DhGroup::test_group();
        assert!(!g.valid_public(&BigUint::one()));
        assert!(!g.valid_public(&g.p.sub(&BigUint::one())));
        assert!(!g.valid_public(&g.p));
        let kp = g.generate(&mut CountingEntropy(7));
        assert!(g.valid_public(&kp.public));
    }

    #[test]
    fn modp_2048_structure() {
        // Structural sanity of the RFC 3526 constant: 2048 bits, odd,
        // top and bottom 64 bits all ones.
        let g = DhGroup::modp_2048();
        assert_eq!(g.p.bits(), 2048);
        let bytes = g.p.to_bytes_be();
        assert_eq!(&bytes[..8], &[0xFF; 8]);
        assert_eq!(&bytes[bytes.len() - 8..], &[0xFF; 8]);
    }

    #[test]
    fn modp_2048_exchange() {
        // Was ignored as "slow (~seconds)" under the schoolbook path;
        // Montgomery exponentiation brings the full exchange to
        // milliseconds, so it now runs in tier-1.
        let g = DhGroup::modp_2048();
        let alice = g.generate(&mut CountingEntropy(1));
        let bob = g.generate(&mut CountingEntropy(2));
        assert_eq!(
            g.shared_secret(&alice, &bob.public),
            g.shared_secret(&bob, &alice.public)
        );
    }

    #[test]
    fn group_modpow_matches_reference_oracle() {
        // The group's Montgomery fast path must be bit-exact with the
        // retained square-and-multiply reference.
        let g = DhGroup::test_group();
        let base = BigUint::from_u64(0xDEAD_BEEF_0BAD_F00D);
        let exp = BigUint::from_u64(0x1234_5678_9ABC);
        assert_eq!(g.modpow(&base, &exp), base.modpow(&exp, &g.p));
    }

    #[test]
    fn mutated_modulus_falls_back_safely() {
        // The public `p` field can be reassigned; the stale Montgomery
        // context must not be used.
        let mut g = DhGroup::test_group();
        g.p = BigUint::from_u64(1_000_003);
        let base = BigUint::from_u64(3);
        let exp = BigUint::from_u64(200);
        assert_eq!(g.modpow(&base, &exp), base.modpow(&exp, &g.p));
    }

    #[test]
    fn derive_key_is_stable_and_binding() {
        let g = DhGroup::test_group();
        let k1 = g.derive_key(&BigUint::from_u64(12345));
        let k2 = g.derive_key(&BigUint::from_u64(12345));
        let k3 = g.derive_key(&BigUint::from_u64(12346));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }
}
