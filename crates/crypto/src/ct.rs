//! Constant-time comparison.

/// Compares two byte strings in time independent of where they differ.
///
/// Returns `false` immediately only on length mismatch (lengths are
/// public in every use in this workspace: MAC tags, digests, checksums).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    // Reduce without branching on the value.
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_unequal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00", b"\x01"));
    }

    #[test]
    fn first_and_last_byte_differences() {
        let a = [0u8; 64];
        let mut b = a;
        b[0] = 1;
        assert!(!ct_eq(&a, &b));
        let mut c = a;
        c[63] = 1;
        assert!(!ct_eq(&a, &c));
    }
}
