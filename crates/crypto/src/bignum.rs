//! Minimal arbitrary-precision unsigned integers for Diffie-Hellman.
//!
//! Little-endian `u32` limbs; schoolbook multiplication and shift-subtract
//! reduction — deliberately simple and auditable. Performance is adequate
//! for the handful of modular exponentiations per attestation session.

use core::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (canonical form).
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> BigUint {
        let mut b = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        b.normalize();
        b
    }

    /// Parses big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut v = 0u32;
            for &b in chunk {
                v = (v << 8) | b as u32;
            }
            limbs.push(v);
        }
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// Serializes to big-endian bytes (minimal length; zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes (left-padded).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// The little-endian `u32` limbs (canonical: no trailing zeros).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Builds a value from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u32>) -> BigUint {
        let mut b = BigUint { limbs };
        b.normalize();
        b
    }

    /// `true` if the lowest bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    /// Bit `i` (little-endian numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        self.limbs
            .get(limb)
            .is_some_and(|&l| l & (1 << (i % 32)) != 0)
    }

    /// Comparison.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            limbs.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// `self - other` (saturating at zero is a bug; callers must ensure
    /// `self >= other`).
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "bignum subtraction underflow"
        );
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = limbs[i + j] as u64 + a as u64 * b as u64 + carry;
                limbs[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = limbs[k] as u64 + carry;
                limbs[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = n % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Right shift by one bit, in place.
    pub fn shr1_mut(&mut self) {
        let mut carry = 0u32;
        for l in self.limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 31);
            carry = new_carry;
        }
        self.normalize();
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulo by zero");
        if self.cmp_big(m) == Ordering::Less {
            return self.clone();
        }
        let shift = self.bits() - m.bits();
        let mut d = m.shl(shift);
        let mut a = self.clone();
        for _ in 0..=shift {
            if a.cmp_big(&d) != Ordering::Less {
                a = a.sub(&d);
            }
            d.shr1_mut();
        }
        a
    }

    /// `self^exp mod m` (left-to-right square and multiply).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulo by zero");
        if m.cmp_big(&BigUint::one()) == Ordering::Equal {
            return BigUint::zero();
        }
        let base = self.rem(m);
        let mut result = BigUint::one();
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            result = result.mul(&result).rem(m);
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn bytes_round_trip() {
        let b = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(b.to_bytes_be(), vec![0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]).to_bytes_be(), vec![7]);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn padded_serialization() {
        assert_eq!(big(0x0102).to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_too_small_panics() {
        let _ = big(0x01_0203_0405).to_bytes_be_padded(4);
    }

    #[test]
    fn arithmetic_small_values() {
        assert_eq!(big(3).add(&big(4)), big(7));
        assert_eq!(big(1 << 33).sub(&big(1)), BigUint::from_u64((1 << 33) - 1));
        assert_eq!(big(123456789).mul(&big(987654321)), {
            BigUint::from_bytes_be(&(123456789u128 * 987654321).to_be_bytes())
        });
        assert_eq!(big(1000).rem(&big(37)), big(1000 % 37));
    }

    #[test]
    fn carry_propagation() {
        let max = BigUint::from_u64(u64::MAX);
        let r = max.add(&BigUint::one());
        assert_eq!(r.bits(), 65);
        assert_eq!(r.sub(&BigUint::one()), max);
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(100).bits(), 101);
        let mut v = big(4);
        v.shr1_mut();
        assert_eq!(v, big(2));
        assert_eq!(big(5).shl(35), BigUint::from_u64(5u64 << 35));
        assert_eq!(big(5).shl(64), big(5).shl(32).shl(32));
    }

    #[test]
    fn modpow_small() {
        // 5^117 mod 19 = 1 (since ord(5) mod 19 divides 9; 5^9=1 mod 19,
        // 117 = 13*9).
        assert_eq!(big(5).modpow(&big(117), &big(19)), big(1));
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        assert_eq!(big(2).modpow(&big(0), &big(7)), big(1));
        assert_eq!(big(2).modpow(&big(10), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modpow_matches_u128_reference() {
        let cases = [
            (3u128, 200u128, 1_000_003u128),
            (65537, 1234, 4_294_967_291),
            (2, 127, (1 << 61) - 1),
        ];
        for (b, e, m) in cases {
            let mut expect = 1u128;
            let mut base = b % m;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    expect = expect * base % m;
                }
                base = base * base % m;
                exp >>= 1;
            }
            let r = BigUint::from_bytes_be(&b.to_be_bytes()).modpow(
                &BigUint::from_bytes_be(&e.to_be_bytes()),
                &BigUint::from_bytes_be(&m.to_be_bytes()),
            );
            assert_eq!(r, BigUint::from_bytes_be(&expect.to_be_bytes()));
        }
    }

    #[test]
    fn rem_large_operands() {
        let a = BigUint::from_bytes_be(&[0xFF; 40]);
        let m = BigUint::from_bytes_be(&[0x01, 0x00, 0x00, 0x00, 0x01]);
        let r = a.rem(&m);
        assert!(r.cmp_big(&m) == Ordering::Less);
        // (a - r) divisible by m: check via multiply-back scan.
        let q_times_m_plus_r_matches = {
            // Verify a ≡ r (mod m) by computing (a - r) mod m == 0.
            a.sub(&r).rem(&m).is_zero()
        };
        assert!(q_times_m_plus_r_matches);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }
}
