//! From-scratch cryptographic primitives for the SAGE reproduction.
//!
//! The paper's implementation uses the Intel SGX SDK `tcrypto` library and
//! cuRAND; the offline crate set here contains no cryptography, so the
//! primitives the protocol needs are implemented in-repo and pinned to
//! published test vectors:
//!
//! - [`sha256`](mod@sha256) — FIPS 180-4 SHA-256 (protocol hash `H`, user-kernel
//!   measurement, hash chains),
//! - [`aes`] — FIPS 197 AES-128 block cipher,
//! - [`ctr`] — NIST SP 800-38A AES-CTR (challenge DRBG, secure channel
//!   encryption),
//! - [`cmac`] — RFC 4493 AES-CMAC (protocol MAC, secure channel
//!   authentication),
//! - [`bignum`]/[`dh`] — big-integer modular exponentiation and classic
//!   MODP Diffie-Hellman (RFC 3526 group 14, plus a small test group),
//! - [`chain`] — Guy-Fawkes-style hash chains (SAKE's `v₂/v₁/v₀`,
//!   `w₂/w₁/w₀`),
//! - [`canon`] — canonical little-endian encoding helpers for hashed
//!   and MACed structures (the evidence layer's byte discipline),
//! - [`ct`] — constant-time comparison.
//!
//! None of this is intended for production use outside the reproduction;
//! it is here so the workspace is self-contained and auditable.

pub mod aes;
pub mod bignum;
pub mod canon;
pub mod chain;
pub mod cmac;
pub mod ct;
pub mod ctr;
pub mod dh;
pub mod montgomery;
pub mod sha256;

pub use aes::Aes128;
pub use bignum::BigUint;
pub use canon::CanonError;
pub use chain::HashChain;
pub use cmac::cmac_aes128;
pub use ct::ct_eq;
pub use ctr::AesCtr;
pub use dh::{DhGroup, DhKeyPair};
pub use montgomery::Montgomery;
pub use sha256::{sha256, Sha256};

/// A source of random bytes, injected by callers (the enclave DRBG or the
/// race-condition TRNG). `Send` so device-side state holding a boxed
/// source can migrate across the service's worker threads.
pub trait EntropySource: Send {
    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Convenience: returns `n` random bytes.
    fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill(&mut v);
        v
    }
}

impl<F: FnMut(&mut [u8]) + Send> EntropySource for F {
    fn fill(&mut self, buf: &mut [u8]) {
        self(buf)
    }
}
