//! AES-CMAC (RFC 4493) — the protocol MAC of the modified SAKE exchange
//! (paper §5.2.3) and of the authenticated data channel (§5.2.4).

use crate::aes::Aes128;

/// Left-shift a 16-byte block by one bit.
fn shl1(b: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        out[i] = (b[i] << 1) | carry;
        carry = b[i] >> 7;
    }
    out
}

fn subkeys(cipher: &Aes128) -> ([u8; 16], [u8; 16]) {
    const RB: u8 = 0x87;
    let l = cipher.encrypt(&[0u8; 16]);
    let mut k1 = shl1(&l);
    if l[0] & 0x80 != 0 {
        k1[15] ^= RB;
    }
    let mut k2 = shl1(&k1);
    if k1[0] & 0x80 != 0 {
        k2[15] ^= RB;
    }
    (k1, k2)
}

/// Computes AES-CMAC of `msg` under `key`.
pub fn cmac_aes128(key: &[u8; 16], msg: &[u8]) -> [u8; 16] {
    let cipher = Aes128::new(key);
    let (k1, k2) = subkeys(&cipher);

    let n = msg.len().div_ceil(16).max(1);
    let complete = msg.len() == n * 16;

    let mut x = [0u8; 16];
    for block_idx in 0..n - 1 {
        for i in 0..16 {
            x[i] ^= msg[block_idx * 16 + i];
        }
        x = cipher.encrypt(&x);
    }

    let mut last = [0u8; 16];
    let tail = &msg[(n - 1) * 16..];
    if complete {
        last[..16].copy_from_slice(tail);
        for i in 0..16 {
            last[i] ^= k1[i];
        }
    } else {
        last[..tail.len()].copy_from_slice(tail);
        last[tail.len()] = 0x80;
        for i in 0..16 {
            last[i] ^= k2[i];
        }
    }
    for i in 0..16 {
        x[i] ^= last[i];
    }
    cipher.encrypt(&x)
}

/// Verifies a CMAC tag in constant time.
pub fn cmac_verify(key: &[u8; 16], msg: &[u8], tag: &[u8]) -> bool {
    let computed = cmac_aes128(key, msg);
    crate::ct::ct_eq(&computed, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    const KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";

    #[test]
    fn rfc4493_example_1_empty() {
        let key: [u8; 16] = unhex(KEY).try_into().unwrap();
        assert_eq!(
            cmac_aes128(&key, b"").to_vec(),
            unhex("bb1d6929e95937287fa37d129b756746")
        );
    }

    #[test]
    fn rfc4493_example_2_16_bytes() {
        let key: [u8; 16] = unhex(KEY).try_into().unwrap();
        let msg = unhex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            cmac_aes128(&key, &msg).to_vec(),
            unhex("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let key: [u8; 16] = unhex(KEY).try_into().unwrap();
        let msg = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411",
        );
        assert_eq!(
            cmac_aes128(&key, &msg).to_vec(),
            unhex("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let key: [u8; 16] = unhex(KEY).try_into().unwrap();
        let msg = unhex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        assert_eq!(
            cmac_aes128(&key, &msg).to_vec(),
            unhex("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_rejects_tampering() {
        let key = [5u8; 16];
        let tag = cmac_aes128(&key, b"hello");
        assert!(cmac_verify(&key, b"hello", &tag));
        assert!(!cmac_verify(&key, b"hellp", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!cmac_verify(&key, b"hello", &bad));
        assert!(!cmac_verify(&key, b"hello", &tag[..15]));
    }
}
