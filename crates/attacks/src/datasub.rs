//! Data-substitution attacks (paper §8): the adversary modifies VF
//! memory and tries to serve reads of the modified locations from a
//! stashed pristine copy.
//!
//! Because the traversal is pseudo-random and challenge-driven, the
//! adversary cannot predict which reads touch modified words: either the
//! modification is read (wrong checksum) or every read must be monitored
//! (per-read overhead → timing detection). Both halves are demonstrated.

use sage::{GpuSession, SageError};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_vf::{expected_checksum, VfParams};

use crate::Detection;

/// Mounts the naive variant: tamper one static-region word over MMIO and
/// do nothing else. Returns the detection outcome of the next
/// verification round.
pub fn naive_tamper(
    cfg: &DeviceConfig,
    params: &VfParams,
    offset_in_fill: u32,
) -> Result<Detection, SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0xDA7A)?;
    let expected = {
        let ch = challenge(params.grid_blocks);
        expected_checksum(session.build(), &ch)
    };
    let layout = session.build().layout;
    // Adversary MMIO write into the checksummed fill area.
    let addr = layout.base + layout.fill_off + offset_in_fill;
    let mut byte = session.dev.peek(addr, 1)?;
    byte[0] ^= 0x01;
    session.dev.poke(addr, &byte)?;

    let ch = challenge(params.grid_blocks);
    let threshold = u64::MAX; // value detection only in this variant
    Ok(crate::classify_round(
        &mut session,
        &ch,
        expected,
        threshold,
    ))
}

/// Models the "perfect monitor" variant: the adversary redirects every
/// read of modified words, which costs extra instructions per traversal
/// step. The cost is modelled as injected instructions and compared
/// against a genuine calibration — the timing side of the defence.
pub fn monitored_tamper_cost(
    cfg: &DeviceConfig,
    params: &VfParams,
    monitor_insns_per_pass: usize,
    runs: usize,
) -> Result<crate::nop::NopExperiment, SageError> {
    crate::nop::run_nop_experiment(cfg, params, monitor_insns_per_pass, runs)
}

fn challenge(blocks: u32) -> Vec<[u8; 16]> {
    (0..blocks).map(|b| [b as u8 ^ 0x3C; 16]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmonitored_tamper_changes_checksum() {
        let mut params = VfParams::test_tiny();
        // Enough accesses that the tampered word is read almost surely:
        // tamper 64 words to bring the miss probability to ~(1-64/4096)^A.
        params.iterations = 40;
        let cfg = DeviceConfig::sim_tiny();
        // Tamper several spread-out words by running the naive attack on
        // one and checking detection; with 40 iterations × 4 steps × 128
        // threads ≈ 20k accesses over 4k words, a single word is hit with
        // p ≈ 1 - e^-5.
        let det = naive_tamper(&cfg, &params, 256).unwrap();
        assert_eq!(det, Detection::WrongChecksum);
    }

    #[test]
    fn monitoring_overhead_is_detected_by_timing() {
        let (cfg, params) = crate::nop::timing_test_setup();
        let exp = monitored_tamper_cost(&cfg, &params, 2, 5).unwrap();
        assert!(exp.always_detected, "{exp:?}");
    }
}
