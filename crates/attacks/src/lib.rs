//! The SAGE adversary library: every attack class from the paper's
//! security analysis (§8), implemented against the simulated device so
//! that detection — or the documented residual risk — is demonstrated by
//! executable tests and the robustness benchmarks.
//!
//! | Paper attack (§8)            | Module                |
//! |------------------------------|-----------------------|
//! | instruction injection (exp 2)| [`nop`]               |
//! | data substitution            | [`datasub`]           |
//! | memory copy (b)(c)(d), Fig. 7| [`memcopy`]           |
//! | resource takeover            | [`takeover`]          |
//! | proxy attacks                | [`proxy`]             |
//! | pre-computation / replay     | [`forge`]             |
//! | LEPC constant substitution   | [`lepc`]              |
//!
//! Each attack operates through capabilities the threat model grants the
//! adversary (§3.3): direct MMIO access to device memory
//! ([`sage_gpu_sim::Device::poke`]), a PCIe interposer
//! ([`sage_gpu_sim::BusTap`]), malicious kernel launches, and full
//! control of the untrusted host software.

pub mod datasub;
pub mod forge;
pub mod lepc;
pub mod memcopy;
pub mod nop;
pub mod proxy;
pub mod takeover;

use sage::GpuSession;

/// Outcome of mounting an attack against a verification round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Detection {
    /// The checksum value did not match the verifier's replay.
    WrongChecksum,
    /// The checksum was correct but arrived after the threshold.
    TooSlow,
    /// The attack was not detected (documented residual risk only).
    Undetected,
}

/// Runs one verification round against a (possibly tampered) session and
/// classifies the outcome against `expected` and `threshold`.
pub fn classify_round(
    session: &mut GpuSession,
    challenges: &[[u8; 16]],
    expected: [u32; 8],
    threshold: u64,
) -> Detection {
    match session.run_checksum(challenges) {
        Err(_) => Detection::WrongChecksum, // faulting device = failed attestation
        Ok((got, measured)) => {
            if got != expected {
                Detection::WrongChecksum
            } else if measured > threshold {
                Detection::TooSlow
            } else {
                Detection::Undetected
            }
        }
    }
}
