//! Proxy attacks (paper §8): the adversary forwards the challenge to a
//! different (possibly faster) GPU and relays the answer.
//!
//! A remote proxy pays the network round trip on every exchange; the
//! verifier defeats it by tuning the iteration count so the detection
//! margin (`2.5σ`) is smaller than any plausible network latency. A
//! faster GPU can only win if its compute advantage exceeds that round
//! trip — the crossover this module measures.

use sage::{GpuSession, SageError};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_vf::{expected_checksum, VfParams};

use crate::Detection;

/// Result of a proxy attempt.
#[derive(Clone, Copy, Debug)]
pub struct ProxyOutcome {
    /// Detection verdict.
    pub detection: Detection,
    /// Cycles measured by the verifier (proxy compute + network).
    pub measured: u64,
    /// The verifier threshold.
    pub threshold: u64,
}

/// Mounts a proxy attack: calibrate on the genuine device, then answer a
/// round from a proxy device (`proxy_cfg`) across `network_latency`
/// cycles each way.
pub fn proxy_attack(
    genuine_cfg: &DeviceConfig,
    proxy_cfg: &DeviceConfig,
    params: &VfParams,
    network_latency: u64,
) -> Result<ProxyOutcome, SageError> {
    let ch: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| [b as u8 ^ 0x99; 16])
        .collect();

    // Calibration on the genuine device.
    let dev = Device::new(genuine_cfg.clone());
    let mut genuine = GpuSession::install(dev, params, 0x9409)?;
    let expected = expected_checksum(genuine.build(), &ch);
    let mut samples = Vec::new();
    for _ in 0..8 {
        let (_, t) = genuine.run_checksum(&ch)?;
        samples.push(t);
    }
    let threshold = sage::Calibration::from_samples(&samples).threshold();

    // The proxy computes the genuine answer on its own hardware.
    let dev = Device::new(proxy_cfg.clone());
    let mut proxy = GpuSession::install(dev, params, 0x9409)?;
    let (got, proxy_cycles) = proxy.run_checksum(&ch)?;
    let measured = proxy_cycles + 2 * network_latency;

    let detection = if got != expected {
        Detection::WrongChecksum
    } else if measured > threshold {
        Detection::TooSlow
    } else {
        Detection::Undetected
    };
    Ok(ProxyOutcome {
        detection,
        measured,
        threshold,
    })
}

/// A "faster GPU" configuration: same architecture, 25% lower memory and
/// fetch latencies (an optimistic bound for one hardware generation).
pub fn faster_gpu(base: &DeviceConfig) -> DeviceConfig {
    let mut cfg = base.clone();
    cfg.lat.gmem_min = cfg.lat.gmem_min * 3 / 4;
    cfg.lat.gmem_jitter = cfg.lat.gmem_jitter * 3 / 4;
    cfg.lat.ifetch_mem = cfg.lat.ifetch_mem * 3 / 4;
    cfg.lat.smem = cfg.lat.smem * 3 / 4;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> VfParams {
        let mut p = VfParams::test_tiny();
        p.iterations = 30;
        p
    }

    #[test]
    fn same_speed_proxy_is_caught_by_network_latency() {
        let cfg = DeviceConfig::sim_tiny();
        // A datacenter round trip (~50 µs ≈ 70k cycles at 1.41 GHz) is
        // far above the jitter margin.
        let out = proxy_attack(&cfg, &cfg, &params(), 70_000).unwrap();
        assert_eq!(out.detection, Detection::TooSlow, "{out:?}");
    }

    #[test]
    fn faster_proxy_with_tiny_latency_may_succeed() {
        // The cautionary half of the paper's argument: if the network is
        // faster than the compute advantage margin, a faster GPU slips
        // under the threshold — which is why iteration counts must be
        // tuned so the threshold is tighter than any real latency.
        let cfg = DeviceConfig::sim_tiny();
        let out = proxy_attack(&cfg, &faster_gpu(&cfg), &params(), 0).unwrap();
        assert_eq!(out.detection, Detection::Undetected, "{out:?}");
    }

    #[test]
    fn faster_proxy_still_caught_beyond_real_latency() {
        let cfg = DeviceConfig::sim_tiny();
        let out = proxy_attack(&cfg, &faster_gpu(&cfg), &params(), 70_000).unwrap();
        assert_eq!(out.detection, Detection::TooSlow, "{out:?}");
    }
}
