//! The LEPC constant-substitution argument (paper §5.2.2).
//!
//! Why does SAGE use self-modifying code instead of simply folding the
//! program counter (`LEPC`) into the checksum? Because an adversary who
//! relocates the code can replace the `LEPC` with a `MOV` of the
//! original PC as an immediate — same register result, same instruction
//! count, zero overhead. This module demonstrates that equivalence
//! executably.

#[cfg(test)]
use sage_gpu_sim::DeviceConfig;
use sage_gpu_sim::{Device, LaunchParams, SimError};
use sage_isa::{CtrlInfo, Operand, Program, ProgramBuilder, Reg};

/// Builds a toy "PC-including checksum": loads the PC at a known point
/// and folds it into a running value, storing the result.
pub fn pc_checksum_kernel(out_addr: u32, use_lepc: bool, forged_pc: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(1), Operand::Imm(0x1234_5678));
    if use_lepc {
        b.ctrl(CtrlInfo::stall(4));
        b.lepc(Reg(2));
    } else {
        // The adversary's substitution: a constant with the PC value the
        // genuine code would have observed.
        b.ctrl(CtrlInfo::stall(4));
        b.mov(Reg(2), Operand::Imm(forged_pc));
    }
    b.ctrl(CtrlInfo::stall(4));
    b.imad(Reg(1), Reg(1), Operand::Imm(0x9E37_79B9), Reg(2));
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(out_addr));
    b.ctrl(CtrlInfo::stall(4));
    b.stg(Reg(3), 0, Reg(1));
    b.exit();
    b.build().expect("no labels")
}

/// Runs a kernel image at `base` and returns (result word, cycles).
pub fn run_at(
    dev: &mut Device,
    prog: &Program,
    base: u32,
    out_addr: u32,
) -> Result<(u32, u64), SimError> {
    let mut prog = prog.clone();
    prog.relocate(base);
    dev.poke(base, &prog.encode())?;
    let ctx = dev.create_context();
    let (report, _) = dev.run_single(LaunchParams {
        ctx,
        entry_pc: base,
        grid_dim: 1,
        block_dim: 32,
        regs_per_thread: 8,
        smem_bytes: 0,
        params: vec![],
    })?;
    let raw = dev.memcpy_d2h(out_addr, 4)?;
    Ok((
        u32::from_le_bytes(raw.try_into().expect("4 bytes")),
        report.completion_cycle,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lepc_reads_the_relocated_pc() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let out = dev.alloc(4).unwrap();
        let base = dev.alloc(1024).unwrap();
        let genuine = pc_checksum_kernel(out, true, 0);
        let (v1, _) = run_at(&mut dev, &genuine, base, out).unwrap();
        // Run the same code at a different base: the PC-derived value
        // changes — LEPC does detect naive relocation.
        let base2 = dev.alloc(1024).unwrap();
        let (v2, _) = run_at(&mut dev, &genuine, base2, out).unwrap();
        assert_ne!(v1, v2);
    }

    #[test]
    fn constant_substitution_forges_lepc_exactly() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let out = dev.alloc(4).unwrap();
        let base = dev.alloc(1024).unwrap();
        let genuine = pc_checksum_kernel(out, true, 0);
        let (honest_value, honest_cycles) = run_at(&mut dev, &genuine, base, out).unwrap();

        // Adversary relocates the code but substitutes the LEPC with the
        // ORIGINAL pc value (base + 16, the second instruction).
        let base2 = dev.alloc(1024).unwrap();
        let forged = pc_checksum_kernel(out, false, base + 16);
        let (forged_value, forged_cycles) = run_at(&mut dev, &forged, base2, out).unwrap();

        assert_eq!(forged_value, honest_value, "value forged perfectly");
        // Same instruction count and schedule: no timing overhead either.
        let diff = honest_cycles.abs_diff(forged_cycles);
        assert!(
            diff <= honest_cycles / 10,
            "no detectable overhead: {honest_cycles} vs {forged_cycles}"
        );
    }
}
