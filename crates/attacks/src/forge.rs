//! Pre-computation, replay and result-forging attacks (paper §8).
//!
//! The checksum depends on an unpredictable fresh challenge, so recorded
//! answers are worthless and intermediate values cannot be precomputed.
//! The adversary here sits on the PCIe bus and replays the previous
//! round's result for every later round.

use sage::{GpuSession, SageError};
use sage_gpu_sim::{BusTap, Device, DeviceConfig};
use sage_vf::{expected_checksum, VfParams};

use crate::Detection;

/// A bus tap that records the first device-to-host transfer from the
/// result area, then substitutes it into every later one.
pub struct ReplayTap {
    result_addr: u32,
    recorded: Option<Vec<u8>>,
    /// Number of readbacks substituted.
    pub replays: u32,
}

impl ReplayTap {
    /// Creates a tap for the VF's result area.
    pub fn new(result_addr: u32) -> ReplayTap {
        ReplayTap {
            result_addr,
            recorded: None,
            replays: 0,
        }
    }
}

impl BusTap for ReplayTap {
    fn on_d2h(&mut self, addr: u32, data: &mut Vec<u8>) {
        if addr != self.result_addr {
            return;
        }
        match &self.recorded {
            None => self.recorded = Some(data.clone()),
            Some(old) => {
                *data = old.clone();
                self.replays += 1;
            }
        }
    }
}

/// Mounts the replay attack over `rounds` fresh-challenge rounds; returns
/// the per-round detections (round 0 passes — it is the recording pass).
pub fn replay_attack(
    cfg: &DeviceConfig,
    params: &VfParams,
    rounds: usize,
) -> Result<Vec<Detection>, SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0x4E94)?;
    let result_addr = session.build().layout.result_addr();
    session
        .dev
        .install_bus_tap(Box::new(ReplayTap::new(result_addr)));

    let mut outcomes = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let ch: Vec<[u8; 16]> = (0..params.grid_blocks)
            .map(|b| [(round as u8) ^ (b as u8) ^ 0x17; 16])
            .collect();
        let expected = expected_checksum(session.build(), &ch);
        outcomes.push(crate::classify_round(&mut session, &ch, expected, u64::MAX));
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replayed_results_fail_fresh_challenges() {
        let params = VfParams::test_tiny();
        let outcomes = replay_attack(&DeviceConfig::sim_tiny(), &params, 4).unwrap();
        // Round 0 is recorded (honest), every later round replays a stale
        // answer against a fresh challenge.
        assert_eq!(outcomes[0], Detection::Undetected);
        for (i, o) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(*o, Detection::WrongChecksum, "round {i}");
        }
    }

    #[test]
    fn same_challenge_replay_would_pass() {
        // The dual: if the verifier reused a challenge, the replay would
        // succeed — why challenges must be fresh and unpredictable.
        let params = VfParams::test_tiny();
        let dev = Device::new(DeviceConfig::sim_tiny());
        let mut session = GpuSession::install(dev, &params, 0x4E94).unwrap();
        let result_addr = session.build().layout.result_addr();
        session
            .dev
            .install_bus_tap(Box::new(ReplayTap::new(result_addr)));
        let ch: Vec<[u8; 16]> = (0..params.grid_blocks).map(|b| [b as u8; 16]).collect();
        let expected = expected_checksum(session.build(), &ch);
        assert_eq!(
            crate::classify_round(&mut session, &ch, expected, u64::MAX),
            Detection::Undetected
        );
        // Second round, *same* challenge: stale answer is still right.
        assert_eq!(
            crate::classify_round(&mut session, &ch, expected, u64::MAX),
            Detection::Undetected
        );
    }
}
