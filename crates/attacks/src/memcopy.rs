//! Memory-copy attacks (paper §8, Fig. 7).
//!
//! - **Variant (b)**: the adversary modifies the code in place and
//!   redirects the checksum traversal to a pristine copy of the region
//!   stashed at a different address ("PC correct, DP different"). The
//!   fold includes the absolute data pointer, so the redirect itself
//!   changes the checksum → detected.
//! - **Variants (c)/(d)** degenerate, in a fully consistent form, into
//!   the *deep memory copy*: relocate everything and patch every
//!   absolute reference. As the paper itself states, a deep copy
//!   "modif\[ies\] the position of the checksum function in the memory,
//!   but not its functionality. Thus, this is not considered a memory
//!   copy attack" — it is the documented residual. [`deep_copy_attack`]
//!   demonstrates it passing, and the partial (inconsistent) variants
//!   failing.

use sage::{GpuSession, SageError};
use sage_gpu_sim::{BusTap, Device, DeviceConfig, LaunchParams};
#[cfg(test)]
use sage_isa::Operand;
use sage_isa::{encode, Opcode, INSN_BYTES};
use sage_vf::{expected_checksum, VfParams};

use crate::Detection;

/// Rewrites, in an encoded code image, every immediate equal to
/// `old` on instructions with opcode `op`, to `new`. Returns the number
/// of patches.
pub fn patch_immediates(image: &mut [u8], op: Opcode, old: u32, new: u32) -> usize {
    let mut patched = 0;
    for chunk in image.chunks_exact_mut(INSN_BYTES) {
        let mut word = [0u8; INSN_BYTES];
        word.copy_from_slice(chunk);
        if let Ok(insn) = encode::decode_bytes(&word) {
            if insn.op == op && insn.immediate() == Some(old) {
                encode::patch_immediate_bytes(&mut word, new);
                chunk.copy_from_slice(&word);
                patched += 1;
            }
        }
    }
    patched
}

/// A bus tap that rewrites uploads targeting the executable-copy area:
/// the adversary's persistent in-line modification of the code the warps
/// execute (survives the verifier's per-run repair upload).
struct ExecPatcher {
    exec_base: u32,
    exec_len: u32,
    op: Opcode,
    old: u32,
    new: u32,
}

impl BusTap for ExecPatcher {
    fn on_h2d(&mut self, addr: u32, data: &mut Vec<u8>) {
        if addr >= self.exec_base && addr < self.exec_base + self.exec_len {
            patch_immediates(data, self.op, self.old, self.new);
        }
    }
}

/// Mounts variant (b): stash a pristine copy of the static region at a
/// fresh address, tamper the original region, and redirect the
/// traversal's base immediates in the executing loop copies to the
/// pristine copy.
pub fn variant_b(cfg: &DeviceConfig, params: &VfParams) -> Result<Detection, SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0xB00B)?;
    let layout = session.build().layout;
    let expected = expected_checksum(session.build(), &challenge(params.grid_blocks));

    // 1. Pristine copy of the static region elsewhere in device memory.
    let copy_base = session.dev.alloc(layout.data_bytes)?;
    let pristine = session.dev.peek(layout.base, layout.data_bytes)?;
    session.dev.poke(copy_base, &pristine)?;

    // 2. Tamper the original region (the adversary's payload byte).
    let t = layout.base + layout.fill_off + 128;
    session.dev.poke(t, &[0xEE])?;

    // 3. Redirect the executing loops' traversal base to the pristine
    //    copy — on every (re-)upload of the executable copies.
    session.dev.install_bus_tap(Box::new(ExecPatcher {
        exec_base: layout.base + layout.exec_loops_off,
        exec_len: layout.loop_bytes * layout.num_blocks,
        op: Opcode::Lea,
        old: layout.base,
        new: copy_base,
    }));

    let ch = challenge(params.grid_blocks);
    Ok(crate::classify_round(&mut session, &ch, expected, u64::MAX))
}

/// Relocation info produced by [`relocate_image`].
pub struct Relocated {
    /// New base address.
    pub base: u32,
    /// Patches applied (for diagnostics).
    pub patches: usize,
}

/// Builds a fully consistent relocated copy of the VF image at a fresh
/// allocation: every absolute self-reference (entry dispatch, loop back
/// edges, epilog branch) is retargeted to the copy, while references to
/// verifier-visible state (region base, challenges, results) keep
/// pointing at the original, so the computation is bit-identical.
pub fn relocate_image(
    session: &mut GpuSession,
    tamper_relocated_fill: bool,
) -> Result<Relocated, SageError> {
    let layout = session.build().layout;
    let new_base = session.dev.alloc(layout.total_bytes)?;
    let mut image = session.dev.peek(layout.base, layout.total_bytes)?;
    let mut patches = 0;

    // Init: MOV R16, Imm(exec_loops_abs) → relocated loops.
    patches += patch_immediates(
        &mut image[..layout.epilog_off as usize],
        Opcode::Mov,
        layout.base + layout.exec_loops_off,
        new_base + layout.exec_loops_off,
    );
    // Loop copies (reference image and executable copies): BRA epilog.
    let epilog_old = layout.base + layout.epilog_off;
    let epilog_new = new_base + layout.epilog_off;
    patches += patch_immediates(&mut image, Opcode::Bra, epilog_old, epilog_new);

    if tamper_relocated_fill {
        // The "inconsistent deep copy": the relocated traversal input is
        // modified. The traversal still reads the ORIGINAL region (the
        // region-base immediates were deliberately not retargeted), so
        // tampering the relocated fill has no effect on the value — this
        // flag exists to document that only the original matters.
        let off = (layout.fill_off + 64) as usize;
        image[off] ^= 0xFF;
    }

    session.dev.poke(new_base, &image)?;
    Ok(Relocated {
        base: new_base,
        patches,
    })
}

/// Runs one verification round against the *relocated* VF: the malicious
/// host launches the copy but reports timing honestly. Returns the
/// detection outcome.
///
/// This is the deep-memory-copy residual: the relocated VF computes the
/// identical function over the identical (original) region, so both the
/// value and the time are correct. The paper excludes this from the
/// memory-copy attack class (§8).
pub fn deep_copy_attack(
    cfg: &DeviceConfig,
    params: &VfParams,
) -> Result<(Detection, u64), SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0xDEE9)?;
    let layout = session.build().layout;
    let ch = challenge(params.grid_blocks);
    let expected = expected_checksum(session.build(), &ch);

    // Honest baseline threshold from a handful of genuine runs.
    let mut samples = Vec::new();
    for _ in 0..6 {
        let (_, t) = session.run_checksum(&ch)?;
        samples.push(t);
    }
    let threshold = sage::Calibration::from_samples(&samples).threshold();

    let relocated = relocate_image(&mut session, false)?;

    // Malicious host runtime: replicate the driver flow but enter at the
    // relocated image.
    session.dev.memcpy_h2d(layout.result_addr(), &[0u8; 32])?;
    session.dev.take_bus_cycles();
    for (b, c) in ch.iter().enumerate() {
        session.dev.memcpy_h2d(layout.challenge_addr(b as u32), c)?;
    }
    let (report, _) = session.dev.run_single(LaunchParams {
        ctx: session.ctx,
        entry_pc: relocated.base, // ← the relocated init
        grid_dim: params.grid_blocks,
        block_dim: params.block_threads,
        regs_per_thread: session.build().regs_per_thread(),
        smem_bytes: session.build().smem_bytes(),
        params: vec![],
    })?;
    let raw = session.dev.memcpy_d2h(layout.result_addr(), 32)?;
    let measured = session.dev.take_bus_cycles() + report.completion_cycle;
    let mut got = [0u32; 8];
    for (j, cell) in got.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
    }

    let detection = if got != expected {
        Detection::WrongChecksum
    } else if measured > threshold {
        Detection::TooSlow
    } else {
        Detection::Undetected
    };
    Ok((detection, relocated.patches as u64))
}

fn challenge(blocks: u32) -> Vec<[u8; 16]> {
    (0..blocks).map(|b| [0x5A ^ b as u8; 16]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_b_detected_via_data_pointer() {
        let mut params = VfParams::test_tiny();
        params.iterations = 10;
        let det = variant_b(&DeviceConfig::sim_tiny(), &params).unwrap();
        // The redirect changes every folded absolute address → wrong
        // checksum on the very first iteration.
        assert_eq!(det, Detection::WrongChecksum);
    }

    #[test]
    fn deep_copy_is_the_documented_residual() {
        let params = VfParams::test_tiny();
        let (det, patches) = deep_copy_attack(&DeviceConfig::sim_tiny(), &params).unwrap();
        assert!(patches > 0, "relocation must have patched something");
        // A fully consistent deep copy computes the identical function:
        // it passes, exactly as the paper's §8 concedes ("not considered
        // a memory copy attack").
        assert_eq!(det, Detection::Undetected);
    }

    #[test]
    fn patch_immediates_is_precise() {
        let mut b = sage_isa::ProgramBuilder::new();
        b.mov(sage_isa::Reg(1), Operand::Imm(0x1000));
        b.mov(sage_isa::Reg(2), Operand::Imm(0x2000));
        b.lea(sage_isa::Reg(3), sage_isa::Reg(1), Operand::Imm(0x1000), 2);
        let prog = b.build().unwrap();
        let mut img = prog.encode();
        // Only the MOV with imm 0x1000 is patched, not the LEA.
        assert_eq!(patch_immediates(&mut img, Opcode::Mov, 0x1000, 0x9999), 1);
        let back = sage_isa::Program::decode(&img).unwrap();
        assert_eq!(back.insns[0].immediate(), Some(0x9999));
        assert_eq!(back.insns[1].immediate(), Some(0x2000));
        assert_eq!(back.insns[2].immediate(), Some(0x1000));
    }
}
