//! Instruction-injection attack (paper experiment 2, §7.2).
//!
//! The adversary inserts instructions into the checksum loop (to make
//! room for malicious work) while keeping the computed value correct.
//! The defence is purely temporal: over `iterations` loop passes even a
//! single extra NOP accumulates a delay that exceeds the verifier's
//! `T_avg + 2.5σ` threshold — the paper demonstrates
//! `T_min(injected) > T_avg + 2.5σ` over 100 runs.

use sage::{timing::Calibration, GpuSession, SageError};
use sage_gpu_sim::{Device, DeviceConfig};
use sage_vf::{expected_checksum, VfParams};

/// Result of the injection experiment.
#[derive(Clone, Copy, Debug)]
pub struct NopExperiment {
    /// Calibration of the genuine VF.
    pub calibration: Calibration,
    /// Minimum runtime of the injected VF over all runs.
    pub t_min_injected: u64,
    /// Mean runtime of the injected VF.
    pub t_avg_injected: f64,
    /// Number of injected NOPs per loop pass.
    pub nops: usize,
    /// `true` when every injected run exceeded the threshold
    /// (`T_min > T_avg + 2.5σ`).
    pub always_detected: bool,
}

/// A compact *port-bound* configuration for timing experiments: one SM
/// at full occupancy, so every injected instruction consumes real issue
/// slots (at low occupancy the scheduler hides single instructions behind
/// memory stalls and the experiment needs the paper's 100 000-iteration
/// scale to separate).
pub fn timing_test_setup() -> (DeviceConfig, VfParams) {
    let mut cfg = DeviceConfig::sim_large();
    cfg.num_sms = 1;
    cfg.lat.gmem_min = 190;
    cfg.lat.gmem_jitter = 50;
    let params = VfParams {
        data_bytes: 128 * 1024,
        unroll: 8,
        pattern_pairs: 12,
        iterations: 150,
        smc: sage_vf::SmcMode::Off,
        inner: None,
        grid_blocks: 2,
        block_threads: 512,
        naive_schedule: false,
        injected_nops: 0,
    };
    (cfg, params)
}

fn challenge_set(blocks: u32, run: u64) -> Vec<[u8; 16]> {
    (0..blocks)
        .map(|b| {
            let mut c = [0u8; 16];
            for (i, byte) in c.iter_mut().enumerate() {
                let x = sage_vf::spec::splitmix32(
                    (run as u32) ^ (b << 8) ^ ((i as u32) << 16) ^ 0xA77A_C4ED,
                );
                *byte = x as u8;
            }
            c
        })
        .collect()
}

/// Runs `runs` timed checksum exchanges on a fresh session and returns
/// the samples (each verified against the replay).
pub fn timing_samples(
    cfg: &DeviceConfig,
    params: &VfParams,
    fill_seed: u32,
    runs: usize,
) -> Result<Vec<u64>, SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, fill_seed)?;
    let mut samples = Vec::with_capacity(runs);
    for run in 0..runs {
        let ch = challenge_set(params.grid_blocks, run as u64);
        let (got, measured) = session.run_checksum(&ch)?;
        let expected = expected_checksum(session.build(), &ch);
        if got != expected {
            return Err(SageError::ChecksumMismatch { got, expected });
        }
        samples.push(measured);
    }
    Ok(samples)
}

/// Runs the full experiment: calibrate the genuine VF, then measure the
/// NOP-injected variant and test the paper's detection condition.
pub fn run_nop_experiment(
    cfg: &DeviceConfig,
    params: &VfParams,
    nops: usize,
    runs: usize,
) -> Result<NopExperiment, SageError> {
    let genuine = timing_samples(cfg, params, 0x5EED, runs)?;
    let calibration = Calibration::from_samples(&genuine);

    let mut injected_params = *params;
    injected_params.injected_nops = nops;
    let injected = timing_samples(cfg, &injected_params, 0x5EED, runs)?;
    let t_min = *injected.iter().min().expect("runs > 0");
    let t_avg = injected.iter().map(|&s| s as f64).sum::<f64>() / injected.len() as f64;

    Ok(NopExperiment {
        calibration,
        t_min_injected: t_min,
        t_avg_injected: t_avg,
        nops,
        always_detected: t_min > calibration.threshold(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_nop_is_always_detected() {
        let (cfg, params) = timing_test_setup();
        let exp = run_nop_experiment(&cfg, &params, 1, 6).unwrap();
        assert!(
            exp.always_detected,
            "T_min {} must exceed threshold {} (T_avg {} σ {})",
            exp.t_min_injected,
            exp.calibration.threshold(),
            exp.calibration.t_avg,
            exp.calibration.sigma,
        );
    }

    #[test]
    fn more_nops_cost_more() {
        let (cfg, mut params) = timing_test_setup();
        params.iterations = 50;
        let few = run_nop_experiment(&cfg, &params, 1, 4).unwrap();
        let many = run_nop_experiment(&cfg, &params, 16, 4).unwrap();
        assert!(
            many.t_avg_injected > few.t_avg_injected,
            "{} vs {}",
            many.t_avg_injected,
            few.t_avg_injected
        );
    }

    #[test]
    fn genuine_runs_pass() {
        let (cfg, mut params) = timing_test_setup();
        params.iterations = 30;
        let samples = timing_samples(&cfg, &params, 1, 6).unwrap();
        let c = Calibration::from_samples(&samples);
        // All calibration samples are within their own threshold except
        // possibly outliers; the threshold must at least admit the mean.
        assert!(c.accepts(c.t_avg as u64));
    }
}
