//! Resource-takeover attack (paper §8): the adversary dispatches its own
//! kernel while the checksum runs, hoping to steal compute for free.
//!
//! The VF occupies every SM at full thread and register occupancy, so an
//! adversarial kernel either queues behind the VF's blocks (visibly
//! delaying the checksum) or cannot be placed at all. The attack is
//! detected by timing.

use sage::{GpuSession, SageError};
use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};
use sage_isa::{CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg};
use sage_vf::{expected_checksum, VfParams};

use crate::Detection;

/// Builds a spin kernel that burns `iters` ALU iterations per thread.
pub fn spin_kernel(iters: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(1), Operand::Imm(0));
    b.label("spin");
    b.ctrl(CtrlInfo::stall(1));
    b.iadd3(Reg(2), Reg(2), Operand::Imm(0x1234), Reg::RZ);
    b.ctrl(CtrlInfo::stall(1));
    b.lea_hi(Reg(3), Reg(3), Reg(2).into(), 3);
    b.ctrl(CtrlInfo::stall(4));
    b.iadd3(Reg(1), Reg(1), Operand::Imm(1), Reg::RZ);
    b.ctrl(CtrlInfo::stall(4));
    b.isetp(PredReg(0), CmpOp::Lt, Reg(1), Operand::Imm(iters));
    b.pred(Pred::on(PredReg(0)));
    b.bra("spin");
    b.exit();
    b.build().expect("labels resolve")
}

/// Runs one verification round with an adversarial kernel co-dispatched
/// on the same device. Returns the detection outcome and the measured
/// time of the attacked round.
pub fn takeover_round(
    cfg: &DeviceConfig,
    params: &VfParams,
    spin_iters: u32,
    spin_blocks: u32,
) -> Result<(Detection, u64, u64), SageError> {
    let dev = Device::new(cfg.clone());
    let mut session = GpuSession::install(dev, params, 0x7A4E)?;
    let ch: Vec<[u8; 16]> = (0..params.grid_blocks)
        .map(|b| [b as u8 | 0x40; 16])
        .collect();
    let expected = expected_checksum(session.build(), &ch);

    // Honest calibration.
    let mut samples = Vec::new();
    for _ in 0..6 {
        let (_, t) = session.run_checksum(&ch)?;
        samples.push(t);
    }
    let threshold = sage::Calibration::from_samples(&samples).threshold();

    // Malicious host runtime: co-dispatch the adversary kernel with the
    // checksum launch (the VF's blocks are queued first, but the
    // adversary's blocks compete for SM residency as VF blocks retire —
    // and on any SM where they land first, the VF waits).
    let layout = session.build().layout;
    let mut spin = spin_kernel(spin_iters);
    let spin_base = session.dev.alloc(spin.byte_len() as u32)?;
    spin.relocate(spin_base);
    session.dev.poke(spin_base, &spin.encode())?;

    // Restore/reset as the driver would.
    let exec_off = layout.exec_loops_off as usize;
    let exec_len = (layout.loop_bytes * layout.num_blocks) as usize;
    let exec_img = session.build().image[exec_off..exec_off + exec_len].to_vec();
    session
        .dev
        .memcpy_h2d(layout.base + layout.exec_loops_off, &exec_img)?;
    session.dev.memcpy_h2d(layout.result_addr(), &[0u8; 32])?;
    session.dev.take_bus_cycles();
    for (b, c) in ch.iter().enumerate() {
        session.dev.memcpy_h2d(layout.challenge_addr(b as u32), c)?;
    }
    // The adversary's kernel is queued *before* the VF (it controls the
    // command stream order).
    session.dev.launch(LaunchParams {
        ctx: session.ctx,
        entry_pc: spin_base,
        grid_dim: spin_blocks,
        block_dim: 256,
        regs_per_thread: 16,
        smem_bytes: 0,
        params: vec![],
    })?;
    let vf_id = session.dev.launch(LaunchParams {
        ctx: session.ctx,
        entry_pc: layout.entry_addr(),
        grid_dim: params.grid_blocks,
        block_dim: params.block_threads,
        regs_per_thread: session.build().regs_per_thread(),
        smem_bytes: session.build().smem_bytes(),
        params: vec![],
    })?;
    let report = session.dev.run()?;
    let raw = session.dev.memcpy_d2h(layout.result_addr(), 32)?;
    let measured = session.dev.take_bus_cycles() + report.launches[vf_id].completion_cycle;

    let mut got = [0u32; 8];
    for (j, cell) in got.iter_mut().enumerate() {
        *cell = u32::from_le_bytes(raw[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
    }
    let detection = if got != expected {
        Detection::WrongChecksum
    } else if measured > threshold {
        Detection::TooSlow
    } else {
        Detection::Undetected
    };
    Ok((detection, measured, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn co_running_kernel_delays_the_checksum() {
        let mut params = VfParams::test_tiny();
        params.iterations = 8;
        let (det, measured, threshold) =
            takeover_round(&DeviceConfig::sim_tiny(), &params, 3000, 2).unwrap();
        assert_eq!(
            det,
            Detection::TooSlow,
            "measured {measured} threshold {threshold}"
        );
    }

    #[test]
    fn spin_kernel_runs_standalone() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let ctx = dev.create_context();
        let mut k = spin_kernel(100);
        let base = dev.alloc(k.byte_len() as u32).unwrap();
        k.relocate(base);
        dev.poke(base, &k.encode()).unwrap();
        let (report, _) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: base,
                grid_dim: 1,
                block_dim: 32,
                regs_per_thread: 16,
                smem_bytes: 0,
                params: vec![],
            })
            .unwrap();
        assert!(report.completion_cycle > 100);
    }
}
