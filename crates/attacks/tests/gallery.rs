//! The full §8 attack gallery, driven through the public API in one
//! integration pass — the executable counterpart of the paper's security
//! analysis table (see EXPERIMENTS.md).

use sage_attacks::{datasub, forge, memcopy, proxy, takeover, Detection};
use sage_gpu_sim::DeviceConfig;
use sage_vf::VfParams;

fn params() -> VfParams {
    let mut p = VfParams::test_tiny();
    p.iterations = 20;
    p
}

#[test]
fn every_value_attack_breaks_the_checksum() {
    let cfg = DeviceConfig::sim_tiny();
    // Data substitution without monitoring.
    assert_eq!(
        datasub::naive_tamper(&cfg, &params(), 256).unwrap(),
        Detection::WrongChecksum
    );
    // Memory copy (b): traversal redirect.
    assert_eq!(
        memcopy::variant_b(&cfg, &params()).unwrap(),
        Detection::WrongChecksum
    );
    // Replay of a stale checksum against fresh challenges.
    let outcomes = forge::replay_attack(&cfg, &params(), 3).unwrap();
    assert!(outcomes[1..].iter().all(|&o| o == Detection::WrongChecksum));
}

#[test]
fn every_timing_attack_breaks_the_threshold() {
    // Resource takeover.
    let mut p = params();
    p.iterations = 8;
    let (det, _, _) = takeover::takeover_round(&DeviceConfig::sim_tiny(), &p, 3000, 2).unwrap();
    assert_eq!(det, Detection::TooSlow);

    // Remote proxy.
    let cfg = DeviceConfig::sim_tiny();
    let out = proxy::proxy_attack(&cfg, &cfg, &params(), 70_000).unwrap();
    assert_eq!(out.detection, Detection::TooSlow);
}

#[test]
fn image_audit_pinpoints_the_tamper_after_detection() {
    // Forensics: after a WrongChecksum verdict, the verifier dumps the
    // device image and the audit localizes the modification.
    use sage::GpuSession;
    use sage_gpu_sim::Device;

    let p = params();
    let dev = Device::new(DeviceConfig::sim_tiny());
    let mut session = GpuSession::install(dev, &p, 0xF0F0).unwrap();
    let layout = session.build().layout;

    // Adversary pokes the epilog (executed + checksummed).
    session
        .dev
        .poke(layout.base + layout.epilog_off + 32, &[0x13])
        .unwrap();

    let dump = session.dev.peek(layout.base, layout.total_bytes).unwrap();
    let findings = session.build().audit_image(&dump);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].contains("epilog"), "{findings:?}");
}

#[test]
fn detection_enum_is_ordered_by_severity_of_evidence() {
    // classify_round never reports Undetected when the value mismatches,
    // even if the timing is also over threshold (value evidence wins).
    use sage::GpuSession;
    use sage_gpu_sim::Device;
    use sage_vf::expected_checksum;

    let p = params();
    let dev = Device::new(DeviceConfig::sim_tiny());
    let mut session = GpuSession::install(dev, &p, 0xBEAD).unwrap();
    let ch: Vec<[u8; 16]> = (0..p.grid_blocks).map(|b| [b as u8; 16]).collect();
    let expected = expected_checksum(session.build(), &ch);

    // Tamper value AND set an impossible threshold of 0.
    let layout = session.build().layout;
    for w in 0..32u32 {
        session
            .dev
            .poke(layout.base + layout.fill_off + w * 128, &[0xEE])
            .unwrap();
    }
    let det = sage_attacks::classify_round(&mut session, &ch, expected, 0);
    assert_eq!(det, Detection::WrongChecksum);
}
