//! Fixed-bucket log2 histograms with mergeable snapshots.
//!
//! Bucket layout covers the whole `u64` range with 65 buckets: bucket
//! 0 holds exactly the value 0, bucket `i` (1..=64) holds
//! `[2^(i-1), 2^i - 1]`. The index of a value is one integer
//! instruction (`64 - leading_zeros`), and recording is two relaxed
//! `fetch_add`s — one bucket bump, one sum accumulate. Deliberately no
//! min/max tracking: a CAS loop per record would dwarf the fast-path
//! budget the overhead gate enforces (see `BENCH_telemetry.json`).
//!
//! Percentile queries run on [`HistogramSnapshot`]s, nearest-rank over
//! the cumulative bucket counts, answering with a linear interpolation
//! of the ranked observation's position *within* its bucket — so a
//! distribution whose samples all land in one log2 bucket still
//! resolves distinct p50/p90/p99 instead of saturating at the bucket's
//! upper bound. The answer is deterministic (integer arithmetic only)
//! and never leaves the containing bucket, so the relative error stays
//! bounded by the bucket width (at most 2×).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` bounds of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        let low = 1u64 << (i - 1);
        let high = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
        (low, high)
    }
}

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// A concurrent log2 histogram.
///
/// Cloning is shallow — clones record into the same buckets, so the
/// instrumented component and the registry always agree.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation (two relaxed `fetch_add`s).
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.inner.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .finish()
    }
}

/// An immutable histogram state: mergeable, queryable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Folds another snapshot in (element-wise bucket addition — the
    /// operation is associative and commutative, so per-shard or
    /// per-device snapshots merge in any order to the same result).
    /// `sum` wraps on overflow, matching [`Histogram::record`]'s atomic
    /// accumulation — a merge never panics where recording would not.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Nearest-rank percentile (`q` in `(0, 1]`), linearly interpolated
    /// within the bucket holding the ranked observation: rank `p` of the
    /// bucket's `c` observations answers `lo + (hi−lo)·p/c` (integer
    /// arithmetic, widened so the 64-bit edge buckets cannot overflow).
    /// `q = 1.0` still answers the top bucket's upper bound. `None`
    /// when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let p = rank - seen; // position within this bucket, 1..=c
                let span = (hi - lo) as u128;
                return Some(lo + (span * p as u128 / c as u128) as u64);
            }
            seen += c;
        }
        // Unreachable: cumulative count reaches n >= rank.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_partitions_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Bounds tile the range with no gaps or overlaps.
        assert_eq!(bucket_bounds(0), (0, 0));
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, bucket_bounds(i - 1).1 + 1, "bucket {i} gap");
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_lands_in_reported_bucket() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 7 + 1023 + 1024)
                .wrapping_add(u64::MAX)
        );
        assert_eq!(s.buckets[bucket_index(7)], 1);
        assert_eq!(s.buckets[bucket_index(1023)], 1);
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let h = Histogram::new();
        // 9 observations of 10 (bucket [8,15]) and 1 of 1000 ([512,1023]).
        for _ in 0..9 {
            h.record(10);
        }
        h.record(1000);
        let s = h.snapshot();
        // p50: rank 5 of the 9 observations in [8,15] → 8 + 7·5/9 = 11.
        assert_eq!(s.percentile(0.50), Some(11));
        // p90: rank 9 of 9 in [8,15] → the bucket's upper bound.
        assert_eq!(s.percentile(0.90), Some(15));
        // p99: rank 10 → sole observation in [512,1023] → upper bound.
        assert_eq!(s.percentile(0.99), Some(1023));
        assert_eq!(s.percentile(1.0), Some(1023));
    }

    /// The saturation fix: 100 samples in one log2 bucket must resolve
    /// distinct, monotone p50/p90/p99 instead of one shared upper bound.
    #[test]
    fn interpolation_resolves_within_one_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(10_000); // bucket [8192, 16383]
        }
        let s = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(10_000));
        let p50 = s.percentile(0.50).unwrap();
        let p90 = s.percentile(0.90).unwrap();
        let p99 = s.percentile(0.99).unwrap();
        assert_eq!(p50, lo + (hi - lo) * 50 / 100);
        assert_eq!(p90, lo + (hi - lo) * 90 / 100);
        assert_eq!(p99, lo + (hi - lo) * 99 / 100);
        assert!(p50 < p90 && p90 < p99, "{p50} {p90} {p99}");
        assert_eq!(s.percentile(1.0), Some(hi));
    }

    /// The 64-bit edge buckets must not overflow the interpolation
    /// arithmetic.
    #[test]
    fn interpolation_survives_extreme_buckets() {
        let h = Histogram::new();
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
        assert!(s.percentile(0.5).unwrap() >= bucket_bounds(64).0);
    }

    #[test]
    fn empty_snapshot_has_no_percentiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(100);
        b.record(3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 106);
        assert_eq!(m.buckets[bucket_index(3)], 2);
    }
}
