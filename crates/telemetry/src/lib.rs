//! The unified telemetry core for the SAGE reproduction.
//!
//! SAGE's security argument is quantitative — a verifier accepts only
//! when the checksum matches *and* the response lands under
//! `T_avg + k·σ` (paper §7.2) — so the reproduction needs first-class
//! visibility into latencies, stalls and rejection causes. This crate
//! provides the primitives every layer shares:
//!
//! - [`Counter`] — a sharded atomic counter. Hot paths pay one relaxed
//!   `fetch_add` on a cache-line-padded shard; reads sum the shards.
//! - [`Gauge`] — a last-value cell for model quantities that move both
//!   ways (e.g. the sampling layer's detection probability), exported
//!   in fixed-point per-mille to keep the renderers integer-only.
//! - [`Histogram`] — fixed log2 buckets (65 of them, covering the full
//!   `u64` range), mergeable snapshots, nearest-rank percentile
//!   queries. Recording is two relaxed `fetch_add`s, no CAS loops.
//! - [`WallSpan`] / [`VirtualSpan`] — lightweight spans stamped from
//!   the wall clock or from the service layer's virtual clock.
//! - [`Registry`] — a named, labeled instrument directory with
//!   stable-schema JSON ([`Registry::to_json`]) and Prometheus text
//!   ([`Registry::to_prometheus`]) exporters.
//!
//! # Schema stability
//!
//! Both exporters sort metrics by `(name, labels)` and render numbers
//! without platform-dependent formatting, so a deterministic run
//! produces byte-identical output — the golden tests in the workspace
//! root pin that, making schema drift a deliberate, reviewed change
//! (see DESIGN.md §8).
//!
//! # Dependency policy
//!
//! Like the rest of the workspace, this crate is std-only. The
//! property-based suites are gated behind the default-off `proptest`
//! feature; seeded deterministic twins of each property always run.

mod counter;
mod gauge;
mod hist;
mod registry;
mod span;

pub use counter::Counter;
pub use gauge::Gauge;
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricValue, Registry};
pub use span::{VirtualSpan, WallSpan};
