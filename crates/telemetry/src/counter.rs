//! A sharded atomic counter.
//!
//! Fleet-scale paths bump counters from many threads at once (bank
//! refill workers, replay-pool workers, per-SM simulator workers). A
//! single `AtomicU64` would make every bump a cross-core cache-line
//! bounce; instead each counter owns a small fixed set of
//! cache-line-padded shards and every thread sticks to one shard,
//! assigned round-robin the first time it touches *any* counter. Reads
//! sum the shards — counters are monotonic, so a racing read is merely
//! a slightly stale total, never a wrong one.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of shards per counter. Small on purpose: reads stay cheap,
/// and with one shard per *thread slot* (not per thread) collisions
/// only cost an occasional shared bump, never wrong totals.
const SHARDS: usize = 8;

/// One shard, padded to a cache line so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

thread_local! {
    /// This thread's shard slot, assigned on first use.
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin source for thread shard slots.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

fn shard_slot() -> usize {
    SHARD_SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(s);
        }
        s
    })
}

/// A monotonically increasing counter, cheap to bump from any thread.
///
/// Cloning is shallow: clones share the same shards, so a clone handed
/// to an instrumented component and the registry's copy always agree.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[Shard; SHARDS]>,
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter {
            shards: Arc::new(Default::default()),
        }
    }

    /// Adds `n` (relaxed; one `fetch_add` on this thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.add(5);
        b.add(7);
        assert_eq!(a.get(), 12);
        assert_eq!(b.get(), 12);
    }

    #[test]
    fn concurrent_bumps_are_all_counted() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
