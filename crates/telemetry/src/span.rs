//! Lightweight spans: a start/stop pair that records its duration into
//! a [`Histogram`].
//!
//! Two clocks exist in this tree. Benchmarks and thread pools live on
//! the wall clock ([`WallSpan`], nanoseconds); the attestation service
//! lives on its own deterministic virtual clock ([`VirtualSpan`],
//! ticks) — golden tests only ever pin virtual-clock histograms,
//! because wall-clock durations are inherently nondeterministic.

use std::time::Instant;

use crate::hist::Histogram;

/// Times a region on the wall clock; records elapsed nanoseconds on
/// [`WallSpan::finish`] or on drop, whichever comes first.
pub struct WallSpan {
    hist: Histogram,
    start: Instant,
    done: bool,
}

impl WallSpan {
    /// Starts the span now.
    pub fn start(hist: &Histogram) -> WallSpan {
        WallSpan {
            hist: hist.clone(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Stops the span, records it, and returns the elapsed nanoseconds
    /// (saturated to `u64`).
    pub fn finish(mut self) -> u64 {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        self.done = true;
        ns
    }
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        if !self.done {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// Times a region on a caller-supplied virtual clock (the service
/// layer's tick counter). Purely data — deterministic for a fixed
/// event schedule.
pub struct VirtualSpan {
    hist: Histogram,
    start: u64,
}

impl VirtualSpan {
    /// Starts the span at virtual time `now`.
    pub fn start(hist: &Histogram, now: u64) -> VirtualSpan {
        VirtualSpan {
            hist: hist.clone(),
            start: now,
        }
    }

    /// Stops the span at virtual time `now`, recording the tick delta
    /// (saturating — a skewed clock must not panic telemetry).
    pub fn finish(self, now: u64) -> u64 {
        let ticks = now.saturating_sub(self.start);
        self.hist.record(ticks);
        ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_span_records_once_on_finish() {
        let h = Histogram::new();
        let span = WallSpan::start(&h);
        let ns = span.finish();
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, ns);
    }

    #[test]
    fn wall_span_records_on_drop() {
        let h = Histogram::new();
        drop(WallSpan::start(&h));
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn virtual_span_records_tick_delta() {
        let h = Histogram::new();
        let span = VirtualSpan::start(&h, 100);
        assert_eq!(span.finish(140), 40);
        // A skewed (backwards) clock saturates to zero.
        let span = VirtualSpan::start(&h, 100);
        assert_eq!(span.finish(90), 0);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum, 40);
    }
}
