//! The instrument directory and its two exporters.
//!
//! A [`Registry`] maps `(name, labels)` to an instrument. Components
//! either ask the registry to mint an instrument
//! ([`Registry::counter`] / [`Registry::histogram`] — get-or-create,
//! so two callers naming the same series share state) or register an
//! instrument they already own ([`Registry::register_counter`] /
//! [`Registry::register_histogram`] — how the `ChallengeBank` exposes
//! counters that predate the registry).
//!
//! # Exporters and schema stability
//!
//! [`Registry::to_json`] and [`Registry::to_prometheus`] sort series
//! by `(name, labels)` and format numbers deterministically, so equal
//! telemetry states render byte-identically. The JSON schema carries
//! an explicit `"schema": 1` version; bumping it is a deliberate act
//! that breaks the golden tests (DESIGN.md §8).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::hist::{bucket_bounds, Histogram, BUCKETS};

/// A label set: ordered `(key, value)` pairs. Order is part of the
/// series identity — instrumentation sites use a fixed order, so this
/// never bites in practice and keeps lookups allocation-light.
type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    name: String,
    labels: Labels,
    instrument: Instrument,
}

/// One exported value, as rendered by [`Registry::to_json`].
///
/// The histogram variant carries the full 65-bucket snapshot inline —
/// values only exist on the cold collect/export path, so matching
/// ergonomics win over the size imbalance boxing would fix.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's last-set value.
    Gauge(u64),
    /// A histogram snapshot.
    Histogram(crate::hist::HistogramSnapshot),
}

/// One collected series: name, label pairs, value — [`Registry::collect`]'s
/// row type.
pub type CollectedSeries = (String, Labels, MetricValue);

/// The registry's interior: the series in registration order plus a
/// hash index over `(name, labels)`. The index keeps get-or-create
/// O(1): a fleet-scale enrollment mints a handful of per-device series
/// per join, and a linear directory scan would turn the whole
/// enrollment quadratic in fleet size.
#[derive(Default)]
struct Directory {
    series: Vec<Series>,
    index: HashMap<(String, Labels), usize>,
}

/// A shared, thread-safe instrument directory.
///
/// Cloning is shallow; all clones view and mint the same series.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Directory>>,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn to_owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter series `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut dir = lock_unpoisoned(&self.inner);
        if let Some(&i) = dir.index.get(&key_of(name, labels)) {
            if let Instrument::Counter(c) = &dir.series[i].instrument {
                return c.clone();
            }
            panic!("series {name} already registered as a histogram");
        }
        let c = Counter::new();
        dir.push(name, labels, Instrument::Counter(c.clone()));
        c
    }

    /// Gets or creates the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut dir = lock_unpoisoned(&self.inner);
        if let Some(&i) = dir.index.get(&key_of(name, labels)) {
            if let Instrument::Gauge(g) = &dir.series[i].instrument {
                return g.clone();
            }
            panic!("series {name} already registered as a non-gauge");
        }
        let g = Gauge::new();
        dir.push(name, labels, Instrument::Gauge(g.clone()));
        g
    }

    /// Gets or creates the histogram series `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut dir = lock_unpoisoned(&self.inner);
        if let Some(&i) = dir.index.get(&key_of(name, labels)) {
            if let Instrument::Histogram(h) = &dir.series[i].instrument {
                return h.clone();
            }
            panic!("series {name} already registered as a counter");
        }
        let h = Histogram::new();
        dir.push(name, labels, Instrument::Histogram(h.clone()));
        h
    }

    /// Registers an existing counter under `name{labels}` (shares state
    /// with the caller's handle). Replaces any previous instrument on
    /// the same series — re-registration after a component restart must
    /// expose the live instrument, not a stale one.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], counter: Counter) {
        self.register(name, labels, Instrument::Counter(counter));
    }

    /// Registers an existing gauge under `name{labels}`.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: Gauge) {
        self.register(name, labels, Instrument::Gauge(gauge));
    }

    /// Registers an existing histogram under `name{labels}`.
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], hist: Histogram) {
        self.register(name, labels, Instrument::Histogram(hist));
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], instrument: Instrument) {
        let mut dir = lock_unpoisoned(&self.inner);
        if let Some(&i) = dir.index.get(&key_of(name, labels)) {
            dir.series[i].instrument = instrument;
            return;
        }
        dir.push(name, labels, instrument);
    }

    /// All series values, sorted by `(name, labels)` — the exporters'
    /// iteration order, exposed for tests and ad-hoc reporting.
    pub fn collect(&self) -> Vec<CollectedSeries> {
        let dir = lock_unpoisoned(&self.inner);
        let mut out: Vec<_> = dir
            .series
            .iter()
            .map(|s| {
                let value = match &s.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (s.name.clone(), s.labels.clone(), value)
            })
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }

    /// Renders every series as versioned, stable-schema JSON.
    ///
    /// Histograms export `count`, `sum`, nearest-rank `p50/p90/p99`
    /// (bucket upper bounds) and the non-empty buckets as
    /// `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"metrics\": [\n");
        let collected = self.collect();
        for (i, (name, labels, value)) in collected.iter().enumerate() {
            out.push_str("    {\"name\": \"");
            out.push_str(&json_escape(name));
            out.push_str("\", \"labels\": {");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(&json_escape(k));
                out.push_str("\": \"");
                out.push_str(&json_escape(v));
                out.push('"');
            }
            out.push_str("}, ");
            match value {
                MetricValue::Counter(total) => {
                    out.push_str(&format!("\"type\": \"counter\", \"value\": {total}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\": \"gauge\", \"value\": {v}"));
                }
                MetricValue::Histogram(s) => {
                    let p = |q: f64| {
                        s.percentile(q)
                            .map(|v| v.to_string())
                            .unwrap_or_else(|| "null".into())
                    };
                    out.push_str(&format!(
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                        s.count(),
                        s.sum,
                        p(0.50),
                        p(0.90),
                        p(0.99),
                    ));
                    let mut first = true;
                    for (b, &c) in s.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        out.push_str(&format!("[{}, {}]", bucket_bounds(b).1, c));
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 != collected.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders every series in the Prometheus text exposition format.
    ///
    /// Histograms follow the standard cumulative-`le` convention; only
    /// buckets that change the cumulative count are emitted (plus the
    /// mandatory `+Inf`), keeping the output compact and stable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let collected = self.collect();
        let mut last_name: Option<&str> = None;
        for (name, labels, value) in &collected {
            if last_name != Some(name.as_str()) {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = Some(name.as_str());
            }
            match value {
                MetricValue::Counter(total) | MetricValue::Gauge(total) => {
                    out.push_str(name);
                    out.push_str(&prom_labels(labels, None));
                    out.push_str(&format!(" {total}\n"));
                }
                MetricValue::Histogram(s) => {
                    let mut cumulative = 0u64;
                    for (b, &c) in s.buckets.iter().enumerate().take(BUCKETS - 1) {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            prom_labels(labels, Some(&bucket_bounds(b).1.to_string()))
                        ));
                    }
                    let total = s.count();
                    out.push_str(&format!(
                        "{name}_bucket{} {total}\n",
                        prom_labels(labels, Some("+Inf"))
                    ));
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        prom_labels(labels, None),
                        s.sum
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {total}\n",
                        prom_labels(labels, None)
                    ));
                }
            }
        }
        out
    }
}

impl Directory {
    fn push(&mut self, name: &str, labels: &[(&str, &str)], instrument: Instrument) {
        let i = self.series.len();
        self.series.push(Series {
            name: name.to_string(),
            labels: to_owned_labels(labels),
            instrument,
        });
        self.index.insert(key_of(name, labels), i);
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
    (name.to_string(), to_owned_labels(labels))
}

/// Escapes a string for a JSON string literal (same subset the service
/// layer's exporter escapes — names here are static identifiers, but
/// label *values* can carry operator-supplied device names).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a Prometheus label block, optionally with a trailing `le`.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_are_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", &[("path", "fast")]);
        let b = reg.counter("requests_total", &[("path", "fast")]);
        a.add(2);
        b.add(3);
        match &reg.collect()[0].2 {
            MetricValue::Counter(v) => assert_eq!(*v, 5),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let reg = Registry::new();
        reg.counter("x", &[("k", "a")]).inc();
        reg.counter("x", &[("k", "b")]).add(2);
        let collected = reg.collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].2, MetricValue::Counter(1));
        assert_eq!(collected[1].2, MetricValue::Counter(2));
    }

    #[test]
    fn registered_counter_shares_state() {
        let reg = Registry::new();
        let mine = Counter::new();
        mine.add(7);
        reg.register_counter("bank_hits_total", &[], mine.clone());
        mine.add(1);
        assert_eq!(reg.collect()[0].2, MetricValue::Counter(8));
    }

    #[test]
    fn gauge_series_export_last_value_in_both_formats() {
        let reg = Registry::new();
        let g = reg.gauge("detect_probability_per_mille", &[("k", "4")]);
        g.set(100);
        g.set(684);
        assert_eq!(reg.collect()[0].2, MetricValue::Gauge(684));
        let json = reg.to_json();
        assert!(json.contains("\"type\": \"gauge\", \"value\": 684"));
        let prom = reg.to_prometheus();
        assert!(prom.contains("# TYPE detect_probability_per_mille gauge\n"));
        assert!(prom.contains("detect_probability_per_mille{k=\"4\"} 684\n"));
        // Re-asking for the same series shares state.
        reg.gauge("detect_probability_per_mille", &[("k", "4")])
            .set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn json_export_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("zeta_total", &[]).inc();
        reg.counter("alpha_total", &[("device", "gpu-1")]).add(3);
        let h = reg.histogram("lat_ns", &[]);
        h.record(10);
        h.record(100);
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b, "export must be deterministic");
        let alpha = a.find("alpha_total").unwrap();
        let zeta = a.find("zeta_total").unwrap();
        assert!(alpha < zeta, "series must be name-sorted");
        assert!(a.contains("\"schema\": 1"));
        assert!(a.contains("\"count\": 2, \"sum\": 110"));
    }

    #[test]
    fn prometheus_export_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[("stage", "claim")]);
        h.record(3); // bucket [2,3]
        h.record(3);
        h.record(20); // bucket [16,31]
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{stage=\"claim\",le=\"3\"} 2"));
        assert!(text.contains("lat_bucket{stage=\"claim\",le=\"31\"} 3"));
        assert!(text.contains("lat_bucket{stage=\"claim\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum{stage=\"claim\"} 26"));
        assert!(text.contains("lat_count{stage=\"claim\"} 3"));
    }

    #[test]
    fn empty_label_counter_renders_bare_name() {
        let reg = Registry::new();
        reg.counter("ticks_total", &[]).add(9);
        assert!(reg.to_prometheus().contains("ticks_total 9\n"));
    }
}
