//! A last-value gauge.
//!
//! Counters and histograms cover everything monotonic, but the spot-check
//! sampling layer exports a *model* quantity — the per-device detection
//! probability `P(detect within k epochs)` — that moves in both
//! directions as coverage knobs change. A gauge is one atomic `u64`
//! holding the latest set value; no shards, because gauges are written
//! from the single-threaded control loop and read on the cold export
//! path.
//!
//! Values are plain `u64`. Fractional quantities export in fixed-point
//! per-mille (the convention the service layer already uses for link
//! fault rates), keeping both exporters integer-only and byte-stable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A last-value-wins gauge, cheap to set from any thread.
///
/// Cloning is shallow: clones share the same cell, so the handle held
/// by an instrumented component and the registry's copy always agree.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current value (relaxed; last writer wins).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(250);
        g.set(984);
        assert_eq!(g.get(), 984);
    }

    #[test]
    fn clones_share_state() {
        let a = Gauge::new();
        let b = a.clone();
        a.set(7);
        assert_eq!(b.get(), 7);
        b.set(3);
        assert_eq!(a.get(), 3);
    }
}
