//! Property-based histogram suite — the same algebra `hist_fuzz.rs`
//! checks with a seeded PRNG, restated as proptest strategies so
//! failures shrink to minimal counterexamples.
//!
// Entire suite gated: `proptest` is not vendored in this dependency-free
// tree. Build with `--features proptest` after re-adding the dev-dependency
// to run it.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sage_telemetry::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Magnitude-skewed values so every bucket is reachable.
fn value() -> impl Strategy<Value = u64> {
    (0u32..65).prop_flat_map(|bits| {
        if bits == 0 {
            Just(0u64).boxed()
        } else {
            (0u64..=u64::MAX >> (64 - bits)).boxed()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn recorded_value_within_reported_bucket(v in value()) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi);
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.buckets[i], 1);
        prop_assert_eq!(snap.sum, v);
    }

    #[test]
    fn merge_commutes(a in prop::collection::vec(value(), 0..64),
                      b in prop::collection::vec(value(), 0..64)) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_associates(a in prop::collection::vec(value(), 0..32),
                        b in prop::collection::vec(value(), 0..32),
                        c in prop::collection::vec(value(), 0..32)) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa;
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_union(values in prop::collection::vec(value(), 1..128),
                          split in 0usize..128) {
        let split = split % values.len();
        let mut merged = snapshot_of(&values[..split]);
        merged.merge(&snapshot_of(&values[split..]));
        prop_assert_eq!(merged, snapshot_of(&values));
    }

    #[test]
    fn percentiles_monotone(values in prop::collection::vec(value(), 1..128),
                            mut qs in prop::collection::vec(0.001f64..=1.0, 2..8)) {
        let snap = snapshot_of(&values);
        qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let ps: Vec<u64> = qs.iter().map(|&q| snap.percentile(q).unwrap()).collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles not monotone: {:?}", ps);
        }
    }

    #[test]
    fn percentile_brackets_exact(values in prop::collection::vec(value(), 1..128)) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let reported = snap.percentile(q).unwrap();
            prop_assert!(reported >= exact);
            prop_assert_eq!(bucket_index(reported), bucket_index(exact));
        }
    }
}
