//! Seeded deterministic fuzz of the log2 histogram — the algebraic
//! properties the exporters and the merge-based aggregation rely on,
//! checked over a few hundred pseudo-random workloads in every
//! `cargo test`. A proptest-shaped twin with shrinking lives in
//! `hist_properties.rs` behind the `proptest` feature gate.

use sage_telemetry::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};

/// splitmix64: tiny, seedable, good-enough dispersion for fuzz inputs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a value whose magnitude is itself random (uniform draws would
/// almost never land in the low buckets).
fn skewed_value(state: &mut u64) -> u64 {
    let bits = splitmix64(state) % 65;
    if bits == 0 {
        return 0;
    }
    splitmix64(state) >> (64 - bits)
}

fn random_snapshot(state: &mut u64, samples: usize) -> HistogramSnapshot {
    let h = Histogram::new();
    for _ in 0..samples {
        h.record(skewed_value(state));
    }
    h.snapshot()
}

#[test]
fn recorded_values_land_within_their_buckets_bounds() {
    let mut state = 0xD1CE;
    for _ in 0..2000 {
        let v = skewed_value(&mut state);
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        assert!(
            lo <= v && v <= hi,
            "value {v} outside bucket {i} bounds [{lo}, {hi}]"
        );

        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[i], 1, "value {v} must land in bucket {i}");
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum, v);
    }
}

#[test]
fn merge_is_commutative() {
    let mut state = 0xC0FF;
    for round in 0..100 {
        let a = random_snapshot(&mut state, (round % 17) * 3);
        let b = random_snapshot(&mut state, (round % 13) * 5);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "round {round}: a∪b != b∪a");
    }
}

#[test]
fn merge_is_associative() {
    let mut state = 0xA550;
    for round in 0..100 {
        let a = random_snapshot(&mut state, (round % 7) * 4);
        let b = random_snapshot(&mut state, (round % 11) * 2);
        let c = random_snapshot(&mut state, (round % 5) * 6);
        let mut left = a; // (a ∪ b) ∪ c
        left.merge(&b);
        left.merge(&c);
        let mut bc = b; // a ∪ (b ∪ c)
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "round {round}: merge not associative");
    }
}

#[test]
fn merge_agrees_with_recording_the_union() {
    let mut state = 0x11E6;
    for round in 0..50 {
        let mut values = Vec::new();
        for _ in 0..(round % 19) * 3 + 1 {
            values.push(skewed_value(&mut state));
        }
        let split = values.len() / 2;
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &values[..split] {
            ha.record(v);
        }
        for &v in &values[split..] {
            hb.record(v);
        }
        for &v in &values {
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        assert_eq!(merged, hall.snapshot(), "round {round}");
    }
}

#[test]
fn percentiles_are_monotone_in_q() {
    let mut state = 0x9E7C;
    for round in 0..100 {
        let snap = random_snapshot(&mut state, (round % 29) * 4 + 1);
        let qs = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0];
        let ps: Vec<u64> = qs.iter().map(|&q| snap.percentile(q).unwrap()).collect();
        for w in ps.windows(2) {
            assert!(
                w[0] <= w[1],
                "round {round}: percentiles not monotone {ps:?}"
            );
        }
    }
}

#[test]
fn percentile_brackets_the_exact_nearest_rank() {
    // The histogram interpolates within the bucket holding the ranked
    // observation, so the report lands in the exact nearest-rank
    // value's own log2 bucket — within 2x of the exact answer, and no
    // longer pinned to the bucket's upper bound.
    let mut state = 0xBEEF;
    for round in 0..50 {
        let n = (round % 23) * 4 + 1;
        let mut values = Vec::with_capacity(n);
        let h = Histogram::new();
        for _ in 0..n {
            let v = skewed_value(&mut state);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            let reported = snap.percentile(q).unwrap();
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                (lo..=hi).contains(&reported),
                "round {round} q={q}: reported {reported} outside exact's bucket \
                 [{lo}, {hi}] (exact {exact})"
            );
        }
    }
}

#[test]
fn bucket_bounds_partition_the_u64_range() {
    let mut expected_lo = 0u64;
    for i in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(
            lo,
            expected_lo,
            "bucket {i} must start where {} ended",
            i.max(1) - 1
        );
        assert!(lo <= hi);
        if i + 1 < BUCKETS {
            expected_lo = hi + 1;
        } else {
            assert_eq!(hi, u64::MAX, "last bucket must close the range");
        }
    }
}
