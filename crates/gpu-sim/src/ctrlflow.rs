//! Warp divergence handling: the mask/reconvergence stack driven by
//! `BSSY`/`BSYNC`, in the style of Volta-and-later branch
//! synchronization.

use crate::error::{Result, SimError};
use crate::warp::Warp;
use sage_isa::INSN_BYTES;

/// One reconvergence-stack entry, pushed by `BSSY`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyncEntry {
    /// Byte address at which the paths reconverge (the `BSYNC`).
    pub rejoin_pc: u32,
    /// Active mask when the region was entered.
    pub orig_mask: u32,
    /// Lanes (and their target) that took a divergent branch and have not
    /// run yet.
    pub pending: Option<(u32, u32)>,
}

/// Applies a (possibly divergent) predicated branch.
///
/// `taken` is the lane mask (already intersected with the active mask)
/// that takes the branch to `target`. Uniform cases simply set or advance
/// the PC; a split parks the taken lanes in the innermost `BSSY` entry and
/// continues with the fall-through lanes.
pub fn branch(warp: &mut Warp, taken: u32, target: u32) -> Result<()> {
    let active = warp.active;
    if taken == active {
        warp.pc = target;
        return Ok(());
    }
    if taken == 0 {
        warp.pc += INSN_BYTES as u32;
        return Ok(());
    }
    let pc = warp.pc;
    let Some(top) = warp.sync_stack.last_mut() else {
        return Err(SimError::IllegalInstruction {
            pc,
            what: "divergent branch outside a BSSY region",
        });
    };
    if top.pending.is_some() {
        return Err(SimError::IllegalInstruction {
            pc,
            what: "second divergent branch in one BSSY region",
        });
    }
    top.pending = Some((taken, target));
    warp.active = active & !taken;
    warp.pc += INSN_BYTES as u32;
    Ok(())
}

/// Executes `BSYNC`: runs parked lanes if any, otherwise reconverges and
/// pops the entry.
pub fn bsync(warp: &mut Warp) -> Result<()> {
    let pc = warp.pc;
    let Some(top) = warp.sync_stack.last_mut() else {
        return Err(SimError::IllegalInstruction {
            pc,
            what: "BSYNC with empty reconvergence stack",
        });
    };
    if let Some((mask, target)) = top.pending.take() {
        let runnable = mask & warp.live;
        if runnable != 0 {
            warp.active = runnable;
            warp.pc = target;
            return Ok(());
        }
        // All parked lanes exited; fall through to reconverge.
    }
    let entry = warp.sync_stack.pop().expect("stack checked non-empty");
    warp.active = entry.orig_mask & warp.live;
    warp.pc += INSN_BYTES as u32;
    Ok(())
}

/// Retires `mask` lanes (predicated `EXIT`) and finds the next lanes to
/// run. Returns `true` when the whole warp has retired.
pub fn exit_lanes(warp: &mut Warp, mask: u32) -> Result<bool> {
    warp.live &= !mask;
    warp.active &= !mask;
    if warp.active != 0 {
        warp.pc += INSN_BYTES as u32;
        return Ok(false);
    }
    // The currently active path has fully exited: unwind the stack.
    while let Some(top) = warp.sync_stack.last_mut() {
        if let Some((pmask, target)) = top.pending.take() {
            let runnable = pmask & warp.live;
            if runnable != 0 {
                warp.active = runnable;
                warp.pc = target;
                return Ok(false);
            }
            continue; // parked lanes all dead; check same entry's rejoin
        }
        let entry = warp.sync_stack.pop().expect("stack checked non-empty");
        let runnable = entry.orig_mask & warp.live;
        if runnable != 0 {
            warp.active = runnable;
            warp.pc = entry.rejoin_pc;
            return Ok(false);
        }
    }
    if warp.live == 0 {
        warp.done = true;
        Ok(true)
    } else {
        Err(SimError::IllegalInstruction {
            pc: warp.pc,
            what: "live lanes unreachable after EXIT (corrupt divergence state)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp() -> Warp {
        Warp::new(0, 0, 0, 8)
    }

    #[test]
    fn uniform_branch_taken_and_fallthrough() {
        let mut w = warp();
        w.pc = 32;
        let m = w.active;
        branch(&mut w, m, 128).unwrap();
        assert_eq!(w.pc, 128);
        branch(&mut w, 0, 256).unwrap();
        assert_eq!(w.pc, 144);
    }

    #[test]
    fn divergent_branch_requires_bssy() {
        let mut w = warp();
        assert!(matches!(
            branch(&mut w, 1, 64),
            Err(SimError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn if_else_reconverges() {
        let mut w = warp();
        // BSSY region rejoining at 100.
        w.sync_stack.push(SyncEntry {
            rejoin_pc: 1600,
            orig_mask: u32::MAX,
            pending: None,
        });
        w.pc = 16;
        // Odd lanes take the branch to 800.
        let odd = 0xAAAA_AAAA;
        branch(&mut w, odd, 800).unwrap();
        assert_eq!(w.active, !odd);
        assert_eq!(w.pc, 32);

        // Fall-through path reaches BSYNC: switch to parked lanes.
        w.pc = 1600;
        bsync(&mut w).unwrap();
        assert_eq!(w.active, odd);
        assert_eq!(w.pc, 800);

        // Taken path reaches BSYNC: reconverge past it.
        w.pc = 1600;
        bsync(&mut w).unwrap();
        assert_eq!(w.active, u32::MAX);
        assert_eq!(w.pc, 1616);
        assert!(w.sync_stack.is_empty());
    }

    #[test]
    fn exit_all_lanes_retires_warp() {
        let mut w = warp();
        assert!(exit_lanes(&mut w, u32::MAX).unwrap());
        assert!(w.done);
    }

    #[test]
    fn exit_partial_inside_divergence() {
        let mut w = warp();
        w.sync_stack.push(SyncEntry {
            rejoin_pc: 480,
            orig_mask: u32::MAX,
            pending: None,
        });
        let odd = 0xAAAA_AAAA;
        w.pc = 16;
        branch(&mut w, odd, 320).unwrap();
        // Fall-through (even) lanes exit.
        let m = w.active;
        let done = exit_lanes(&mut w, m).unwrap();
        assert!(!done);
        // Parked odd lanes resume at 320.
        assert_eq!(w.active, odd);
        assert_eq!(w.pc, 320);
        // They reach the BSYNC and reconverge with only odd lanes live.
        w.pc = 480;
        bsync(&mut w).unwrap();
        assert_eq!(w.active, odd);
        assert_eq!(w.live, odd);
        // Finally everyone exits.
        let m = w.active;
        assert!(exit_lanes(&mut w, m).unwrap());
    }

    #[test]
    fn bsync_skips_fully_exited_pending() {
        let mut w = warp();
        w.sync_stack.push(SyncEntry {
            rejoin_pc: 480,
            orig_mask: u32::MAX,
            pending: None,
        });
        w.pc = 16;
        let taken = 0x0000_FFFF;
        branch(&mut w, taken, 320).unwrap();
        // Kill the parked lanes through an (artificial) exit of the other
        // path... they are parked, so exit the active path first:
        w.live &= !taken; // parked lanes die (e.g. via a prior EXIT path)
        w.pc = 480;
        bsync(&mut w).unwrap();
        // Pending skipped, reconverged on surviving lanes.
        assert_eq!(w.active, !taken);
        assert_eq!(w.pc, 496);
    }
}
