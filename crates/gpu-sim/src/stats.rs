//! Execution statistics: issue counts, stall breakdown, cache behaviour.
//!
//! These counters back the paper's evaluation: utilization as a fraction
//! of peak issue rate (Table 1 "% of GPU peak perf.") and the stall-reason
//! breakdown ("99% of all pipeline stalls … caused by the fact that no
//! instructions are available in the instruction cache", §7.1).

use sage_isa::{Opcode, Pipeline};

/// Why a scheduler slot went unused for one cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StallReason {
    /// A warp was ready but its instruction was still being fetched
    /// (instruction-cache miss).
    InstructionFetch,
    /// All warps were waiting on scoreboard (memory) dependencies.
    Scoreboard,
    /// All warps were stalled by their control-info stall field.
    StallField,
    /// The required dispatch port was busy.
    PortBusy,
    /// All warps were waiting at a thread-block barrier.
    Barrier,
    /// No resident warp (partition empty or all exited).
    NoWarp,
}

impl StallReason {
    /// All reasons, for iteration in reports.
    pub const ALL: [StallReason; 6] = [
        StallReason::InstructionFetch,
        StallReason::Scoreboard,
        StallReason::StallField,
        StallReason::PortBusy,
        StallReason::Barrier,
        StallReason::NoWarp,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::InstructionFetch => "ifetch",
            StallReason::Scoreboard => "scoreboard",
            StallReason::StallField => "stall-field",
            StallReason::PortBusy => "port-busy",
            StallReason::Barrier => "barrier",
            StallReason::NoWarp => "no-warp",
        }
    }
}

/// Aggregated statistics for one kernel execution (whole grid).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct KernelStats {
    /// Total cycles from launch to grid completion (max over SMs).
    pub cycles: u64,
    /// Instructions issued, by pipeline.
    pub issued_fma: u64,
    /// Instructions issued to the ALU pipeline.
    pub issued_alu: u64,
    /// Instructions issued to the load/store pipeline.
    pub issued_mem: u64,
    /// Instructions issued to the control pipeline.
    pub issued_control: u64,
    /// Scheduler-slot cycles with no issue, by reason.
    pub stalls: [u64; 6],
    /// Scheduler-slot cycles total (cycles × partitions with resident
    /// warps, summed over SMs).
    pub slot_cycles: u64,
    /// Instruction-cache hits per level: [L0, L1, L2].
    pub icache_hits: [u64; 3],
    /// Instruction-cache fills from device memory.
    pub icache_mem_fills: u64,
    /// Global memory loads executed (per warp instruction, not per lane).
    pub gmem_loads: u64,
    /// Global memory stores executed.
    pub gmem_stores: u64,
    /// Global atomics executed.
    pub gmem_atomics: u64,
    /// Shared memory accesses executed.
    pub smem_accesses: u64,
    /// Thread-block barriers executed (per warp arrival).
    pub barriers: u64,
    /// Register read-after-write hazard violations detected by the
    /// validation checker (0 for correctly scheduled code).
    pub hazard_violations: u64,
    /// Instructions issued per opcode, indexed by opcode encoding
    /// (`Opcode::ALL` order) — the dispatch mix the telemetry fold
    /// exports as the top-issued opcodes.
    pub opcode_issues: [u64; 32],
}

impl KernelStats {
    /// Total instructions issued across all pipelines.
    pub fn issued_total(&self) -> u64 {
        self.issued_fma + self.issued_alu + self.issued_mem + self.issued_control
    }

    /// Fraction of peak issue rate achieved: issued instructions over
    /// available scheduler-slot cycles (1 instruction per partition per
    /// cycle is the peak, paper §7.1).
    pub fn utilization(&self) -> f64 {
        if self.slot_cycles == 0 {
            0.0
        } else {
            self.issued_total() as f64 / self.slot_cycles as f64
        }
    }

    /// Adds a stall observation.
    pub fn record_stall(&mut self, reason: StallReason) {
        self.stalls[reason as usize] += 1;
    }

    /// Stall cycles attributed to `reason`.
    pub fn stall(&self, reason: StallReason) -> u64 {
        self.stalls[reason as usize]
    }

    /// Total stall cycles across all reasons.
    pub fn stall_total(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Fraction of all stalls attributed to `reason` (0 if no stalls).
    pub fn stall_fraction(&self, reason: StallReason) -> f64 {
        let total = self.stall_total();
        if total == 0 {
            0.0
        } else {
            self.stall(reason) as f64 / total as f64
        }
    }

    /// Records an issue of `op`: bumps both its pipeline's counter and
    /// the per-opcode dispatch counter.
    pub fn record_issue(&mut self, op: Opcode) {
        match op.pipeline() {
            Pipeline::Fma => self.issued_fma += 1,
            Pipeline::Alu => self.issued_alu += 1,
            Pipeline::Mem => self.issued_mem += 1,
            Pipeline::Control => self.issued_control += 1,
        }
        self.opcode_issues[op as usize] += 1;
    }

    /// The `k` most-issued opcodes, descending by count (ties broken by
    /// encoding order); opcodes never issued are omitted.
    pub fn top_opcodes(&self, k: usize) -> Vec<(Opcode, u64)> {
        let mut v: Vec<(Opcode, u64)> = Opcode::ALL
            .iter()
            .map(|&op| (op, self.opcode_issues[op as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then((a.0 as u8).cmp(&(b.0 as u8))));
        v.truncate(k);
        v
    }

    /// Renders a profiler-style report (the "speed of light" summary a
    /// GPU profiler prints — utilization, pipe mix, stall breakdown,
    /// cache behaviour), used by the §7.1 analysis.
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycles {:>12}   issued {:>12}   utilization {:>5.1}%",
            self.cycles,
            self.issued_total(),
            self.utilization() * 100.0
        );
        let _ = writeln!(
            out,
            "pipes  FMA {} / ALU {} / MEM {} / CTL {}",
            self.issued_fma, self.issued_alu, self.issued_mem, self.issued_control
        );
        let total_stalls = self.stall_total().max(1);
        let _ = write!(out, "stalls ");
        for reason in StallReason::ALL {
            let n = self.stall(reason);
            if n > 0 {
                let _ = write!(
                    out,
                    "{} {:.0}%  ",
                    reason.label(),
                    100.0 * n as f64 / total_stalls as f64
                );
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "icache hits L0 {} / L1 {} / L2 {} / mem fills {}",
            self.icache_hits[0], self.icache_hits[1], self.icache_hits[2], self.icache_mem_fills
        );
        let _ = writeln!(
            out,
            "memory loads {} stores {} atomics {} smem {} barriers {}",
            self.gmem_loads, self.gmem_stores, self.gmem_atomics, self.smem_accesses, self.barriers
        );
        out
    }

    /// Merges another SM's statistics into this grid aggregate.
    pub fn merge(&mut self, other: &KernelStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.issued_fma += other.issued_fma;
        self.issued_alu += other.issued_alu;
        self.issued_mem += other.issued_mem;
        self.issued_control += other.issued_control;
        for k in 0..self.stalls.len() {
            self.stalls[k] += other.stalls[k];
        }
        self.slot_cycles += other.slot_cycles;
        for k in 0..3 {
            self.icache_hits[k] += other.icache_hits[k];
        }
        self.icache_mem_fills += other.icache_mem_fills;
        self.gmem_loads += other.gmem_loads;
        self.gmem_stores += other.gmem_stores;
        self.gmem_atomics += other.gmem_atomics;
        self.smem_accesses += other.smem_accesses;
        self.barriers += other.barriers;
        self.hazard_violations += other.hazard_violations;
        for k in 0..self.opcode_issues.len() {
            self.opcode_issues[k] += other.opcode_issues[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = KernelStats {
            slot_cycles: 100,
            issued_fma: 40,
            issued_alu: 35,
            ..Default::default()
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.issued_total(), 75);
    }

    #[test]
    fn stall_fractions() {
        let mut s = KernelStats::default();
        for _ in 0..99 {
            s.record_stall(StallReason::InstructionFetch);
        }
        s.record_stall(StallReason::Scoreboard);
        assert!((s.stall_fraction(StallReason::InstructionFetch) - 0.99).abs() < 1e-12);
        assert_eq!(s.stall_total(), 100);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_counters() {
        let mut a = KernelStats {
            cycles: 10,
            issued_alu: 5,
            slot_cycles: 20,
            ..Default::default()
        };
        let b = KernelStats {
            cycles: 30,
            issued_alu: 7,
            slot_cycles: 40,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.issued_alu, 12);
        assert_eq!(a.slot_cycles, 60);
    }

    #[test]
    fn report_mentions_the_load_bearing_numbers() {
        let mut s = KernelStats {
            cycles: 1000,
            slot_cycles: 4000,
            issued_fma: 1500,
            issued_alu: 1500,
            icache_hits: [10, 5, 2],
            ..Default::default()
        };
        s.record_stall(StallReason::InstructionFetch);
        let r = s.report();
        assert!(r.contains("75.0%"), "{r}");
        assert!(r.contains("ifetch"), "{r}");
        assert!(r.contains("FMA 1500"), "{r}");
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = KernelStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.stall_fraction(StallReason::Barrier), 0.0);
        assert!(s.top_opcodes(8).is_empty());
    }

    #[test]
    fn opcode_dispatch_counts_rank_and_merge() {
        let mut a = KernelStats::default();
        for _ in 0..5 {
            a.record_issue(Opcode::Imad);
        }
        for _ in 0..3 {
            a.record_issue(Opcode::Lop3);
        }
        a.record_issue(Opcode::Bra);
        // Pipeline counters stay consistent with the opcode counters.
        assert_eq!(a.issued_fma, 5);
        assert_eq!(a.issued_alu, 3);
        assert_eq!(a.issued_control, 1);
        assert_eq!(a.top_opcodes(2), vec![(Opcode::Imad, 5), (Opcode::Lop3, 3)]);
        let mut b = KernelStats::default();
        for _ in 0..4 {
            b.record_issue(Opcode::Lop3);
        }
        a.merge(&b);
        // After the merge LOP3 (7) overtakes IMAD (5).
        assert_eq!(
            a.top_opcodes(8),
            vec![(Opcode::Lop3, 7), (Opcode::Imad, 5), (Opcode::Bra, 1)]
        );
    }
}
