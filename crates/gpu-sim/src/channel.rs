//! Command channels and the command processor front-end (paper §2:
//! "Commands to the GPU are transmitted using a set of command queues
//! known as *channels*. The GPU's command processor receives these
//! commands and forwards them to the corresponding engines.").
//!
//! Channels belong to contexts, but — as on the real hardware the paper
//! targets — nothing stops one context's channel from addressing another
//! context's memory: the isolation gap the SAGE threat model assumes.

use std::collections::VecDeque;

use crate::{
    device::{ContextId, Device, LaunchParams, RunReport},
    error::{Result, SimError},
};

/// Opaque channel identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChannelId(pub u32);

/// A command submitted to a channel.
#[derive(Clone, Debug)]
pub enum Command {
    /// Allocate device memory; completes with [`Completion::Alloc`].
    MemAlloc {
        /// Requested size in bytes.
        bytes: u32,
    },
    /// DMA host → device (through the tappable bus).
    MemcpyH2D {
        /// Destination device address.
        addr: u32,
        /// Payload.
        data: Vec<u8>,
    },
    /// DMA device → host; completes with [`Completion::Bytes`].
    MemcpyD2H {
        /// Source device address.
        addr: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Queue a kernel launch; completes with [`Completion::Launched`].
    Launch(LaunchParams),
    /// Execute everything queued so far; completes with
    /// [`Completion::Ran`].
    RunToCompletion,
}

/// The completion record of one processed command.
///
/// `Bytes` dwarfs the other variants, but completions are created a
/// handful of times per session (one per queued command), never stored
/// in bulk — boxing the payload would only add a hop for every D2H read.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Completion {
    /// Command had no value to return.
    Done,
    /// Result of [`Command::MemAlloc`].
    Alloc(u32),
    /// Result of [`Command::MemcpyD2H`].
    Bytes(Vec<u8>),
    /// Launch id within the next run.
    Launched(usize),
    /// Result of [`Command::RunToCompletion`].
    Ran(RunReport),
}

/// One command queue.
#[derive(Debug)]
pub struct Channel {
    /// The owning context (informational only — no isolation, §2).
    pub ctx: ContextId,
    queue: VecDeque<Command>,
}

/// The command-processor front-end: a set of channels multiplexed onto a
/// device.
#[derive(Default)]
pub struct CommandProcessor {
    channels: Vec<Channel>,
}

impl CommandProcessor {
    /// Creates an empty command processor.
    pub fn new() -> CommandProcessor {
        CommandProcessor::default()
    }

    /// Creates a channel for `ctx`.
    pub fn create_channel(&mut self, ctx: ContextId) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(Channel {
            ctx,
            queue: VecDeque::new(),
        });
        id
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Enqueues a command on a channel.
    ///
    /// # Panics
    ///
    /// Panics on an unknown channel id.
    pub fn submit(&mut self, ch: ChannelId, cmd: Command) {
        self.channels[ch.0 as usize].queue.push_back(cmd);
    }

    /// Pending commands on a channel.
    pub fn pending(&self, ch: ChannelId) -> usize {
        self.channels[ch.0 as usize].queue.len()
    }

    /// Processes all queued commands against `dev`, draining channels
    /// round-robin one command at a time (the interleaving the command
    /// processor performs between contexts). Returns per-command
    /// completions tagged with their channel.
    pub fn process(&mut self, dev: &mut Device) -> Result<Vec<(ChannelId, Completion)>> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            for idx in 0..self.channels.len() {
                let Some(cmd) = self.channels[idx].queue.pop_front() else {
                    continue;
                };
                progressed = true;
                let completion = match cmd {
                    Command::MemAlloc { bytes } => Completion::Alloc(dev.alloc(bytes)?),
                    Command::MemcpyH2D { addr, data } => {
                        dev.memcpy_h2d(addr, &data)?;
                        Completion::Done
                    }
                    Command::MemcpyD2H { addr, len } => {
                        Completion::Bytes(dev.memcpy_d2h(addr, len)?)
                    }
                    Command::Launch(params) => Completion::Launched(dev.launch(params)?),
                    Command::RunToCompletion => Completion::Ran(dev.run()?),
                };
                out.push((ChannelId(idx as u32), completion));
            }
            if !progressed {
                break;
            }
        }
        Ok(out)
    }
}

/// Convenience: expects an `Alloc` completion.
pub fn expect_alloc(c: &Completion) -> Result<u32> {
    match c {
        Completion::Alloc(a) => Ok(*a),
        other => Err(SimError::BadCopy(format!(
            "expected Alloc completion, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use sage_isa::ProgramBuilder;
    use sage_isa::Reg;

    fn store42_kernel() -> Vec<u8> {
        // [param0] = 42
        let mut b = ProgramBuilder::new();
        b.ctrl(sage_isa::CtrlInfo::stall(1).with_write_bar(0));
        b.ldg(Reg(1), Reg(0), 0);
        b.ctrl(sage_isa::CtrlInfo::stall(4).with_wait(0));
        b.mov(Reg(2), sage_isa::Operand::Imm(42));
        b.ctrl(sage_isa::CtrlInfo::stall(4));
        b.stg(Reg(1), 0, Reg(2));
        b.exit();
        b.build().unwrap().encode()
    }

    #[test]
    fn end_to_end_through_channels() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let ctx = dev.create_context();
        let mut cp = CommandProcessor::new();
        let ch = cp.create_channel(ctx);

        cp.submit(ch, Command::MemAlloc { bytes: 64 });
        cp.submit(ch, Command::MemAlloc { bytes: 1024 });
        let done = cp.process(&mut dev).unwrap();
        let out_buf = expect_alloc(&done[0].1).unwrap();
        let code_buf = expect_alloc(&done[1].1).unwrap();

        cp.submit(
            ch,
            Command::MemcpyH2D {
                addr: code_buf,
                data: store42_kernel(),
            },
        );
        cp.submit(
            ch,
            Command::Launch(LaunchParams {
                ctx,
                entry_pc: code_buf,
                grid_dim: 1,
                block_dim: 32,
                regs_per_thread: 8,
                smem_bytes: 0,
                params: vec![out_buf],
            }),
        );
        cp.submit(ch, Command::RunToCompletion);
        cp.submit(
            ch,
            Command::MemcpyD2H {
                addr: out_buf,
                len: 4,
            },
        );
        let done = cp.process(&mut dev).unwrap();
        let Completion::Bytes(bytes) = &done.last().unwrap().1 else {
            panic!("expected bytes");
        };
        assert_eq!(u32::from_le_bytes(bytes[..4].try_into().unwrap()), 42);
    }

    #[test]
    fn channels_interleave_round_robin() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let ctx_a = dev.create_context();
        let ctx_b = dev.create_context();
        let mut cp = CommandProcessor::new();
        let a = cp.create_channel(ctx_a);
        let b = cp.create_channel(ctx_b);
        cp.submit(a, Command::MemAlloc { bytes: 16 });
        cp.submit(a, Command::MemAlloc { bytes: 16 });
        cp.submit(b, Command::MemAlloc { bytes: 16 });
        let done = cp.process(&mut dev).unwrap();
        // Round-robin: a, b, a.
        let order: Vec<u32> = done.iter().map(|(c, _)| c.0).collect();
        assert_eq!(order, vec![0, 1, 0]);
    }

    #[test]
    fn no_isolation_between_contexts() {
        // A channel of context B reads memory written through context A's
        // channel — the §2 observation the threat model builds on.
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let ctx_a = dev.create_context();
        let ctx_b = dev.create_context();
        let mut cp = CommandProcessor::new();
        let a = cp.create_channel(ctx_a);
        let b = cp.create_channel(ctx_b);

        cp.submit(a, Command::MemAlloc { bytes: 16 });
        let done = cp.process(&mut dev).unwrap();
        let secret = expect_alloc(&done[0].1).unwrap();
        cp.submit(
            a,
            Command::MemcpyH2D {
                addr: secret,
                data: b"victim secret!!!".to_vec(),
            },
        );
        // Context B snoops it.
        cp.submit(
            b,
            Command::MemcpyD2H {
                addr: secret,
                len: 16,
            },
        );
        let done = cp.process(&mut dev).unwrap();
        let Completion::Bytes(stolen) = &done[1].1 else {
            panic!("expected bytes");
        };
        assert_eq!(stolen, b"victim secret!!!");
    }

    #[test]
    fn errors_propagate() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        let ctx = dev.create_context();
        let mut cp = CommandProcessor::new();
        let ch = cp.create_channel(ctx);
        cp.submit(
            ch,
            Command::MemcpyD2H {
                addr: 0xFFFF_0000,
                len: 64,
            },
        );
        assert!(cp.process(&mut dev).is_err());
    }
}
