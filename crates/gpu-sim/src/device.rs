//! The device: memory allocator, contexts, command processor/channels,
//! DMA engine and grid scheduling across SMs.
//!
//! Security-relevant modelling choices (paper §2, §3.3):
//! - contexts share one physical memory with **no isolation**;
//! - the host can read/write device memory directly ([`Device::peek`] /
//!   [`Device::poke`], the MMIO path the adversary uses);
//! - every host↔device transfer and launch command can be observed and
//!   tampered with by an installed [`BusTap`] (the PCIe interposer the
//!   threat model grants the adversary).

use crate::{
    config::DeviceConfig,
    error::{Result, SimError},
    fault::{FaultHook, RunEffects},
    mem::GlobalMemory,
    sm::{JitterRng, PendingBlock, Sm, SmReport},
    stats::KernelStats,
};

/// How [`Device::run`] executes the SMs of a grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// One SM at a time on the calling thread, ticking every cycle (no
    /// stall fast-forwarding). The slow reference mode — `--sequential`
    /// in the benchmark harness.
    Sequential,
    /// One worker thread per available core pulling whole SMs off a
    /// queue, each SM fast-forwarding through all-stall windows. Bit-
    /// exact with [`ExecMode::Sequential`]: same checksums, same per-SM
    /// cycle counts, same stall breakdowns (SMs only interact through
    /// commutative global atomics, and per-SM timing jitter is seeded by
    /// `sm_id`, not by scheduling order).
    #[default]
    Parallel,
}

/// Opaque context identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ContextId(pub u32);

/// Kernel launch parameters.
#[derive(Clone, Debug)]
pub struct LaunchParams {
    /// Issuing context.
    pub ctx: ContextId,
    /// Entry PC: device byte address of the first instruction.
    pub entry_pc: u32,
    /// Number of thread blocks (x dimension).
    pub grid_dim: u32,
    /// Threads per block (multiple of 32).
    pub block_dim: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
    /// Kernel parameters; the device copies them to a parameter block
    /// whose address is placed in `R0` of every thread.
    pub params: Vec<u32>,
}

/// A PCIe interposer: observes and may tamper with every bus-level
/// operation. Installed by the adversary harness (`sage-attacks`).
/// `Send` so a tapped device can migrate across the attestation
/// service's worker threads.
pub trait BusTap: Send {
    /// Host-to-device copy about to be written at `addr`.
    fn on_h2d(&mut self, addr: u32, data: &mut Vec<u8>) {
        let _ = (addr, data);
    }
    /// Device-to-host copy about to be returned from `addr`.
    fn on_d2h(&mut self, addr: u32, data: &mut Vec<u8>) {
        let _ = (addr, data);
    }
    /// A kernel launch command in flight.
    fn on_launch(&mut self, params: &mut LaunchParams) {
        let _ = params;
    }
}

/// Report for one launch after [`Device::run`].
#[derive(Clone, Debug, Default)]
pub struct LaunchReport {
    /// Cycle at which the last block of this launch completed (max over
    /// SMs), measured from the start of the run.
    pub completion_cycle: u64,
    /// Instructions issued on behalf of this launch.
    pub issued: u64,
    /// Number of blocks executed.
    pub blocks: u32,
}

/// Report for a whole [`Device::run`].
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Aggregated device statistics (all launches).
    pub stats: KernelStats,
    /// Per-launch reports, indexed by the launch id returned from
    /// [`Device::launch`].
    pub launches: Vec<LaunchReport>,
    /// Completion cycle of the whole run.
    pub total_cycles: u64,
    /// Per-SM statistics in `sm_id` order (SMs that received no blocks
    /// are omitted).
    pub per_sm: Vec<(u32, KernelStats)>,
    /// Per-SM issue traces (present when tracing is enabled via
    /// [`Device::set_trace_capacity`]).
    pub traces: Vec<crate::trace::TraceBuffer>,
}

struct ContextInfo {
    #[allow(dead_code)]
    id: ContextId,
}

/// The simulated device.
pub struct Device {
    /// Device configuration (architecture + latencies).
    pub cfg: DeviceConfig,
    /// Device global memory (shared by all contexts).
    pub mem: GlobalMemory,
    alloc_next: u32,
    contexts: Vec<ContextInfo>,
    queued: Vec<LaunchParams>,
    bus_tap: Option<Box<dyn BusTap>>,
    fault_hook: Option<Box<dyn FaultHook>>,
    fault_runs: u64,
    timing_seed: u64,
    hazard_check: bool,
    /// Cycles spent on bus transfers since the last [`Device::take_bus_cycles`].
    bus_cycles: u64,
    launch_counter: usize,
    cycle_limit: u64,
    trace_capacity: Option<usize>,
    exec_mode: ExecMode,
    telemetry: Option<crate::telemetry::SimTelemetry>,
    /// Bump arena for per-run transient device state (launch parameter
    /// blocks): carved out of device memory lazily on first use, then
    /// *reset* — not reallocated — at every run, so a long-lived device
    /// no longer leaks address space one parameter block per launch.
    param_arena: Option<ParamArena>,
    /// Reusable host staging buffer for parameter-block DMA.
    param_stage: Vec<u8>,
}

/// The per-run parameter-block arena. [`Device::run`] rewinds `cursor`
/// to zero at entry and bumps it per launch; when a run needs more than
/// `capacity`, a larger region is carved and the old one is abandoned
/// (device memory is a bump allocator with no free, so growth is the
/// rare path and steady state allocates nothing).
struct ParamArena {
    base: u32,
    capacity: u32,
    cursor: u32,
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Device {
        let mem = GlobalMemory::new(cfg.gmem_bytes);
        Device {
            mem,
            alloc_next: 4096, // keep null page unmapped
            contexts: Vec::new(),
            queued: Vec::new(),
            bus_tap: None,
            fault_hook: None,
            fault_runs: 0,
            timing_seed: 0x5AEE_D001,
            hazard_check: false,
            bus_cycles: 0,
            launch_counter: 0,
            cycle_limit: 20_000_000_000,
            trace_capacity: None,
            exec_mode: ExecMode::default(),
            telemetry: None,
            param_arena: None,
            param_stage: Vec::new(),
            cfg,
        }
    }

    /// Attaches this device to a telemetry registry: every subsequent
    /// non-empty [`Device::run`] folds its aggregate issue/stall/cache
    /// stats and fault-hook applications into `sim_*` series labeled
    /// with `labels`. The per-cycle SM loops are untouched — the cost is
    /// a few relaxed `fetch_add`s per run.
    pub fn install_telemetry(&mut self, reg: &sage_telemetry::Registry, labels: &[(&str, &str)]) {
        self.telemetry = Some(crate::telemetry::SimTelemetry::new(reg, labels));
    }

    /// Selects how [`Device::run`] executes SMs (parallel + fast-forward
    /// by default; sequential tick-per-cycle as the reference mode).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Enables per-SM issue tracing on subsequent runs (last `capacity`
    /// issues per SM are retained in the [`RunReport`]).
    pub fn set_trace_capacity(&mut self, capacity: Option<usize>) {
        self.trace_capacity = capacity;
    }

    /// Sets the timing seed (run-to-run jitter; architectural values are
    /// unaffected).
    pub fn set_timing_seed(&mut self, seed: u64) {
        self.timing_seed = seed;
    }

    /// Enables the register-hazard validation checker.
    pub fn set_hazard_check(&mut self, on: bool) {
        self.hazard_check = on;
    }

    /// Sets a cycle budget per [`Device::run`] (runaway protection).
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Installs a bus interposer (adversary), returning any previous one.
    pub fn install_bus_tap(&mut self, tap: Box<dyn BusTap>) -> Option<Box<dyn BusTap>> {
        self.bus_tap.replace(tap)
    }

    /// Removes the bus interposer.
    pub fn remove_bus_tap(&mut self) -> Option<Box<dyn BusTap>> {
        self.bus_tap.take()
    }

    /// Installs a fault-injection hook (chaos engine), returning any
    /// previous one. Absent by default; when absent, [`Device::run`]
    /// pays a single `Option` check.
    pub fn install_fault_hook(&mut self, hook: Box<dyn FaultHook>) -> Option<Box<dyn FaultHook>> {
        self.fault_hook.replace(hook)
    }

    /// Removes the fault-injection hook.
    pub fn remove_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.fault_hook.take()
    }

    /// Counters of faults the installed hook has applied so far (zeros
    /// when no hook is installed).
    pub fn faults_applied(&self) -> crate::fault::FaultCounters {
        self.fault_hook
            .as_ref()
            .map(|h| h.applied())
            .unwrap_or_default()
    }

    /// Number of non-empty [`Device::run`]s so far (the run index the
    /// fault hook is keyed by).
    pub fn fault_run_index(&self) -> u64 {
        self.fault_runs
    }

    /// Creates a new context. Contexts have no memory isolation from each
    /// other (paper §2).
    pub fn create_context(&mut self) -> ContextId {
        let id = ContextId(self.contexts.len() as u32);
        self.contexts.push(ContextInfo { id });
        id
    }

    /// Allocates `bytes` of device memory (16-byte aligned); returns the
    /// base address.
    pub fn alloc(&mut self, bytes: u32) -> Result<u32> {
        let base = self.alloc_next;
        let aligned = (bytes as u64).div_ceil(16) * 16;
        let end = base as u64 + aligned;
        if end > self.mem.len() as u64 {
            return Err(SimError::OutOfMemory { requested: bytes });
        }
        self.alloc_next = end as u32;
        Ok(base)
    }

    /// Device-memory allocation watermark: the address the next
    /// [`Device::alloc`] would return. Steady-state runs keep this flat
    /// (per-run parameter blocks come from a reused arena); growth
    /// means genuinely new allocations.
    pub fn alloc_watermark(&self) -> u32 {
        self.alloc_next
    }

    /// Copies host bytes to device memory over the (tappable) bus.
    pub fn memcpy_h2d(&mut self, addr: u32, data: &[u8]) -> Result<()> {
        let mut buf = data.to_vec();
        if let Some(tap) = self.bus_tap.as_mut() {
            tap.on_h2d(addr, &mut buf);
        }
        self.bus_cycles += self.transfer_cycles(buf.len());
        self.mem.write_bytes(addr, &buf)
    }

    /// Copies device memory to the host over the (tappable) bus.
    pub fn memcpy_d2h(&mut self, addr: u32, len: u32) -> Result<Vec<u8>> {
        let mut buf = self.mem.read_bytes(addr, len)?.to_vec();
        if let Some(tap) = self.bus_tap.as_mut() {
            tap.on_d2h(addr, &mut buf);
        }
        self.bus_cycles += self.transfer_cycles(buf.len());
        Ok(buf)
    }

    fn transfer_cycles(&self, bytes: usize) -> u64 {
        // One-way latency plus ~16 bytes per cycle of bandwidth.
        self.cfg.lat.pcie as u64 + (bytes as u64) / 16
    }

    /// Direct MMIO read (adversary path: no driver, no tap, no timing).
    pub fn peek(&self, addr: u32, len: u32) -> Result<Vec<u8>> {
        Ok(self.mem.read_bytes(addr, len)?.to_vec())
    }

    /// Direct MMIO write (adversary path).
    pub fn poke(&mut self, addr: u32, data: &[u8]) -> Result<()> {
        self.mem.write_bytes(addr, data)
    }

    /// Returns and clears the accumulated bus-transfer cycles.
    pub fn take_bus_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.bus_cycles)
    }

    /// Queues a kernel launch; returns its launch id within the next
    /// [`Device::run`].
    pub fn launch(&mut self, params: LaunchParams) -> Result<usize> {
        let mut params = params;
        if let Some(tap) = self.bus_tap.as_mut() {
            tap.on_launch(&mut params);
        }
        if params.block_dim == 0 || !params.block_dim.is_multiple_of(32) {
            return Err(SimError::BadLaunch(format!(
                "block_dim {} is not a non-zero multiple of 32",
                params.block_dim
            )));
        }
        if params.grid_dim == 0 {
            return Err(SimError::BadLaunch("grid_dim is zero".into()));
        }
        if self.cfg.blocks_resident_per_sm(
            params.block_dim,
            params.regs_per_thread,
            params.smem_bytes,
        ) == 0
        {
            return Err(SimError::BadLaunch(format!(
                "block of {} threads / {} regs / {} B smem does not fit on an SM",
                params.block_dim, params.regs_per_thread, params.smem_bytes
            )));
        }
        let id = self.queued.len();
        self.queued.push(params);
        Ok(id)
    }

    /// Executes all queued launches to completion and reports statistics.
    ///
    /// Blocks are distributed round-robin over SMs in launch order; each
    /// SM interleaves resident blocks cycle by cycle. SMs are simulated
    /// independently (cross-SM memory ordering is not modelled beyond
    /// commutative atomics — sufficient for every workload in this
    /// reproduction, see DESIGN.md).
    pub fn run(&mut self) -> Result<RunReport> {
        let queued = std::mem::take(&mut self.queued);
        if queued.is_empty() {
            return Ok(RunReport::default());
        }
        let mut per_sm: Vec<Vec<PendingBlock>> = vec![Vec::new(); self.cfg.num_sms as usize];
        let mut launches: Vec<LaunchReport> = vec![LaunchReport::default(); queued.len()];

        // Rewind (or grow) the parameter-block arena for this run. Sizing
        // up front keeps the hot path a pure cursor bump per launch.
        let needed: u32 = queued
            .iter()
            .map(|lp| (lp.params.len() as u32 * 4).max(4).div_ceil(16) * 16)
            .sum();
        match &mut self.param_arena {
            Some(a) if a.capacity >= needed => a.cursor = 0,
            _ => {
                let base = self.alloc(needed)?;
                self.param_arena = Some(ParamArena {
                    base,
                    capacity: needed,
                    cursor: 0,
                });
            }
        }

        let mut rr = 0usize;
        for (launch_id, lp) in queued.iter().enumerate() {
            // Parameter block: bump-allocated from the per-run arena.
            let param_base = {
                let a = self.param_arena.as_mut().expect("arena sized above");
                let base = a.base + a.cursor;
                a.cursor += (lp.params.len() as u32 * 4).max(4).div_ceil(16) * 16;
                base
            };
            self.param_stage.clear();
            self.param_stage
                .extend(lp.params.iter().flat_map(|w| w.to_le_bytes()));
            self.mem.write_bytes(param_base, &self.param_stage)?;
            let submit_cycle = self.cfg.lat.pcie as u64 * (self.launch_counter as u64 + 1);
            self.launch_counter += 1;
            for cta in 0..lp.grid_dim {
                let n_sms = per_sm.len();
                per_sm[rr % n_sms].push(PendingBlock {
                    launch_id,
                    cta_id: cta,
                    block_dim: lp.block_dim,
                    grid_dim: lp.grid_dim,
                    entry_pc: lp.entry_pc,
                    regs_per_thread: lp.regs_per_thread,
                    smem_bytes: lp.smem_bytes,
                    param_base,
                    submit_cycle,
                });
                rr += 1;
            }
        }

        // Chaos engine: consult the fault hook once per run, after all
        // parameter DMA and before any SM starts. Memory faults (bit
        // flips) land now — corrupting code regions also corrupts the
        // icache lines decoded from them this run — while timing faults
        // come back as effects folded into the merge below.
        let effects: RunEffects = match self.fault_hook.as_mut() {
            Some(hook) => {
                let run_index = self.fault_runs;
                self.fault_runs += 1;
                hook.on_run(run_index, &self.mem)
            }
            None => {
                self.fault_runs += 1;
                RunEffects::default()
            }
        };

        // One job per SM that received blocks. All DMA (parameter blocks)
        // is done above, before any SM starts — the command-processor
        // boundary the worker threads synchronise at.
        let jobs: Vec<(u32, Vec<PendingBlock>)> = per_sm
            .into_iter()
            .enumerate()
            .filter(|(_, blocks)| !blocks.is_empty())
            .map(|(sm_id, blocks)| (sm_id as u32, blocks))
            .collect();
        let n_jobs = jobs.len();

        // Everything a worker needs, captured by value or as Sync refs
        // (Device itself is not Sync — the bus tap is an arbitrary boxed
        // trait object).
        let cfg = &self.cfg;
        let mem = &self.mem;
        let timing_seed = self.timing_seed;
        let hazard_check = self.hazard_check;
        let cycle_limit = self.cycle_limit;
        let trace_capacity = self.trace_capacity;
        let run_sm = |sm_id: u32, blocks: Vec<PendingBlock>, fast_forward: bool| {
            let mut sm = Sm::new(cfg, sm_id, blocks, timing_seed, hazard_check);
            sm.set_fast_forward(fast_forward);
            if let Some(cap) = trace_capacity {
                sm.set_trace(cap);
            }
            sm.run(mem, cycle_limit)
        };

        let mut results: Vec<Option<(u32, Result<SmReport>)>> = Vec::new();
        match self.exec_mode {
            ExecMode::Sequential => {
                for (sm_id, blocks) in jobs {
                    let report = run_sm(sm_id, blocks, false);
                    let failed = report.is_err();
                    results.push(Some((sm_id, report)));
                    if failed {
                        break;
                    }
                }
            }
            ExecMode::Parallel => {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(n_jobs)
                    .max(1);
                // Workers claim job indices from a shared counter; each
                // result lands in its job's slot, so the merge below is
                // in `sm_id` order no matter which worker ran which SM.
                type JobSlot = std::sync::Mutex<Option<(u32, Vec<PendingBlock>)>>;
                let job_slots: Vec<JobSlot> = jobs
                    .into_iter()
                    .map(|j| std::sync::Mutex::new(Some(j)))
                    .collect();
                let next = std::sync::atomic::AtomicUsize::new(0);
                let collected: Vec<(usize, u32, Result<SmReport>)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut local = Vec::new();
                                loop {
                                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    if i >= job_slots.len() {
                                        break;
                                    }
                                    let (sm_id, blocks) = job_slots[i]
                                        .lock()
                                        .expect("no poisoning")
                                        .take()
                                        .expect("each job claimed once");
                                    local.push((i, sm_id, run_sm(sm_id, blocks, true)));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("SM worker panicked"))
                        .collect()
                });
                results.resize_with(n_jobs, || None);
                for (i, sm_id, report) in collected {
                    results[i] = Some((sm_id, report));
                }
            }
        }

        // Deterministic merge in sm_id order (errors propagate in the
        // same order regardless of which worker hit them first).
        let mut stats = KernelStats::default();
        let mut total_cycles = 0u64;
        let mut traces = Vec::new();
        let mut per_sm_stats = Vec::new();
        for entry in results {
            let (sm_id, report) = entry.expect("every job produced a report");
            let mut report = report?;
            // Injected SM stall: the whole SM finishes `stall` cycles
            // later, so its cycle count and every launch completion it
            // contributed to move together.
            let stall = effects.stall_for(sm_id);
            report.stats.cycles += stall;
            total_cycles = total_cycles.max(report.stats.cycles);
            per_sm_stats.push((sm_id, report.stats.clone()));
            stats.merge(&report.stats);
            if let Some(t) = report.trace {
                traces.push(t);
            }
            for (launch_id, local) in report.launches {
                let lr = &mut launches[launch_id];
                lr.completion_cycle = lr.completion_cycle.max(local.completion + stall);
                lr.issued += local.issued;
                lr.blocks += local.blocks;
            }
        }
        // Injected clock skew: every completion the host observes is
        // shifted by the same amount (the device counter itself lies).
        if effects.clock_skew > 0 {
            total_cycles += effects.clock_skew;
            for lr in launches.iter_mut().filter(|lr| lr.blocks > 0) {
                lr.completion_cycle += effects.clock_skew;
            }
        }
        stats.cycles = total_cycles;
        self.launch_counter = 0;
        if let Some(t) = self.telemetry.as_mut() {
            let faults = self
                .fault_hook
                .as_ref()
                .map(|h| h.applied())
                .unwrap_or_default();
            t.observe_run(&stats, faults);
        }
        Ok(RunReport {
            stats,
            launches,
            total_cycles,
            per_sm: per_sm_stats,
            traces,
        })
    }

    /// Convenience: queue one launch and run it alone; returns its report
    /// plus the global stats.
    pub fn run_single(&mut self, params: LaunchParams) -> Result<(LaunchReport, KernelStats)> {
        let id = self.launch(params)?;
        let report = self.run()?;
        Ok((report.launches[id].clone(), report.stats))
    }

    /// A deterministic jitter source derived from the device timing seed
    /// (used by host-side latency modelling in higher layers).
    pub fn jitter(&self) -> JitterRng {
        JitterRng::new(self.timing_seed ^ 0xDEAD_10CC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_isa::ProgramBuilder;
    use sage_isa::Reg;

    fn device() -> Device {
        Device::new(DeviceConfig::sim_tiny())
    }

    /// Kernel: out[tid] = tid * 3 + cta_id, with out base in params[0].
    fn simple_kernel(dev: &mut Device) -> (u32, u32) {
        let out = dev.alloc(4096).unwrap();
        let mut b = ProgramBuilder::new();
        // R0 = param base (ABI). Load out-base into R1.
        b.ctrl(sage_isa::CtrlInfo::stall(1).with_write_bar(0));
        b.ldg(Reg(1), Reg(0), 0);
        b.s2r(Reg(2), sage_isa::SpecialReg::TidX);
        b.s2r(Reg(3), sage_isa::SpecialReg::CtaIdX);
        b.imad(Reg(4), Reg(2), 3u32.into(), Reg(3)); // tid*3 + cta
                                                     // addr = out + 4*(tid + cta*blockdim)
        b.s2r(Reg(5), sage_isa::SpecialReg::NTidX);
        b.imad(Reg(6), Reg(3), Reg(5).into(), Reg(2)); // cta*ntid + tid
        b.ctrl(sage_isa::CtrlInfo::stall(1).with_wait(0));
        b.lea(Reg(7), Reg(6), Reg(1).into(), 2); // out + 4*idx
        b.stg(Reg(7), 0, Reg(4));
        b.exit();
        let prog = b.build().unwrap();
        let code = dev.alloc(prog.byte_len() as u32).unwrap();
        dev.memcpy_h2d(code, &prog.encode()).unwrap();
        (code, out)
    }

    #[test]
    fn end_to_end_kernel_execution() {
        let mut dev = device();
        let ctx = dev.create_context();
        let (code, out) = simple_kernel(&mut dev);
        let (report, stats) = dev
            .run_single(LaunchParams {
                ctx,
                entry_pc: code,
                grid_dim: 4,
                block_dim: 64,
                regs_per_thread: 8,
                smem_bytes: 0,
                params: vec![out],
            })
            .unwrap();
        assert_eq!(report.blocks, 4);
        assert!(report.completion_cycle > 0);
        assert!(stats.issued_total() > 0);
        let bytes = dev.memcpy_d2h(out, 4 * 64 * 4).unwrap();
        for cta in 0..4u32 {
            for tid in 0..64u32 {
                let idx = (cta * 64 + tid) as usize;
                let v = u32::from_le_bytes(bytes[idx * 4..idx * 4 + 4].try_into().unwrap());
                assert_eq!(v, tid * 3 + cta, "cta {cta} tid {tid}");
            }
        }
    }

    #[test]
    fn telemetry_fold_exports_opcode_dispatch_mix() {
        let mut dev = device();
        let reg = sage_telemetry::Registry::new();
        dev.install_telemetry(&reg, &[("device", "t0")]);
        let ctx = dev.create_context();
        let (code, out) = simple_kernel(&mut dev);
        dev.run_single(LaunchParams {
            ctx,
            entry_pc: code,
            grid_dim: 4,
            block_dim: 64,
            regs_per_thread: 8,
            smem_bytes: 0,
            params: vec![out],
        })
        .unwrap();
        let series = reg.collect();
        let opcode_series: Vec<_> = series
            .iter()
            .filter(|(name, _, _)| name == "sim_opcode_issues_total")
            .collect();
        // The kernel issues IMAD, S2R, LDG, STG, LEA, EXIT — all within
        // the top-8 cut, each a distinct labeled series.
        assert!(
            opcode_series.len() >= 5,
            "expected a dispatch mix, got {opcode_series:?}"
        );
        let imad = opcode_series
            .iter()
            .find(|(_, labels, _)| labels.iter().any(|(k, v)| k == "opcode" && v == "IMAD"))
            .expect("IMAD series present");
        match imad.2 {
            sage_telemetry::MetricValue::Counter(n) => assert!(n > 0),
            ref v => panic!("unexpected metric value {v:?}"),
        }
    }

    #[test]
    fn launch_validation() {
        let mut dev = device();
        let ctx = dev.create_context();
        let bad = LaunchParams {
            ctx,
            entry_pc: 0,
            grid_dim: 1,
            block_dim: 48, // not a multiple of 32
            regs_per_thread: 8,
            smem_bytes: 0,
            params: vec![],
        };
        assert!(matches!(dev.launch(bad), Err(SimError::BadLaunch(_))));
        let too_big = LaunchParams {
            ctx,
            entry_pc: 0,
            grid_dim: 1,
            block_dim: 1024, // tiny device: max 256 threads/SM
            regs_per_thread: 8,
            smem_bytes: 0,
            params: vec![],
        };
        assert!(dev.launch(too_big).is_err());
    }

    #[test]
    fn allocation_bounds() {
        let mut dev = device();
        let a = dev.alloc(100).unwrap();
        let b = dev.alloc(100).unwrap();
        assert!(b >= a + 100);
        assert_eq!(b % 16, 0);
        assert!(dev.alloc(u32::MAX).is_err());
    }

    #[test]
    fn repeated_runs_reuse_the_param_arena() {
        let mut dev = device();
        let ctx = dev.create_context();
        let (code, out) = simple_kernel(&mut dev);
        let lp = || LaunchParams {
            ctx,
            entry_pc: code,
            grid_dim: 2,
            block_dim: 32,
            regs_per_thread: 8,
            smem_bytes: 0,
            params: vec![out],
        };
        dev.run_single(lp()).unwrap();
        let after_first = dev.alloc_watermark();
        for _ in 0..5 {
            dev.run_single(lp()).unwrap();
        }
        assert_eq!(
            dev.alloc_watermark(),
            after_first,
            "steady-state runs must not grow device memory (arena reuse)"
        );
    }

    #[test]
    fn bus_tap_sees_and_tampers_transfers() {
        struct FlipTap;
        impl BusTap for FlipTap {
            fn on_h2d(&mut self, _addr: u32, data: &mut Vec<u8>) {
                for b in data.iter_mut() {
                    *b ^= 0xFF;
                }
            }
        }
        let mut dev = device();
        let buf = dev.alloc(16).unwrap();
        dev.install_bus_tap(Box::new(FlipTap));
        dev.memcpy_h2d(buf, &[0x00, 0x0F]).unwrap();
        assert_eq!(dev.peek(buf, 2).unwrap(), vec![0xFF, 0xF0]);
        dev.remove_bus_tap();
        dev.memcpy_h2d(buf, &[0x00, 0x0F]).unwrap();
        assert_eq!(dev.peek(buf, 2).unwrap(), vec![0x00, 0x0F]);
    }

    #[test]
    fn mmio_poke_bypasses_everything() {
        let mut dev = device();
        let buf = dev.alloc(16).unwrap();
        dev.poke(buf, &[1, 2, 3]).unwrap();
        assert_eq!(dev.peek(buf, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run = |seed: u64| {
            let mut dev = device();
            let ctx = dev.create_context();
            dev.set_timing_seed(seed);
            let (code, out) = simple_kernel(&mut dev);
            let (report, _) = dev
                .run_single(LaunchParams {
                    ctx,
                    entry_pc: code,
                    grid_dim: 2,
                    block_dim: 64,
                    regs_per_thread: 8,
                    smem_bytes: 0,
                    params: vec![out],
                })
                .unwrap();
            report.completion_cycle
        };
        assert_eq!(run(7), run(7));
        // Different seeds shift timing (jitter), not semantics.
        // Completion may or may not differ across seeds; both runs just
        // must not panic.
        let _ = (run(7), run(8));
    }

    #[test]
    fn two_launches_share_the_device() {
        let mut dev = device();
        let ctx = dev.create_context();
        let (code, out) = simple_kernel(&mut dev);
        let mk = |params: Vec<u32>| LaunchParams {
            ctx,
            entry_pc: code,
            grid_dim: 2,
            block_dim: 64,
            regs_per_thread: 8,
            smem_bytes: 0,
            params,
        };
        let id0 = dev.launch(mk(vec![out])).unwrap();
        let out2 = dev.alloc(4096).unwrap();
        let id1 = dev.launch(mk(vec![out2])).unwrap();
        let report = dev.run().unwrap();
        assert_eq!(report.launches.len(), 2);
        assert!(report.launches[id0].completion_cycle > 0);
        assert!(report.launches[id1].completion_cycle > 0);
        // Both wrote their buffers.
        assert_eq!(dev.peek(out, 8).unwrap(), dev.peek(out2, 8).unwrap());
    }

    #[test]
    fn deadlock_is_detected() {
        // A kernel where one warp waits at a barrier that a second warp
        // never reaches (it exited).
        let mut dev = device();
        let ctx = dev.create_context();
        let mut b = ProgramBuilder::new();
        b.s2r(Reg(1), sage_isa::SpecialReg::WarpId);
        b.isetp(
            sage_isa::PredReg(0),
            sage_isa::CmpOp::Ne,
            Reg(1),
            0u32.into(),
        );
        // Warp 0 waits at the barrier; the others exit: with warps_done
        // accounting the barrier then releases — so instead warp 1+ spins
        // forever at a *second* barrier warp 0 never reaches.
        b.pred(sage_isa::Pred::on(sage_isa::PredReg(0)));
        b.bra("spin");
        b.bar_sync();
        b.exit();
        b.label("spin");
        b.bra("spin");
        let prog = b.build().unwrap();
        let code = dev.alloc(prog.byte_len() as u32).unwrap();
        dev.memcpy_h2d(code, &prog.encode()).unwrap();
        dev.set_cycle_limit(200_000);
        let r = dev.run_single(LaunchParams {
            ctx,
            entry_pc: code,
            grid_dim: 1,
            block_dim: 64,
            regs_per_thread: 8,
            smem_bytes: 0,
            params: vec![],
        });
        assert!(matches!(
            r,
            Err(SimError::Deadlock { .. }) | Err(SimError::CycleLimit { .. })
        ));
    }
}
