//! Instruction-cache hierarchy with *no store coherence*.
//!
//! Fetch goes L0i (per processing block) → L1i (per SM) → L2i slice →
//! device memory, all set-associative LRU. A store into the code region
//! updates memory only; cached lines keep the bytes (and decode) from
//! install time. A patched instruction is therefore observed only once the
//! line has been evicted — the central constraint the paper's
//! self-modifying checksum code must engineer around by sizing its loop
//! beyond the cache (§6.4, §7.1, §7.5). The `CCTL` maintenance op
//! invalidates a line everywhere, modelling the instruction-cache
//! `discard` the paper wishes vendors exposed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use sage_isa::{DecodeError, Instruction, INSN_BYTES};

use crate::{
    config::DeviceConfig,
    error::{Result, SimError},
    mem::GlobalMemory,
};

/// A decoded cache line: one decode result per 16-byte slot. `Arc` (not
/// `Rc`) so a hierarchy — and the SM that owns it — can move to a worker
/// thread in `Device::run`.
pub type DecodedLine = Arc<[std::result::Result<Instruction, DecodeError>]>;

/// Upper bound on the process-wide content-addressed decode cache. SMC
/// workloads mint a fresh line content per patch, so the cache must be
/// bounded; on overflow it is simply cleared (decode is a pure function
/// of the bytes, so dropping entries only costs re-decodes).
const DECODE_CACHE_MAX: usize = 1 << 16;

/// Decodes a line's bytes through the process-wide content-addressed
/// cache: identical bytes decode once per process, no matter how many
/// SMs, devices or runs fetch them. Sound because decoding is a pure
/// function of the bytes.
fn decode_line_cached(bytes: &[u8]) -> DecodedLine {
    static CACHE: OnceLock<Mutex<HashMap<Box<[u8]>, DecodedLine>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(line) = map.get(bytes) {
        return line.clone();
    }
    let line: DecodedLine = sage_isa::encode::decode_line(bytes).into();
    if map.len() >= DECODE_CACHE_MAX {
        map.clear();
    }
    map.insert(bytes.into(), line.clone());
    line
}

/// Where a fetch was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchLevel {
    /// Hit in the per-partition L0i.
    L0,
    /// Hit in the per-SM L1i.
    L1,
    /// Hit in the L2 instruction slice.
    L2,
    /// Filled from device memory.
    Memory,
}

/// Sentinel tag for an empty way. Line addresses are aligned to the
/// (power-of-two, > 1) line size, so an all-ones tag can never collide.
const EMPTY: u32 = u32::MAX;

/// One set-associative LRU cache level.
///
/// Tags and decoded lines live in flat arrays (`ways` slots per set)
/// with a monotonic last-use stamp per way. The L0 level is probed once
/// per *issued instruction*, so recency is tracked by stamp update
/// rather than by reordering entries — the hit path is one contiguous
/// tag scan plus a stamp store, with no per-set heap vectors and no
/// payload rotation. The hit/miss/eviction sequence is identical to a
/// move-to-front list: the LRU victim is exactly the minimum stamp, and
/// free ways (which `invalidate` may open anywhere in the set) are
/// always filled before anything is evicted.
#[derive(Clone, Debug)]
struct CacheLevel {
    tags: Vec<u32>,
    stamps: Vec<u64>,
    lines: Vec<Option<DecodedLine>>,
    tick: u64,
    ways: usize,
    set_mask: u32,
    line_shift: u32,
}

impl CacheLevel {
    fn new(bytes: u32, line: u32, ways: usize) -> CacheLevel {
        debug_assert!(line.is_power_of_two() && line > 1);
        let lines = (bytes / line).max(1) as usize;
        let sets = (lines / ways).max(1).next_power_of_two();
        CacheLevel {
            tags: vec![EMPTY; sets * ways],
            stamps: vec![0; sets * ways],
            lines: vec![None; sets * ways],
            tick: 0,
            ways,
            set_mask: sets as u32 - 1,
            line_shift: line.trailing_zeros(),
        }
    }

    fn set_of(&self, line_addr: u32) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    fn lookup(&mut self, line_addr: u32) -> Option<DecodedLine> {
        let base = self.set_of(line_addr) * self.ways;
        for i in base..base + self.ways {
            if self.tags[i] == line_addr {
                self.tick += 1;
                self.stamps[i] = self.tick;
                return self.lines[i].clone();
            }
        }
        None
    }

    /// Hot-path variant of [`CacheLevel::lookup`]: returns only the
    /// requested slot of the line, skipping the `Arc` refcount
    /// round-trip of cloning the whole line handle. Identical LRU
    /// effect.
    fn lookup_slot(
        &mut self,
        line_addr: u32,
        slot: usize,
    ) -> Option<std::result::Result<Instruction, DecodeError>> {
        let base = self.set_of(line_addr) * self.ways;
        for i in base..base + self.ways {
            if self.tags[i] == line_addr {
                self.tick += 1;
                self.stamps[i] = self.tick;
                return self.lines[i].as_ref().map(|line| line[slot]);
            }
        }
        None
    }

    fn install(&mut self, line_addr: u32, decoded: DecodedLine) {
        self.tick += 1;
        let base = self.set_of(line_addr) * self.ways;
        let mut slot = None;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + self.ways {
            let t = self.tags[i];
            if t == line_addr {
                // Re-install: refresh the payload, make MRU.
                slot = Some(i);
                break;
            }
            if t == EMPTY && slot.is_none() {
                slot = Some(i);
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        let i = slot.unwrap_or(victim);
        self.tags[i] = line_addr;
        self.stamps[i] = self.tick;
        self.lines[i] = Some(decoded);
    }

    fn invalidate(&mut self, line_addr: u32) {
        let base = self.set_of(line_addr) * self.ways;
        for i in base..base + self.ways {
            if self.tags[i] == line_addr {
                self.tags[i] = EMPTY;
                self.stamps[i] = 0;
                self.lines[i] = None;
                return;
            }
        }
    }

    fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
        self.lines.fill(None);
        self.tick = 0;
    }
}

/// The per-SM instruction-cache hierarchy (L0 per partition, shared L1,
/// L2 slice).
#[derive(Clone, Debug)]
pub struct IcacheHierarchy {
    l0: Vec<CacheLevel>,
    l1: CacheLevel,
    l2: CacheLevel,
    line_bytes: u32,
    /// Decode-once cache: line address → (memory write generation at
    /// decode time, decoded line). Purely a host-side optimization — the
    /// modelled hierarchy above still misses, fills and evicts exactly as
    /// before; this only skips re-running the decoder when a memory fill
    /// re-reads bytes that provably have not changed (same page
    /// generation). Self-modifying code invalidates naturally: the store
    /// bumps the page generation, so the next fill after eviction
    /// re-decodes and observes the patch.
    decoded: HashMap<u32, (u64, DecodedLine)>,
}

impl IcacheHierarchy {
    /// Builds the hierarchy for one SM from the device configuration.
    pub fn new(cfg: &DeviceConfig) -> IcacheHierarchy {
        let line = cfg.icache_line;
        IcacheHierarchy {
            l0: (0..cfg.partitions_per_sm)
                .map(|_| CacheLevel::new(cfg.l0i_bytes, line, 4))
                .collect(),
            l1: CacheLevel::new(cfg.l1i_bytes, line, 4),
            l2: CacheLevel::new(cfg.l2i_bytes, line, 8),
            line_bytes: line,
            decoded: HashMap::new(),
        }
    }

    /// Line base address containing `pc`.
    pub fn line_of(&self, pc: u32) -> u32 {
        pc & !(self.line_bytes - 1)
    }

    /// Fetches the decoded instruction at `pc` for a warp on `partition`.
    ///
    /// Returns the decode result and the level that satisfied the fetch
    /// (which the SM translates into a fetch-stall penalty). A miss
    /// installs the line at every level (inclusive hierarchy), decoding
    /// the bytes as they are *now* in memory — later stores to the same
    /// line will not be observed until eviction.
    pub fn fetch(
        &mut self,
        partition: usize,
        pc: u32,
        mem: &GlobalMemory,
    ) -> Result<(std::result::Result<Instruction, DecodeError>, FetchLevel)> {
        if let Some(decoded) = self.lookup_l0(partition, pc) {
            return Ok((decoded, FetchLevel::L0));
        }
        self.fetch_fill(partition, pc, mem)
    }

    /// Probes only the per-partition L0i (updating its LRU state on a
    /// hit). The SM issue path calls this once per instruction; the fill
    /// levels are consulted separately so the hot L0-hit case is a single
    /// contiguous tag scan.
    pub fn lookup_l0(
        &mut self,
        partition: usize,
        pc: u32,
    ) -> Option<std::result::Result<Instruction, DecodeError>> {
        let line_addr = self.line_of(pc);
        let slot = ((pc - line_addr) / INSN_BYTES as u32) as usize;
        self.l0[partition].lookup_slot(line_addr, slot)
    }

    /// Probes the per-partition L0i for a whole line (updating LRU state
    /// on a hit) and returns a handle to it. The superblock fast path
    /// uses this to consume several consecutive slots off one probe;
    /// collapsing back-to-back touches of the same line into one is
    /// LRU-equivalent because victim selection only compares the *order*
    /// of last uses, which such a collapse preserves.
    pub fn lookup_l0_line(&mut self, partition: usize, line_addr: u32) -> Option<DecodedLine> {
        self.l0[partition].lookup(line_addr)
    }

    /// Satisfies an L0 miss from L1 → L2 → device memory, installing the
    /// line at every level on the way in (inclusive hierarchy). Callers
    /// must have missed in L0 first (an L0 miss leaves no LRU trace, so
    /// skipping the re-probe here is semantics-preserving).
    pub fn fetch_fill(
        &mut self,
        partition: usize,
        pc: u32,
        mem: &GlobalMemory,
    ) -> Result<(std::result::Result<Instruction, DecodeError>, FetchLevel)> {
        let line_addr = self.line_of(pc);
        let slot = ((pc - line_addr) / INSN_BYTES as u32) as usize;

        if let Some(line) = self.l1.lookup(line_addr) {
            self.l0[partition].install(line_addr, line.clone());
            return Ok((line[slot], FetchLevel::L1));
        }
        if let Some(line) = self.l2.lookup(line_addr) {
            self.l1.install(line_addr, line.clone());
            self.l0[partition].install(line_addr, line.clone());
            return Ok((line[slot], FetchLevel::L2));
        }
        // Fill from device memory, pre-decoding a snapshot of the bytes:
        // every slot of the line is decoded once at install time and the
        // decoded form is what hits return until the line is evicted.
        // The generation must be loaded *before* the bytes: a racing
        // store can then at worst leave a stale generation paired with
        // fresh bytes (re-decoded needlessly on the next fill), never
        // the reverse.
        let generation = mem.write_generation(line_addr);
        let decoded: DecodedLine = match self.decoded.get(&line_addr) {
            Some((gen, line)) if *gen == generation => line.clone(),
            _ => {
                let bytes = mem.read_bytes(line_addr, self.line_bytes)?;
                let line = decode_line_cached(&bytes);
                self.decoded.insert(line_addr, (generation, line.clone()));
                line
            }
        };
        self.l2.install(line_addr, decoded.clone());
        self.l1.install(line_addr, decoded.clone());
        self.l0[partition].install(line_addr, decoded.clone());
        Ok((decoded[slot], FetchLevel::Memory))
    }

    /// Returns whether `line_addr` is present in partition `p`'s L0
    /// (does not touch LRU state).
    pub fn peek_l0(&self, partition: usize, line_addr: u32) -> bool {
        let l0 = &self.l0[partition];
        let base = l0.set_of(line_addr) * l0.ways;
        l0.tags[base..base + l0.ways].contains(&line_addr)
    }

    /// Invalidates the line containing `addr` at every level (`CCTL`).
    pub fn invalidate(&mut self, addr: u32) {
        let line_addr = self.line_of(addr);
        for l0 in &mut self.l0 {
            l0.invalidate(line_addr);
        }
        self.l1.invalidate(line_addr);
        self.l2.invalidate(line_addr);
    }

    /// Flushes every level (used between kernel launches on context
    /// switch).
    pub fn flush(&mut self) {
        for l0 in &mut self.l0 {
            l0.flush();
        }
        self.l1.flush();
        self.l2.flush();
    }
}

/// Decodes the instruction result or converts it into a fault at `pc`.
pub fn decoded_or_fault(
    decoded: std::result::Result<Instruction, DecodeError>,
    pc: u32,
) -> Result<Instruction> {
    decoded.map_err(|err| SimError::DecodeFault { pc, err })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_isa::Program;

    fn setup(cfg: &DeviceConfig, code: &str, base: u32) -> (IcacheHierarchy, GlobalMemory) {
        let prog = Program::assemble(code).unwrap();
        let mem = GlobalMemory::new(cfg.gmem_bytes);
        mem.write_bytes(base, &prog.encode()).unwrap();
        (IcacheHierarchy::new(cfg), mem)
    }

    #[test]
    fn first_fetch_misses_then_hits() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nNOP ;\nEXIT ;", 0);
        let (_, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        let (_, lvl) = ic.fetch(0, 16, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L0); // same 128-byte line
    }

    #[test]
    fn l1_shared_between_partitions() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nEXIT ;", 0);
        ic.fetch(0, 0, &mem).unwrap().0.unwrap();
        let (_, lvl) = ic.fetch(1, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L1); // partition 1's L0 missed, L1 hit
    }

    #[test]
    fn stores_are_not_coherent_until_eviction() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "IMAD R4, R4, 0x11, R5 ;\nEXIT ;", 0);
        let (insn, _) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(insn.unwrap().immediate(), Some(0x11));

        // Patch the immediate in memory (self-modifying store).
        let mut word = [0u8; 16];
        word.copy_from_slice(&mem.read_bytes(0, 16).unwrap());
        sage_isa::encode::patch_immediate_bytes(&mut word, 0x99);
        mem.write_bytes(0, &word).unwrap();

        // Cached fetch still sees the stale immediate.
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L0);
        assert_eq!(insn.unwrap().immediate(), Some(0x11));

        // After explicit invalidation the new bytes are observed.
        ic.invalidate(0);
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        assert_eq!(insn.unwrap().immediate(), Some(0x99));
    }

    #[test]
    fn capacity_eviction_exposes_new_bytes() {
        // A loop larger than every cache level forces re-fetch from
        // memory — the paper's eviction-by-overflow strategy (§6.4).
        let cfg = DeviceConfig::sim_tiny(); // L2i = 4 KiB
        let mem = GlobalMemory::new(cfg.gmem_bytes);
        let mut ic = IcacheHierarchy::new(&cfg);

        // Fill 8 KiB of code (2x the L2i) with IMADs.
        let n = (8 * 1024) / 16;
        let src = "IMAD R4, R4, 0x11, R5 ;\n".repeat(n);
        let prog = Program::assemble(&src).unwrap();
        mem.write_bytes(0, &prog.encode()).unwrap();

        // First pass: fetch all lines.
        for i in 0..n {
            ic.fetch(0, (i * 16) as u32, &mem).unwrap().0.unwrap();
        }
        // Patch instruction 0 in memory.
        let mut word = [0u8; 16];
        word.copy_from_slice(&mem.read_bytes(0, 16).unwrap());
        sage_isa::encode::patch_immediate_bytes(&mut word, 0x77);
        mem.write_bytes(0, &word).unwrap();

        // Second pass reaches instruction 0 after its line was evicted by
        // capacity: the patch is visible without explicit invalidation.
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        assert_eq!(insn.unwrap().immediate(), Some(0x77));
    }

    #[test]
    fn flush_clears_everything() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nEXIT ;", 0);
        ic.fetch(0, 0, &mem).unwrap().0.unwrap();
        ic.flush();
        let (_, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
    }

    #[test]
    fn data_bytes_decode_lazily_to_faults() {
        let cfg = DeviceConfig::sim_tiny();
        let mem = GlobalMemory::new(cfg.gmem_bytes);
        // All-ones is an invalid opcode.
        mem.write_bytes(0, &[0xFF; 16]).unwrap();
        let mut ic = IcacheHierarchy::new(&cfg);
        let (decoded, _) = ic.fetch(0, 0, &mem).unwrap();
        assert!(decoded_or_fault(decoded, 0).is_err());
    }
}
