//! Instruction-cache hierarchy with *no store coherence*.
//!
//! Fetch goes L0i (per processing block) → L1i (per SM) → L2i slice →
//! device memory, all set-associative LRU. A store into the code region
//! updates memory only; cached lines keep the bytes (and decode) from
//! install time. A patched instruction is therefore observed only once the
//! line has been evicted — the central constraint the paper's
//! self-modifying checksum code must engineer around by sizing its loop
//! beyond the cache (§6.4, §7.1, §7.5). The `CCTL` maintenance op
//! invalidates a line everywhere, modelling the instruction-cache
//! `discard` the paper wishes vendors exposed.

use std::rc::Rc;

use sage_isa::{DecodeError, Instruction, INSN_BYTES};

use crate::{
    config::DeviceConfig,
    error::{Result, SimError},
    mem::GlobalMemory,
};

/// A decoded cache line: one decode result per 16-byte slot.
type DecodedLine = Rc<[std::result::Result<Instruction, DecodeError>]>;

/// Where a fetch was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchLevel {
    /// Hit in the per-partition L0i.
    L0,
    /// Hit in the per-SM L1i.
    L1,
    /// Hit in the L2 instruction slice.
    L2,
    /// Filled from device memory.
    Memory,
}

/// One set-associative LRU cache level.
#[derive(Clone, Debug)]
struct CacheLevel {
    sets: Vec<Vec<(u32, DecodedLine)>>, // most-recently-used last
    ways: usize,
    set_mask: u32,
    line_shift: u32,
}

impl CacheLevel {
    fn new(bytes: u32, line: u32, ways: usize) -> CacheLevel {
        let lines = (bytes / line).max(1) as usize;
        let sets = (lines / ways).max(1).next_power_of_two();
        CacheLevel {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: sets as u32 - 1,
            line_shift: line.trailing_zeros(),
        }
    }

    fn set_of(&self, line_addr: u32) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    fn lookup(&mut self, line_addr: u32) -> Option<DecodedLine> {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|(tag, _)| *tag == line_addr)?;
        let entry = ways.remove(pos);
        let decoded = entry.1.clone();
        ways.push(entry); // move to MRU
        Some(decoded)
    }

    fn install(&mut self, line_addr: u32, decoded: DecodedLine) {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|(tag, _)| *tag == line_addr) {
            ways.remove(pos);
        } else if ways.len() >= self.ways {
            ways.remove(0); // evict LRU
        }
        ways.push((line_addr, decoded));
    }

    fn invalidate(&mut self, line_addr: u32) {
        let set = self.set_of(line_addr);
        self.sets[set].retain(|(tag, _)| *tag != line_addr);
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// The per-SM instruction-cache hierarchy (L0 per partition, shared L1,
/// L2 slice).
#[derive(Clone, Debug)]
pub struct IcacheHierarchy {
    l0: Vec<CacheLevel>,
    l1: CacheLevel,
    l2: CacheLevel,
    line_bytes: u32,
}

impl IcacheHierarchy {
    /// Builds the hierarchy for one SM from the device configuration.
    pub fn new(cfg: &DeviceConfig) -> IcacheHierarchy {
        let line = cfg.icache_line;
        IcacheHierarchy {
            l0: (0..cfg.partitions_per_sm)
                .map(|_| CacheLevel::new(cfg.l0i_bytes, line, 4))
                .collect(),
            l1: CacheLevel::new(cfg.l1i_bytes, line, 4),
            l2: CacheLevel::new(cfg.l2i_bytes, line, 8),
            line_bytes: line,
        }
    }

    /// Line base address containing `pc`.
    pub fn line_of(&self, pc: u32) -> u32 {
        pc & !(self.line_bytes - 1)
    }

    /// Fetches the decoded instruction at `pc` for a warp on `partition`.
    ///
    /// Returns the decode result and the level that satisfied the fetch
    /// (which the SM translates into a fetch-stall penalty). A miss
    /// installs the line at every level (inclusive hierarchy), decoding
    /// the bytes as they are *now* in memory — later stores to the same
    /// line will not be observed until eviction.
    pub fn fetch(
        &mut self,
        partition: usize,
        pc: u32,
        mem: &GlobalMemory,
    ) -> Result<(std::result::Result<Instruction, DecodeError>, FetchLevel)> {
        let line_addr = self.line_of(pc);
        let slot = ((pc - line_addr) / INSN_BYTES as u32) as usize;

        if let Some(line) = self.l0[partition].lookup(line_addr) {
            return Ok((line[slot].clone(), FetchLevel::L0));
        }
        if let Some(line) = self.l1.lookup(line_addr) {
            self.l0[partition].install(line_addr, line.clone());
            return Ok((line[slot].clone(), FetchLevel::L1));
        }
        if let Some(line) = self.l2.lookup(line_addr) {
            self.l1.install(line_addr, line.clone());
            self.l0[partition].install(line_addr, line.clone());
            return Ok((line[slot].clone(), FetchLevel::L2));
        }
        // Fill from device memory, decoding a snapshot of the bytes.
        let bytes = mem.read_bytes(line_addr, self.line_bytes)?;
        let decoded: DecodedLine = bytes
            .chunks_exact(INSN_BYTES)
            .map(|chunk| {
                let mut word = [0u8; INSN_BYTES];
                word.copy_from_slice(chunk);
                sage_isa::encode::decode_bytes(&word)
            })
            .collect::<Vec<_>>()
            .into();
        self.l2.install(line_addr, decoded.clone());
        self.l1.install(line_addr, decoded.clone());
        self.l0[partition].install(line_addr, decoded.clone());
        Ok((decoded[slot].clone(), FetchLevel::Memory))
    }

    /// Returns whether `line_addr` is present in partition `p`'s L0
    /// (does not touch LRU state).
    pub fn peek_l0(&self, partition: usize, line_addr: u32) -> bool {
        let l0 = &self.l0[partition];
        let set = l0.set_of(line_addr);
        l0.sets[set].iter().any(|(tag, _)| *tag == line_addr)
    }

    /// Invalidates the line containing `addr` at every level (`CCTL`).
    pub fn invalidate(&mut self, addr: u32) {
        let line_addr = self.line_of(addr);
        for l0 in &mut self.l0 {
            l0.invalidate(line_addr);
        }
        self.l1.invalidate(line_addr);
        self.l2.invalidate(line_addr);
    }

    /// Flushes every level (used between kernel launches on context
    /// switch).
    pub fn flush(&mut self) {
        for l0 in &mut self.l0 {
            l0.flush();
        }
        self.l1.flush();
        self.l2.flush();
    }
}

/// Decodes the instruction result or converts it into a fault at `pc`.
pub fn decoded_or_fault(
    decoded: std::result::Result<Instruction, DecodeError>,
    pc: u32,
) -> Result<Instruction> {
    decoded.map_err(|err| SimError::DecodeFault { pc, err })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_isa::Program;

    fn setup(cfg: &DeviceConfig, code: &str, base: u32) -> (IcacheHierarchy, GlobalMemory) {
        let prog = Program::assemble(code).unwrap();
        let mut mem = GlobalMemory::new(cfg.gmem_bytes);
        mem.write_bytes(base, &prog.encode()).unwrap();
        (IcacheHierarchy::new(cfg), mem)
    }

    #[test]
    fn first_fetch_misses_then_hits() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nNOP ;\nEXIT ;", 0);
        let (_, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        let (_, lvl) = ic.fetch(0, 16, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L0); // same 128-byte line
    }

    #[test]
    fn l1_shared_between_partitions() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nEXIT ;", 0);
        ic.fetch(0, 0, &mem).unwrap();
        let (_, lvl) = ic.fetch(1, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L1); // partition 1's L0 missed, L1 hit
    }

    #[test]
    fn stores_are_not_coherent_until_eviction() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mut mem) = setup(&cfg, "IMAD R4, R4, 0x11, R5 ;\nEXIT ;", 0);
        let (insn, _) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(insn.unwrap().immediate(), Some(0x11));

        // Patch the immediate in memory (self-modifying store).
        let mut word = [0u8; 16];
        word.copy_from_slice(mem.read_bytes(0, 16).unwrap());
        sage_isa::encode::patch_immediate_bytes(&mut word, 0x99);
        mem.write_bytes(0, &word).unwrap();

        // Cached fetch still sees the stale immediate.
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::L0);
        assert_eq!(insn.unwrap().immediate(), Some(0x11));

        // After explicit invalidation the new bytes are observed.
        ic.invalidate(0);
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        assert_eq!(insn.unwrap().immediate(), Some(0x99));
    }

    #[test]
    fn capacity_eviction_exposes_new_bytes() {
        // A loop larger than every cache level forces re-fetch from
        // memory — the paper's eviction-by-overflow strategy (§6.4).
        let cfg = DeviceConfig::sim_tiny(); // L2i = 4 KiB
        let mut mem = GlobalMemory::new(cfg.gmem_bytes);
        let mut ic = IcacheHierarchy::new(&cfg);

        // Fill 8 KiB of code (2x the L2i) with IMADs.
        let n = (8 * 1024) / 16;
        let src = "IMAD R4, R4, 0x11, R5 ;\n".repeat(n);
        let prog = Program::assemble(&src).unwrap();
        mem.write_bytes(0, &prog.encode()).unwrap();

        // First pass: fetch all lines.
        for i in 0..n {
            ic.fetch(0, (i * 16) as u32, &mem).unwrap();
        }
        // Patch instruction 0 in memory.
        let mut word = [0u8; 16];
        word.copy_from_slice(mem.read_bytes(0, 16).unwrap());
        sage_isa::encode::patch_immediate_bytes(&mut word, 0x77);
        mem.write_bytes(0, &word).unwrap();

        // Second pass reaches instruction 0 after its line was evicted by
        // capacity: the patch is visible without explicit invalidation.
        let (insn, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
        assert_eq!(insn.unwrap().immediate(), Some(0x77));
    }

    #[test]
    fn flush_clears_everything() {
        let cfg = DeviceConfig::sim_tiny();
        let (mut ic, mem) = setup(&cfg, "NOP ;\nEXIT ;", 0);
        ic.fetch(0, 0, &mem).unwrap();
        ic.flush();
        let (_, lvl) = ic.fetch(0, 0, &mem).unwrap();
        assert_eq!(lvl, FetchLevel::Memory);
    }

    #[test]
    fn data_bytes_decode_lazily_to_faults() {
        let cfg = DeviceConfig::sim_tiny();
        let mut mem = GlobalMemory::new(cfg.gmem_bytes);
        // All-ones is an invalid opcode.
        mem.write_bytes(0, &[0xFF; 16]).unwrap();
        let mut ic = IcacheHierarchy::new(&cfg);
        let (decoded, _) = ic.fetch(0, 0, &mem).unwrap();
        assert!(decoded_or_fault(decoded, 0).is_err());
    }
}
