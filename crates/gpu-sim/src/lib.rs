//! An Ampere-like GPU simulator: the hardware substrate for the SAGE
//! reproduction.
//!
//! The paper's artifact runs on a real NVIDIA A100; this crate replaces it
//! with a combined *functional* and *cycle-timing* model that preserves
//! every architectural property SAGE's security argument rests on:
//!
//! - **SM structure** — `partitions_per_sm` processing blocks per SM, each
//!   with a warp scheduler issuing one instruction per cycle from up to
//!   `max_warps_per_partition` resident warps ([`sm`]).
//! - **Dual pipelines** — FMA and ALU dispatch ports with a two-cycle
//!   issue interval each; saturating the SM requires interleaving IMAD-
//!   and ALU-class instructions (paper §6.3).
//! - **Scoreboards** — the six per-warp dependency barriers driven by the
//!   control information embedded in each instruction ([`sage_isa::ctrl`]).
//! - **Instruction caches without store coherence** — self-modifying code
//!   becomes visible only through eviction ([`icache`]), the constraint
//!   that shapes the paper's checksum loop (§6.4, §7.5).
//! - **Non-isolated contexts, MMIO access, tappable PCIe** — the attack
//!   surface of the threat model (§3.3) is a first-class API ([`device`]).
//!
//! Timing is deterministic for a given `timing_seed`; seeds model the
//! run-to-run jitter (DRAM, scheduling) that gives the verifier's
//! threshold `T_avg + 2.5σ` something to measure.
//!
//! # Examples
//!
//! ```
//! use sage_gpu_sim::{Device, DeviceConfig, LaunchParams};
//! use sage_isa::{ProgramBuilder, Reg, SpecialReg};
//!
//! // out[tid] = tid * 2
//! let mut dev = Device::new(DeviceConfig::sim_tiny());
//! let ctx = dev.create_context();
//! let out = dev.alloc(256).unwrap();
//! let mut b = ProgramBuilder::new();
//! b.ctrl(sage_isa::CtrlInfo::stall(1).with_write_bar(0));
//! b.ldg(Reg(1), Reg(0), 0); // R0 = param base (ABI)
//! b.s2r(Reg(2), SpecialReg::TidX);
//! b.iadd3(Reg(3), Reg(2), Reg(2).into(), Reg(255));
//! b.ctrl(sage_isa::CtrlInfo::stall(1).with_wait(0));
//! b.lea(Reg(4), Reg(2), Reg(1).into(), 2);
//! b.stg(Reg(4), 0, Reg(3));
//! b.exit();
//! let prog = b.build().unwrap();
//! let code = dev.alloc(prog.byte_len() as u32).unwrap();
//! dev.memcpy_h2d(code, &prog.encode()).unwrap();
//! dev.run_single(LaunchParams {
//!     ctx,
//!     entry_pc: code,
//!     grid_dim: 1,
//!     block_dim: 32,
//!     regs_per_thread: 8,
//!     smem_bytes: 0,
//!     params: vec![out],
//! })
//! .unwrap();
//! let v = dev.memcpy_d2h(out, 8).unwrap();
//! assert_eq!(u32::from_le_bytes(v[4..8].try_into().unwrap()), 2);
//! ```

pub mod channel;
pub mod config;
pub mod ctrlflow;
pub mod dcache;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod icache;
pub mod mem;
pub mod sm;
pub mod stats;
pub(crate) mod telemetry;
pub mod trace;
pub mod warp;

pub use channel::{ChannelId, Command, CommandProcessor, Completion};
pub use config::{DeviceConfig, Latencies};
pub use dcache::{DataCache, DataCacheConfig};
pub use device::{BusTap, ContextId, Device, ExecMode, LaunchParams, LaunchReport, RunReport};
pub use error::{Result, SimError};
pub use fault::{ChaosSpec, DeviceFault, FaultCounters, FaultHook, FaultPlan, RunEffects};
pub use mem::GlobalMemory;
pub use stats::{KernelStats, StallReason};
pub use trace::{TraceBuffer, TraceRecord};

/// Host-side simulation-performance helpers (no simulated effect).
pub(crate) mod host {
    /// Read-prefetch hint for the host cache line at `p`. The simulator's
    /// big flat tables (device memory words, cache-model tag arrays) are
    /// probed at data-dependent addresses; hinting a batch of independent
    /// lines before a dependent walk lets the host overlap the misses.
    #[inline]
    pub fn prefetch_read<T>(p: *const T) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }
}
