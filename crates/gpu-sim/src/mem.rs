//! Device global memory.
//!
//! One flat byte-addressed memory shared by all contexts — deliberately so:
//! on the GPUs the paper targets "there is no isolation between contexts
//! that prevents them from accessing each other's resources" (§2), which
//! is exactly the attack surface the adversary crate exercises.

use crate::error::{Result, SimError};

/// Flat device memory with bounds- and alignment-checked accessors.
#[derive(Clone, Debug)]
pub struct GlobalMemory {
    data: Vec<u8>,
}

impl GlobalMemory {
    /// Allocates a zeroed memory of `bytes` bytes.
    pub fn new(bytes: u32) -> GlobalMemory {
        GlobalMemory {
            data: vec![0; bytes as usize],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// Returns `true` if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn check(&self, addr: u32, width: u32, kind: &'static str) -> Result<usize> {
        let end = addr as u64 + width as u64;
        if end > self.data.len() as u64 {
            return Err(SimError::MemFault { addr, width, kind });
        }
        if width > 1 && addr % width != 0 {
            return Err(SimError::MemFault { addr, width, kind });
        }
        Ok(addr as usize)
    }

    /// Reads an aligned 32-bit word.
    pub fn read_u32(&self, addr: u32) -> Result<u32> {
        let a = self.check(addr, 4, "load")?;
        Ok(u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ]))
    }

    /// Writes an aligned 32-bit word.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<()> {
        let a = self.check(addr, 4, "store")?;
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Atomic add on an aligned 32-bit word; returns the previous value.
    pub fn atomic_add_u32(&mut self, addr: u32, value: u32) -> Result<u32> {
        let old = self.read_u32(addr)?;
        self.write_u32(addr, old.wrapping_add(value))?;
        Ok(old)
    }

    /// Reads a byte range (DMA / instruction fetch). Only bounds are
    /// checked; block transfers have no alignment requirement.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8]> {
        let end = addr as u64 + len as u64;
        if end > self.data.len() as u64 {
            return Err(SimError::MemFault {
                addr,
                width: len,
                kind: "block read",
            });
        }
        Ok(&self.data[addr as usize..addr as usize + len as usize])
    }

    /// Writes a byte range (DMA).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<()> {
        let end = addr as u64 + bytes.len() as u64;
        if end > self.data.len() as u64 {
            return Err(SimError::MemFault {
                addr,
                width: bytes.len() as u32,
                kind: "block write",
            });
        }
        self.data[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = GlobalMemory::new(64);
        m.write_u32(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(12).unwrap(), 0);
    }

    #[test]
    fn misaligned_access_faults() {
        let mut m = GlobalMemory::new(64);
        assert!(matches!(
            m.read_u32(2),
            Err(SimError::MemFault { addr: 2, .. })
        ));
        assert!(m.write_u32(7, 1).is_err());
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = GlobalMemory::new(16);
        assert!(m.read_u32(16).is_err());
        assert!(m.write_u32(12, 1).is_ok());
        assert!(m.write_u32(16, 1).is_err());
        assert!(m.read_bytes(8, 9).is_err());
        assert!(m.write_bytes(15, &[0, 0]).is_err());
    }

    #[test]
    fn atomic_add_returns_previous() {
        let mut m = GlobalMemory::new(16);
        m.write_u32(0, 10).unwrap();
        assert_eq!(m.atomic_add_u32(0, 5).unwrap(), 10);
        assert_eq!(m.read_u32(0).unwrap(), 15);
        // Wrapping semantics.
        m.write_u32(0, u32::MAX).unwrap();
        assert_eq!(m.atomic_add_u32(0, 2).unwrap(), u32::MAX);
        assert_eq!(m.read_u32(0).unwrap(), 1);
    }

    #[test]
    fn byte_ranges() {
        let mut m = GlobalMemory::new(32);
        m.write_bytes(4, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(4, 5).unwrap(), &[1, 2, 3, 4, 5]);
    }
}
