//! Device global memory.
//!
//! One flat byte-addressed memory shared by all contexts — deliberately so:
//! on the GPUs the paper targets "there is no isolation between contexts
//! that prevents them from accessing each other's resources" (§2), which
//! is exactly the attack surface the adversary crate exercises.
//!
//! Storage is a word array of `AtomicU32` so that every accessor takes
//! `&self` and the memory can be shared by the per-SM worker threads
//! (`Device::run` scopes one thread per SM). All orderings are `Relaxed`:
//! the only *racing* cross-SM accesses the simulated programs perform are
//! commutative `ATOMG.ADD`s (a single `fetch_add`), which need no
//! ordering; everything else is either SM-private or separated by the
//! thread join at the end of a launch, which synchronizes.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::error::{Result, SimError};

/// Bytes covered by one write-generation counter (must be a power of
/// two, and at least as large as any icache line so a line never spans
/// two pages).
const GEN_PAGE_BYTES: u32 = 4096;

/// Flat device memory with bounds- and alignment-checked accessors.
#[derive(Debug)]
pub struct GlobalMemory {
    /// Backing words, little-endian byte order within each word.
    words: Box<[AtomicU32]>,
    /// Per-page write-generation counters. Every store bumps the counter
    /// of each page it touches *after* the data lands (release), so a
    /// reader that loads a generation (acquire) and then the bytes can
    /// cache derived state (e.g. a decoded icache line) keyed by that
    /// generation: any later store invalidates the key.
    generations: Box<[AtomicU64]>,
    /// Logical size in bytes (may be smaller than `4 * words.len()`).
    bytes: u32,
}

impl Clone for GlobalMemory {
    fn clone(&self) -> GlobalMemory {
        GlobalMemory {
            words: self
                .words
                .iter()
                .map(|w| AtomicU32::new(w.load(Ordering::Relaxed)))
                .collect(),
            generations: self
                .generations
                .iter()
                .map(|g| AtomicU64::new(g.load(Ordering::Relaxed)))
                .collect(),
            bytes: self.bytes,
        }
    }
}

impl GlobalMemory {
    /// Allocates a zeroed memory of `bytes` bytes.
    pub fn new(bytes: u32) -> GlobalMemory {
        let words = (bytes as usize).div_ceil(4);
        let pages = (bytes as usize).div_ceil(GEN_PAGE_BYTES as usize).max(1);
        GlobalMemory {
            words: (0..words).map(|_| AtomicU32::new(0)).collect(),
            generations: (0..pages).map(|_| AtomicU64::new(0)).collect(),
            bytes,
        }
    }

    #[inline]
    fn bump_generation(&self, addr: u32) {
        let page = (addr / GEN_PAGE_BYTES) as usize;
        self.generations[page].fetch_add(1, Ordering::Release);
    }

    /// Current write generation of the page containing `addr`. Two equal
    /// generations bracket a window with no stores to that page, so any
    /// pure function of the page's bytes (an instruction decode, say) may
    /// be reused across the window. Load this *before* reading the bytes
    /// it guards.
    #[inline]
    pub fn write_generation(&self, addr: u32) -> u64 {
        let page = (addr / GEN_PAGE_BYTES) as usize;
        match self.generations.get(page) {
            Some(g) => g.load(Ordering::Acquire),
            None => 0,
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> u32 {
        self.bytes
    }

    /// Returns `true` if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    fn check(&self, addr: u32, width: u32, kind: &'static str) -> Result<usize> {
        let end = addr as u64 + width as u64;
        if end > self.bytes as u64 {
            return Err(SimError::MemFault { addr, width, kind });
        }
        if width > 1 && !addr.is_multiple_of(width) {
            return Err(SimError::MemFault { addr, width, kind });
        }
        Ok(addr as usize)
    }

    /// Reads an aligned 32-bit word.
    pub fn read_u32(&self, addr: u32) -> Result<u32> {
        let a = self.check(addr, 4, "load")?;
        Ok(self.words[a / 4].load(Ordering::Relaxed))
    }

    /// Writes an aligned 32-bit word.
    pub fn write_u32(&self, addr: u32, value: u32) -> Result<()> {
        let a = self.check(addr, 4, "store")?;
        self.words[a / 4].store(value, Ordering::Relaxed);
        self.bump_generation(addr);
        Ok(())
    }

    /// Prefetch hint for the host cache line backing `addr` (functional
    /// no-op; out-of-range addresses are ignored — the real access will
    /// fault them). Used by the warp load/store paths to overlap the
    /// per-lane host misses of divergent accesses.
    #[inline]
    pub fn prefetch(&self, addr: u32) {
        let i = addr as usize / 4;
        if i < self.words.len() {
            crate::host::prefetch_read(&self.words[i]);
        }
    }

    /// Atomic add on an aligned 32-bit word; returns the previous value.
    /// Wrapping, and genuinely atomic across the per-SM worker threads.
    pub fn atomic_add_u32(&self, addr: u32, value: u32) -> Result<u32> {
        let a = self.check(addr, 4, "atomic")?;
        let prev = self.words[a / 4].fetch_add(value, Ordering::Relaxed);
        self.bump_generation(addr);
        Ok(prev)
    }

    fn check_range(&self, addr: u32, len: u32, kind: &'static str) -> Result<()> {
        let end = addr as u64 + len as u64;
        if end > self.bytes as u64 {
            return Err(SimError::MemFault {
                addr,
                width: len,
                kind,
            });
        }
        Ok(())
    }

    /// Reads a byte range (DMA / instruction fetch). Only bounds are
    /// checked; block transfers have no alignment requirement.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>> {
        self.check_range(addr, len, "block read")?;
        let mut out = Vec::with_capacity(len as usize);
        let (mut a, end) = (addr as usize, (addr + len) as usize);
        while a < end {
            let word = self.words[a / 4].load(Ordering::Relaxed).to_le_bytes();
            let lo = a % 4;
            let hi = (end - (a - lo)).min(4);
            out.extend_from_slice(&word[lo..hi]);
            a += hi - lo;
        }
        Ok(out)
    }

    /// Writes a byte range (DMA). Partial boundary words are read-modified-
    /// written; DMA only runs at command-processor boundaries, never
    /// concurrently with SM stores to the same word.
    pub fn write_bytes(&self, addr: u32, bytes: &[u8]) -> Result<()> {
        self.check_range(addr, bytes.len() as u32, "block write")?;
        let mut a = addr as usize;
        let mut src = bytes;
        while !src.is_empty() {
            let lo = a % 4;
            let n = (4 - lo).min(src.len());
            let slot = &self.words[a / 4];
            if n == 4 {
                slot.store(
                    u32::from_le_bytes([src[0], src[1], src[2], src[3]]),
                    Ordering::Relaxed,
                );
            } else {
                let mut word = slot.load(Ordering::Relaxed).to_le_bytes();
                word[lo..lo + n].copy_from_slice(&src[..n]);
                slot.store(u32::from_le_bytes(word), Ordering::Relaxed);
            }
            a += n;
            src = &src[n..];
        }
        let mut page = addr & !(GEN_PAGE_BYTES - 1);
        let end = addr + bytes.len() as u32;
        while page < end {
            self.bump_generation(page);
            page += GEN_PAGE_BYTES;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let m = GlobalMemory::new(64);
        m.write_u32(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read_u32(12).unwrap(), 0);
    }

    #[test]
    fn misaligned_access_faults() {
        let m = GlobalMemory::new(64);
        assert!(matches!(
            m.read_u32(2),
            Err(SimError::MemFault { addr: 2, .. })
        ));
        assert!(m.write_u32(7, 1).is_err());
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = GlobalMemory::new(16);
        assert!(m.read_u32(16).is_err());
        assert!(m.write_u32(12, 1).is_ok());
        assert!(m.write_u32(16, 1).is_err());
        assert!(m.read_bytes(8, 9).is_err());
        assert!(m.write_bytes(15, &[0, 0]).is_err());
    }

    #[test]
    fn atomic_add_returns_previous() {
        let m = GlobalMemory::new(16);
        m.write_u32(0, 10).unwrap();
        assert_eq!(m.atomic_add_u32(0, 5).unwrap(), 10);
        assert_eq!(m.read_u32(0).unwrap(), 15);
        // Wrapping semantics.
        m.write_u32(0, u32::MAX).unwrap();
        assert_eq!(m.atomic_add_u32(0, 2).unwrap(), u32::MAX);
        assert_eq!(m.read_u32(0).unwrap(), 1);
    }

    #[test]
    fn byte_ranges() {
        let m = GlobalMemory::new(32);
        m.write_bytes(4, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(4, 5).unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn unaligned_byte_ranges_cross_words() {
        let m = GlobalMemory::new(32);
        let data: Vec<u8> = (1..=11).collect();
        m.write_bytes(3, &data).unwrap();
        assert_eq!(m.read_bytes(3, 11).unwrap(), data);
        // Bytes outside the range are untouched.
        assert_eq!(m.read_bytes(0, 3).unwrap(), &[0, 0, 0]);
        assert_eq!(m.read_bytes(14, 2).unwrap(), &[0, 0]);
        // Word-level view agrees with the byte writes.
        assert_eq!(m.read_u32(4).unwrap(), u32::from_le_bytes([2, 3, 4, 5]));
    }

    #[test]
    fn non_word_sized_memory() {
        let m = GlobalMemory::new(10);
        assert_eq!(m.len(), 10);
        m.write_bytes(8, &[7, 9]).unwrap();
        assert_eq!(m.read_bytes(8, 2).unwrap(), &[7, 9]);
        assert!(m.read_bytes(8, 3).is_err());
        assert!(m.read_u32(8).is_err()); // word would spill past len
    }

    #[test]
    fn clone_snapshots_contents() {
        let m = GlobalMemory::new(16);
        m.write_u32(0, 42).unwrap();
        let c = m.clone();
        m.write_u32(0, 43).unwrap();
        assert_eq!(c.read_u32(0).unwrap(), 42);
        assert_eq!(m.read_u32(0).unwrap(), 43);
    }
}
