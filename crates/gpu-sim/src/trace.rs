//! Instruction-issue tracing: a bounded ring buffer of the most recent
//! issues, for debugging generated microcode and for the attack
//! harness's forensics (what actually executed, when, where).

use sage_isa::Opcode;

/// One trace record: an instruction issue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Cycle of issue.
    pub cycle: u64,
    /// SM the warp resides on.
    pub sm: u32,
    /// Partition (scheduler) within the SM.
    pub partition: u8,
    /// Warp index within the SM's warp table.
    pub warp: u32,
    /// Program counter of the issued instruction.
    pub pc: u32,
    /// Operation.
    pub op: Opcode,
}

/// A bounded ring buffer of [`TraceRecord`]s.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    buf: Vec<TraceRecord>,
    capacity: usize,
    next: usize,
    total: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding the last `capacity` issues.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Records an issue.
    pub fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Total issues observed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Renders the retained trace as text, oldest first.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for r in self.records() {
            let _ = writeln!(
                out,
                "{:>10}  sm{} p{} w{:<3} {:#010x}  {}",
                r.cycle,
                r.sm,
                r.partition,
                r.warp,
                r.pc,
                r.op.mnemonic()
            );
        }
        out
    }

    /// Records matching a predicate, oldest first.
    pub fn filter(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> Vec<TraceRecord> {
        self.records().into_iter().filter(|r| pred(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig, LaunchParams};

    #[test]
    fn device_run_produces_traces() {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        dev.set_trace_capacity(Some(64));
        let ctx = dev.create_context();
        let mut b = sage_isa::ProgramBuilder::new();
        b.nop();
        b.nop();
        b.exit();
        let prog = b.build().unwrap();
        let base = dev.alloc(prog.byte_len() as u32).unwrap();
        dev.memcpy_h2d(base, &prog.encode()).unwrap();
        let id = dev
            .launch(LaunchParams {
                ctx,
                entry_pc: base,
                grid_dim: 1,
                block_dim: 32,
                regs_per_thread: 8,
                smem_bytes: 0,
                params: vec![],
            })
            .unwrap();
        let report = dev.run().unwrap();
        assert_eq!(report.launches[id].issued, 3);
        assert_eq!(report.traces.len(), 1);
        let recs = report.traces[0].records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, Opcode::Nop);
        assert_eq!(recs[2].op, Opcode::Exit);
        assert!(recs[0].cycle < recs[2].cycle);
        // Rendered trace names the ops.
        assert!(report.traces[0].render().contains("EXIT"));
    }

    fn rec(cycle: u64, pc: u32) -> TraceRecord {
        TraceRecord {
            cycle,
            sm: 0,
            partition: 0,
            warp: 0,
            pc,
            op: Opcode::Nop,
        }
    }

    #[test]
    fn keeps_last_n_in_order() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.record(rec(i, i as u32 * 16));
        }
        let r = t.records();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].cycle, 2);
        assert_eq!(r[2].cycle, 4);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn underfull_buffer_returns_all() {
        let mut t = TraceBuffer::new(8);
        t.record(rec(1, 0));
        t.record(rec(2, 16));
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn render_and_filter() {
        let mut t = TraceBuffer::new(4);
        t.record(rec(10, 0x100));
        t.record(rec(11, 0x110));
        let text = t.render();
        assert!(text.contains("0x00000110"));
        assert_eq!(t.filter(|r| r.pc == 0x100).len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
