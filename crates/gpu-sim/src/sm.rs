//! Streaming-multiprocessor model: block residency, per-partition warp
//! scheduling, dual-pipeline dispatch ports, scoreboards and
//! instruction-fetch stalls.
//!
//! Each SM has `partitions_per_sm` processing blocks; every cycle each
//! partition's scheduler issues at most one instruction from a ready
//! resident warp (greedy, round-robin on stall or yield). The FMA and ALU
//! pipelines have separate dispatch ports that accept an instruction every
//! `dispatch_interval` cycles — saturating both requires interleaving
//! IMAD-class and ALU-class instructions, exactly the property the
//! paper's checksum exploits with its shift-and-add pattern (§6.3, §6.5).

use std::collections::{HashMap, VecDeque};

use sage_isa::{Instruction, Opcode, Operand, Pipeline, INSN_BYTES};

use crate::{
    config::DeviceConfig,
    error::{Result, SimError},
    exec::{execute, Effect, ExecEnv},
    icache::{FetchLevel, IcacheHierarchy},
    mem::GlobalMemory,
    stats::{KernelStats, StallReason},
    warp::Warp,
};

/// A thread block queued for execution on an SM.
#[derive(Clone, Debug)]
pub struct PendingBlock {
    /// Identifier of the launch this block belongs to.
    pub launch_id: usize,
    /// Block index within the grid.
    pub cta_id: u32,
    /// Threads per block (multiple of 32).
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
    /// Entry program counter (device byte address).
    pub entry_pc: u32,
    /// Registers allocated per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
    /// Device address of the kernel parameter block (ABI: loaded into
    /// `R0` of every thread at launch).
    pub param_base: u32,
    /// Cycle at which the command processor made the block available.
    pub submit_cycle: u64,
}

/// A resident thread block.
#[derive(Debug)]
struct BlockState {
    launch_id: usize,
    cta_id: u32,
    block_dim: u32,
    grid_dim: u32,
    smem: Vec<u8>,
    warp_ids: Vec<usize>,
    warps_done: u32,
    barrier_arrived: u32,
    regs_per_thread: u32,
}

/// One processing block (warp scheduler + dispatch ports).
#[derive(Clone, Debug, Default)]
struct Partition {
    warp_ids: Vec<usize>,
    rr: usize,
    /// Next cycle at which each pipeline port accepts an instruction,
    /// indexed by [`Pipeline`] discriminant order (FMA, ALU, MEM, CTL).
    port_free: [u64; 4],
    /// The fetch unit sustains one outstanding instruction-line fill at a
    /// time; a second miss waits for the first fill to retire. This is
    /// what makes cache-evicting loops expensive (paper §7.1: "each warp
    /// … spends 14.1 cycles being stalled due to not having the next
    /// instruction fetched yet").
    fill_busy_until: u64,
}

fn pipe_index(p: Pipeline) -> usize {
    match p {
        Pipeline::Fma => 0,
        Pipeline::Alu => 1,
        Pipeline::Mem => 2,
        Pipeline::Control => 3,
    }
}

/// Per-launch accounting local to one SM.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaunchLocal {
    /// Instructions issued by this launch's warps on this SM.
    pub issued: u64,
    /// Cycle the last block of this launch completed on this SM.
    pub completion: u64,
    /// Blocks of this launch executed on this SM.
    pub blocks: u32,
}

/// Result of running one SM to completion.
#[derive(Debug)]
pub struct SmReport {
    /// Cycle counters and stall breakdown for this SM.
    pub stats: KernelStats,
    /// Per-launch local accounting.
    pub launches: HashMap<usize, LaunchLocal>,
    /// The issue trace, if tracing was enabled.
    pub trace: Option<crate::trace::TraceBuffer>,
}

/// Outcome of a partition's issue attempt in one cycle.
enum SlotOutcome {
    Issued,
    Stalled(StallReason, Option<u64>),
    Empty,
}

/// Deterministic xorshift-based jitter source (timing only; never affects
/// architectural values).
#[derive(Clone, Debug)]
pub struct JitterRng(u64);

impl JitterRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> JitterRng {
        JitterRng(seed | 1)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound]`.
    pub fn below(&mut self, bound: u32) -> u32 {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % (bound as u64 + 1)) as u32
        }
    }
}

/// One streaming multiprocessor, runnable to completion over its queue of
/// blocks.
pub struct Sm<'a> {
    cfg: &'a DeviceConfig,
    sm_id: u32,
    icache: IcacheHierarchy,
    warps: Vec<Warp>,
    fetched: Vec<Option<(u32, Instruction)>>,
    blocks: Vec<Option<BlockState>>,
    partitions: Vec<Partition>,
    pending: VecDeque<PendingBlock>,
    warp_counter: usize,
    threads_used: u32,
    regs_used: u32,
    smem_used: u32,
    blocks_resident: u32,
    stats: KernelStats,
    /// Per-launch accounting, keyed by launch id. A `Vec` scanned
    /// linearly: it is touched once per issued instruction and holds a
    /// handful of entries at most, where a hash lookup would dominate.
    launches: Vec<(usize, LaunchLocal)>,
    jitter: JitterRng,
    hazard_check: bool,
    last_reason: Vec<StallReason>,
    dcache: Option<crate::dcache::DataCache>,
    trace: Option<crate::trace::TraceBuffer>,
    fast_forward: bool,
}

impl<'a> Sm<'a> {
    /// Creates an SM with a queue of blocks to execute.
    pub fn new(
        cfg: &'a DeviceConfig,
        sm_id: u32,
        blocks: Vec<PendingBlock>,
        timing_seed: u64,
        hazard_check: bool,
    ) -> Sm<'a> {
        let partitions = vec![Partition::default(); cfg.partitions_per_sm as usize];
        Sm {
            cfg,
            sm_id,
            icache: IcacheHierarchy::new(cfg),
            warps: Vec::new(),
            fetched: Vec::new(),
            blocks: Vec::new(),
            partitions,
            pending: blocks.into(),
            warp_counter: 0,
            threads_used: 0,
            regs_used: 0,
            smem_used: 0,
            blocks_resident: 0,
            stats: KernelStats::default(),
            launches: Vec::new(),
            jitter: JitterRng::new(
                timing_seed ^ (sm_id as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            ),
            hazard_check,
            last_reason: vec![StallReason::NoWarp; cfg.partitions_per_sm as usize],
            dcache: cfg
                .dcache
                .map(|dc| crate::dcache::DataCache::new(dc, cfg.lat.gmem_min, cfg.lat.gmem_jitter)),
            trace: None,
            fast_forward: true,
        }
    }

    /// Enables or disables stall fast-forwarding (on by default). With it
    /// off the SM ticks every cycle — the slow reference mode used to
    /// validate that fast-forwarding is bit-exact.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Enables issue tracing with the given ring-buffer capacity.
    pub fn set_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::TraceBuffer::new(capacity));
    }

    /// Takes the trace buffer, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<crate::trace::TraceBuffer> {
        self.trace.take()
    }

    fn block_fits(&self, pb: &PendingBlock) -> bool {
        let warps = pb.block_dim.div_ceil(32);
        let regs_per_warp =
            (pb.regs_per_thread * 32).div_ceil(self.cfg.reg_granularity) * self.cfg.reg_granularity;
        self.threads_used + pb.block_dim <= self.cfg.max_threads_per_sm
            && self.regs_used + regs_per_warp * warps <= self.cfg.regs_per_sm
            && self.smem_used + pb.smem_bytes <= self.cfg.smem_per_sm
            && self.blocks_resident < self.cfg.max_blocks_per_sm
    }

    fn place_blocks(&mut self, cycle: u64) {
        while let Some(pb) = self.pending.front() {
            if pb.submit_cycle > cycle || !self.block_fits(pb) {
                break;
            }
            let pb = self.pending.pop_front().expect("front checked");
            let warps_n = pb.block_dim.div_ceil(32);
            let regs_per_warp = (pb.regs_per_thread * 32).div_ceil(self.cfg.reg_granularity)
                * self.cfg.reg_granularity;
            self.threads_used += pb.block_dim;
            self.regs_used += regs_per_warp * warps_n;
            self.smem_used += pb.smem_bytes;
            self.blocks_resident += 1;

            let slot = self.blocks.len();
            let mut warp_ids = Vec::with_capacity(warps_n as usize);
            for w in 0..warps_n {
                let mut warp = Warp::new(slot, w, pb.entry_pc, pb.regs_per_thread.max(1));
                warp.stall_until = cycle;
                // Launch ABI: R0 = parameter-block base address.
                for lane in 0..32 {
                    warp.set_reg(0, lane, pb.param_base);
                }
                let widx = self.warps.len();
                warp_ids.push(widx);
                let part = self.warp_counter % self.partitions.len();
                self.warp_counter += 1;
                self.partitions[part].warp_ids.push(widx);
                self.warps.push(warp);
                self.fetched.push(None);
            }
            self.launch_entry(pb.launch_id).blocks += 1;
            self.blocks.push(Some(BlockState {
                launch_id: pb.launch_id,
                cta_id: pb.cta_id,
                block_dim: pb.block_dim,
                grid_dim: pb.grid_dim,
                smem: vec![0u8; pb.smem_bytes as usize],
                warp_ids,
                warps_done: 0,
                barrier_arrived: 0,
                regs_per_thread: pb.regs_per_thread,
            }));
        }
    }

    fn all_done(&self) -> bool {
        self.pending.is_empty() && self.blocks.iter().all(Option::is_none)
    }

    /// The accounting entry for `launch_id`, created on first use.
    fn launch_entry(&mut self, launch_id: usize) -> &mut LaunchLocal {
        if let Some(i) = self.launches.iter().position(|(l, _)| *l == launch_id) {
            return &mut self.launches[i].1;
        }
        self.launches.push((launch_id, LaunchLocal::default()));
        &mut self.launches.last_mut().expect("just pushed").1
    }

    /// Result latency of `insn` for warp `widx` (data-cache-aware for
    /// global accesses when a cache model is configured).
    fn op_latency(&mut self, widx: usize, insn: &Instruction, gmem: &GlobalMemory) -> u32 {
        let lat = &self.cfg.lat;
        match insn.op {
            Opcode::Ldg => match &mut self.dcache {
                Some(dc) => {
                    let mut addrs = [0u32; 32];
                    let n = self.warps[widx].effective_addresses(insn, &mut addrs);
                    // Hint the functional reads `execute` is about to do
                    // with these same addresses — the model probes below
                    // give the host time to pull the lines in.
                    for &a in &addrs[..n] {
                        gmem.prefetch(a);
                    }
                    dc.load_latency(&addrs[..n], &mut self.jitter)
                }
                None => lat.gmem_min + self.jitter.below(lat.gmem_jitter),
            },
            Opcode::Lds => lat.smem,
            Opcode::AtomgAdd => match &mut self.dcache {
                Some(dc) => {
                    let mut addrs = [0u32; 32];
                    let n = self.warps[widx].effective_addresses(insn, &mut addrs);
                    dc.atomic_latency(&addrs[..n], &mut self.jitter)
                }
                None => lat.atomic_global + self.jitter.below(lat.gmem_jitter / 4),
            },
            Opcode::AtomsAdd => lat.atomic_shared,
            _ => lat.fixed_alu,
        }
    }

    /// Attempts to issue one instruction on partition `p` at `cycle`.
    fn try_issue(&mut self, p: usize, cycle: u64, gmem: &GlobalMemory) -> Result<SlotOutcome> {
        let n = self.partitions[p].warp_ids.len();
        if n == 0 {
            return Ok(SlotOutcome::Empty);
        }
        let mut resident = false;
        let mut best_reason = StallReason::NoWarp;
        let mut next_ready: Option<u64> = None;
        let bump = |t: u64, next_ready: &mut Option<u64>| {
            *next_ready = Some(next_ready.map_or(t, |cur| cur.min(t)));
        };

        for k in 0..n {
            let scan = (self.partitions[p].rr + k) % n;
            let widx = self.partitions[p].warp_ids[scan];
            if self.warps[widx].done {
                continue;
            }
            resident = true;
            let warp = &self.warps[widx];
            if warp.at_barrier {
                best_reason = pick(best_reason, StallReason::Barrier);
                continue;
            }
            if warp.stall_until > cycle {
                best_reason = pick(best_reason, StallReason::StallField);
                bump(warp.stall_until, &mut next_ready);
                continue;
            }
            if warp.fetch_ready_at > cycle {
                best_reason = pick(best_reason, StallReason::InstructionFetch);
                bump(warp.fetch_ready_at, &mut next_ready);
                continue;
            }
            // Ensure the instruction at the current PC is fetched.
            let pc = warp.pc;
            if self.fetched[widx]
                .as_ref()
                .is_none_or(|&(fpc, _)| fpc != pc)
            {
                // One L0 probe in the hot case; a miss leaves no LRU
                // trace, so checking the fill slot after it is
                // equivalent to the peek-then-fetch it replaces. A
                // non-L0 fetch occupies the partition's fill slot; if
                // that is busy, the warp must wait for the current fill.
                let (decoded, level) = match self.icache.lookup_l0(p, pc) {
                    Some(decoded) => (decoded, FetchLevel::L0),
                    None => {
                        if self.partitions[p].fill_busy_until > cycle {
                            best_reason = pick(best_reason, StallReason::InstructionFetch);
                            bump(self.partitions[p].fill_busy_until, &mut next_ready);
                            continue;
                        }
                        self.icache.fetch_fill(p, pc, gmem)?
                    }
                };
                let insn = crate::icache::decoded_or_fault(decoded, pc)?;
                self.fetched[widx] = Some((pc, insn));
                let penalty = match level {
                    FetchLevel::L0 => {
                        self.stats.icache_hits[0] += 1;
                        0
                    }
                    FetchLevel::L1 => {
                        self.stats.icache_hits[1] += 1;
                        self.cfg.lat.ifetch_l1
                    }
                    FetchLevel::L2 => {
                        self.stats.icache_hits[2] += 1;
                        self.cfg.lat.ifetch_l2
                    }
                    FetchLevel::Memory => {
                        self.stats.icache_mem_fills += 1;
                        self.cfg.lat.ifetch_mem
                    }
                };
                if penalty > 0 {
                    self.warps[widx].fetch_ready_at = cycle + penalty as u64;
                    self.partitions[p].fill_busy_until = cycle + penalty as u64;
                    best_reason = pick(best_reason, StallReason::InstructionFetch);
                    bump(cycle + penalty as u64, &mut next_ready);
                    continue;
                }
            }
            // Borrow the decoded instruction for the stall checks; it is
            // copied out only when this attempt actually issues.
            let insn = &self.fetched[widx].as_ref().expect("fetched above").1;
            let warp = &self.warps[widx];
            if !warp.scoreboard_ready(insn.ctrl.wait_mask, cycle) {
                let ready_at = warp.scoreboard_ready_at(insn.ctrl.wait_mask);
                best_reason = pick(best_reason, StallReason::Scoreboard);
                bump(ready_at, &mut next_ready);
                continue;
            }
            let pipe = insn.op.pipeline();
            let port_at = self.partitions[p].port_free[pipe_index(pipe)];
            if port_at > cycle {
                best_reason = pick(best_reason, StallReason::PortBusy);
                bump(port_at, &mut next_ready);
                continue;
            }
            let insn = *insn;

            // Issue.
            self.issue(p, scan, widx, &insn, cycle, gmem)?;
            return Ok(SlotOutcome::Issued);
        }
        if resident {
            Ok(SlotOutcome::Stalled(best_reason, next_ready))
        } else {
            Ok(SlotOutcome::Empty)
        }
    }

    fn issue(
        &mut self,
        p: usize,
        scan: usize,
        widx: usize,
        insn: &Instruction,
        cycle: u64,
        gmem: &GlobalMemory,
    ) -> Result<()> {
        let pipe = insn.op.pipeline();
        self.stats.record_issue(insn.op);
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceRecord {
                cycle,
                sm: self.sm_id,
                partition: p as u8,
                warp: widx as u32,
                pc: self.warps[widx].pc,
                op: insn.op,
            });
        }

        match insn.op {
            Opcode::Ldg => self.stats.gmem_loads += 1,
            Opcode::Stg => self.stats.gmem_stores += 1,
            Opcode::AtomgAdd => self.stats.gmem_atomics += 1,
            Opcode::Lds | Opcode::Sts | Opcode::AtomsAdd => self.stats.smem_accesses += 1,
            _ => {}
        }

        // Optional register-hazard validation (the hardware trusts the
        // control info, like real Volta+; the checker reports code that
        // would mis-execute on silicon).
        let result_latency = self.op_latency(widx, insn, gmem);
        let hazard_check = self.hazard_check;
        let fixed_alu = self.cfg.lat.fixed_alu;
        if hazard_check {
            let warp = &self.warps[widx];
            let violated = insn.srcs.iter().any(|s| {
                matches!(s, Operand::Reg(r)
                    if !r.is_zero() && warp.reg_ready_at[r.index()] > cycle)
            });
            if violated {
                self.stats.hazard_violations += 1;
                if std::env::var_os("SAGE_HAZARD_DEBUG").is_some() {
                    eprintln!("hazard: pc={:#x} {}", warp.pc, insn.body());
                }
            }
        }

        let mut finished_slot: Option<usize> = None;
        {
            // Split borrows: warps/blocks/icache/stats are distinct
            // fields of `self`.
            let Sm {
                warps,
                blocks,
                icache,
                stats,
                launches,
                sm_id,
                ..
            } = self;

            let effect;
            let launch_id;
            {
                let warp = &mut warps[widx];
                let block = blocks[warp.block_slot]
                    .as_mut()
                    .expect("warp's block is resident");
                launch_id = block.launch_id;
                let mut env = ExecEnv {
                    gmem,
                    smem: &mut block.smem,
                    sm_id: *sm_id,
                    cycle,
                    block_dim: block.block_dim,
                    cta_id: block.cta_id,
                    grid_dim: block.grid_dim,
                };
                effect = execute(warp, insn, &mut env)?;
                warp.issued += 1;

                // Scheduling state updates.
                warp.stall_until = cycle + insn.ctrl.stall.max(1) as u64;
                if let Some(slot) = insn.ctrl.write_bar {
                    warp.scoreboard[slot as usize] = cycle + result_latency as u64;
                }
                if let Some(slot) = insn.ctrl.read_bar {
                    warp.scoreboard[slot as usize] = cycle + 2;
                }
                if hazard_check && insn.op.writes_dst() && !insn.dst.is_zero() {
                    let lat = if insn.op.is_variable_latency() {
                        result_latency
                    } else {
                        fixed_alu
                    };
                    warp.reg_ready_at[insn.dst.index()] = cycle + lat as u64;
                }
            }
            if let Some((_, e)) = launches.iter_mut().find(|(l, _)| *l == launch_id) {
                e.issued += 1;
            }

            // Post-effects.
            match effect {
                Effect::None => {}
                Effect::InvalidateLine(addr) => icache.invalidate(addr),
                Effect::BarrierArrive => {
                    let warp_block = warps[widx].block_slot;
                    warps[widx].at_barrier = true;
                    let block = blocks[warp_block].as_mut().expect("resident");
                    block.barrier_arrived += 1;
                    stats.barriers += 1;
                    let alive = block.warp_ids.len() as u32 - block.warps_done;
                    if block.barrier_arrived >= alive {
                        block.barrier_arrived = 0;
                        for &w in &block.warp_ids {
                            warps[w].at_barrier = false;
                        }
                    }
                }
                Effect::Exited(done) => {
                    if done {
                        let warp_block = warps[widx].block_slot;
                        let block = blocks[warp_block].as_mut().expect("resident");
                        block.warps_done += 1;
                        // A retiring warp may unblock a barrier.
                        let alive = block.warp_ids.len() as u32 - block.warps_done;
                        if alive > 0 && block.barrier_arrived >= alive {
                            block.barrier_arrived = 0;
                            for &w in &block.warp_ids {
                                warps[w].at_barrier = false;
                            }
                        }
                        if block.warps_done == block.warp_ids.len() as u32 {
                            finished_slot = Some(warp_block);
                        }
                    }
                }
            }
        }

        self.fetched[widx] = None; // PC moved; the next fetch re-checks L0.
        let dispatch = match pipe {
            Pipeline::Fma | Pipeline::Alu | Pipeline::Mem => self.cfg.lat.dispatch_interval as u64,
            Pipeline::Control => 1,
        };
        let part = &mut self.partitions[p];
        part.port_free[pipe_index(pipe)] = cycle + dispatch;
        // Greedy-then-yield: keep issuing from this warp unless it asked
        // to yield.
        part.rr = if insn.ctrl.yield_flag {
            (scan + 1) % part.warp_ids.len()
        } else {
            scan
        };

        if let Some(slot) = finished_slot {
            self.retire_block(slot, cycle);
        }
        Ok(())
    }

    fn retire_block(&mut self, slot: usize, cycle: u64) {
        let block = self.blocks[slot].take().expect("resident block");
        let warps_n = block.warp_ids.len() as u32;
        let regs_per_warp = (block.regs_per_thread * 32).div_ceil(self.cfg.reg_granularity)
            * self.cfg.reg_granularity;
        self.threads_used -= block.block_dim;
        self.regs_used -= regs_per_warp * warps_n;
        self.smem_used -= block.smem.len() as u32;
        self.blocks_resident -= 1;
        let entry = self.launch_entry(block.launch_id);
        entry.completion = entry.completion.max(cycle + 1);
        // Remove retired warps from partition lists to keep scans short.
        let Sm {
            partitions, warps, ..
        } = self;
        for part in partitions {
            part.warp_ids.retain(|&w| !warps[w].done);
            part.rr = 0;
        }
    }

    /// Finds the single live, non-barriered warp on the SM, if exactly
    /// one warp is live — the shape the attestation workloads run (one
    /// 32-thread block per SM). Returns its partition and warp index.
    fn single_live_warp(&self) -> Option<(usize, usize)> {
        let mut found: Option<(usize, usize)> = None;
        for (p, part) in self.partitions.iter().enumerate() {
            for &w in &part.warp_ids {
                if self.warps[w].done {
                    continue;
                }
                if found.is_some() {
                    return None;
                }
                found = Some((p, w));
            }
        }
        found.filter(|&(_, w)| !self.warps[w].at_barrier)
    }

    /// Superblock fast path: issues instructions back-to-back for a lone
    /// live warp without re-scanning the other (empty or retired)
    /// partitions every cycle, and consumes consecutive slots of an
    /// L0-resident line off a single probe. This replicates the general
    /// loop's scan order exactly — same stall reasons and windows, same
    /// fast-forward charging, same icache/jitter/stat updates, in the
    /// same order — so it is bit-exact against tick mode; it only skips
    /// work that provably cannot observe or produce state changes
    /// (partitions with no live warps, `place_blocks` with an empty
    /// queue, repeated L0 probes of a line nothing can evict mid-run).
    ///
    /// Returns when the warp retires, hits a barrier, or faults; the
    /// caller re-evaluates SM state.
    fn drain_single_warp(
        &mut self,
        p: usize,
        widx: usize,
        cycle: &mut u64,
        gmem: &GlobalMemory,
        cycle_limit: u64,
    ) -> Result<()> {
        let scan = self.partitions[p]
            .warp_ids
            .iter()
            .position(|&w| w == widx)
            .expect("warp is resident in partition");
        'outer: loop {
            {
                let warp = &self.warps[widx];
                if warp.done || warp.at_barrier {
                    return Ok(());
                }
                // First failing check decides the stall reason and its
                // expiry, exactly as the general scan would.
                if warp.stall_until > *cycle {
                    let t = warp.stall_until;
                    self.charge_stall_window(StallReason::StallField, t, cycle, cycle_limit)?;
                    continue 'outer;
                }
                if warp.fetch_ready_at > *cycle {
                    let t = warp.fetch_ready_at;
                    self.charge_stall_window(StallReason::InstructionFetch, t, cycle, cycle_limit)?;
                    continue 'outer;
                }
            }
            let pc = self.warps[widx].pc;
            // An instruction already fetched (a memory fill that just
            // retired): issue it without touching the L0 — tick mode
            // would not re-probe either.
            if let Some(&(fpc, insn)) = self.fetched[widx].as_ref() {
                if fpc == pc {
                    self.wait_ready(p, widx, &insn, cycle, cycle_limit)?;
                    self.issue(p, scan, widx, &insn, *cycle, gmem)?;
                    self.stats.slot_cycles += 1;
                    *cycle += 1;
                    if *cycle > cycle_limit {
                        return Err(SimError::CycleLimit { limit: cycle_limit });
                    }
                    continue 'outer;
                }
            }
            let line_addr = self.icache.line_of(pc);
            let Some(line) = self.icache.lookup_l0_line(p, line_addr) else {
                // L0 miss: replicate the fill path (busy slot, fill,
                // penalty) and let the next outer iteration pick the
                // fetched instruction up.
                if self.partitions[p].fill_busy_until > *cycle {
                    let t = self.partitions[p].fill_busy_until;
                    self.charge_stall_window(StallReason::InstructionFetch, t, cycle, cycle_limit)?;
                    continue 'outer;
                }
                let (decoded, level) = self.icache.fetch_fill(p, pc, gmem)?;
                let insn = crate::icache::decoded_or_fault(decoded, pc)?;
                self.fetched[widx] = Some((pc, insn));
                let penalty = match level {
                    FetchLevel::L0 => {
                        self.stats.icache_hits[0] += 1;
                        0
                    }
                    FetchLevel::L1 => {
                        self.stats.icache_hits[1] += 1;
                        self.cfg.lat.ifetch_l1
                    }
                    FetchLevel::L2 => {
                        self.stats.icache_hits[2] += 1;
                        self.cfg.lat.ifetch_l2
                    }
                    FetchLevel::Memory => {
                        self.stats.icache_mem_fills += 1;
                        self.cfg.lat.ifetch_mem
                    }
                };
                if penalty > 0 {
                    let t = *cycle + penalty as u64;
                    self.warps[widx].fetch_ready_at = t;
                    self.partitions[p].fill_busy_until = t;
                    self.charge_stall_window(StallReason::InstructionFetch, t, cycle, cycle_limit)?;
                }
                continue 'outer;
            };
            // Line run: consume consecutive slots while control flow
            // stays straight-line and the ops are simple ALU work. Any
            // complex op (memory, control, `CCTL`, `S2R`) goes through
            // the general `issue` and forces a re-probe, because it may
            // move the PC or invalidate the line under us.
            let mut slot = ((pc - line_addr) / INSN_BYTES as u32) as usize;
            while slot < line.len() {
                let wpc = self.warps[widx].pc;
                let insn = crate::icache::decoded_or_fault(line[slot], wpc)?;
                self.stats.icache_hits[0] += 1;
                self.wait_ready(p, widx, &insn, cycle, cycle_limit)?;
                if is_simple_alu(insn.op) {
                    self.issue_simple(p, scan, widx, &insn, *cycle, gmem)?;
                } else {
                    self.issue(p, scan, widx, &insn, *cycle, gmem)?;
                }
                self.stats.slot_cycles += 1;
                *cycle += 1;
                if *cycle > cycle_limit {
                    return Err(SimError::CycleLimit { limit: cycle_limit });
                }
                if is_simple_alu(insn.op) {
                    slot += 1;
                } else {
                    continue 'outer;
                }
            }
        }
    }

    /// Blocks the drained warp until `insn` can issue, charging scan
    /// cycles and fast-forward windows to the same reasons, in the same
    /// priority order, as the general loop: stall field, then
    /// scoreboard, then dispatch port.
    fn wait_ready(
        &mut self,
        p: usize,
        widx: usize,
        insn: &Instruction,
        cycle: &mut u64,
        cycle_limit: u64,
    ) -> Result<()> {
        loop {
            let warp = &self.warps[widx];
            debug_assert!(warp.fetch_ready_at <= *cycle);
            if warp.stall_until > *cycle {
                let t = warp.stall_until;
                self.charge_stall_window(StallReason::StallField, t, cycle, cycle_limit)?;
                continue;
            }
            if !warp.scoreboard_ready(insn.ctrl.wait_mask, *cycle) {
                let t = warp.scoreboard_ready_at(insn.ctrl.wait_mask);
                self.charge_stall_window(StallReason::Scoreboard, t, cycle, cycle_limit)?;
                continue;
            }
            let port_at = self.partitions[p].port_free[pipe_index(insn.op.pipeline())];
            if port_at > *cycle {
                self.charge_stall_window(StallReason::PortBusy, port_at, cycle, cycle_limit)?;
                continue;
            }
            return Ok(());
        }
    }

    /// One scanned stall cycle, then a fast-forward jump to `t` charged
    /// to the same reason — identical to the general loop's
    /// `record_stall` + skip accounting for a single active partition.
    fn charge_stall_window(
        &mut self,
        reason: StallReason,
        t: u64,
        cycle: &mut u64,
        cycle_limit: u64,
    ) -> Result<()> {
        self.stats.record_stall(reason);
        self.stats.slot_cycles += 1;
        *cycle += 1;
        if *cycle > cycle_limit {
            return Err(SimError::CycleLimit { limit: cycle_limit });
        }
        if t > *cycle {
            let skip = t - *cycle;
            self.stats.stalls[reason as usize] += skip;
            self.stats.slot_cycles += skip;
            *cycle = t;
        }
        Ok(())
    }

    /// Specialized `issue` for the simple ALU opcodes on the superblock
    /// fast path: same architectural and accounting effects, minus the
    /// dispatch that cannot apply (no memory stats, no variable latency,
    /// no effects, no trace — the caller guarantees tracing is off).
    fn issue_simple(
        &mut self,
        p: usize,
        scan: usize,
        widx: usize,
        insn: &Instruction,
        cycle: u64,
        gmem: &GlobalMemory,
    ) -> Result<()> {
        let pipe = insn.op.pipeline();
        self.stats.record_issue(insn.op);
        let fixed_alu = self.cfg.lat.fixed_alu;
        let hazard_check = self.hazard_check;
        if hazard_check {
            let warp = &self.warps[widx];
            let violated = insn.srcs.iter().any(|s| {
                matches!(s, Operand::Reg(r)
                    if !r.is_zero() && warp.reg_ready_at[r.index()] > cycle)
            });
            if violated {
                self.stats.hazard_violations += 1;
                if std::env::var_os("SAGE_HAZARD_DEBUG").is_some() {
                    eprintln!("hazard: pc={:#x} {}", self.warps[widx].pc, insn.body());
                }
            }
        }
        let launch_id;
        {
            let Sm {
                warps,
                blocks,
                sm_id,
                ..
            } = self;
            let warp = &mut warps[widx];
            let block = blocks[warp.block_slot]
                .as_mut()
                .expect("warp's block is resident");
            launch_id = block.launch_id;
            let mut env = ExecEnv {
                gmem,
                smem: &mut block.smem,
                sm_id: *sm_id,
                cycle,
                block_dim: block.block_dim,
                cta_id: block.cta_id,
                grid_dim: block.grid_dim,
            };
            let effect = execute(warp, insn, &mut env)?;
            debug_assert!(matches!(effect, Effect::None));
            warp.issued += 1;
            warp.stall_until = cycle + insn.ctrl.stall.max(1) as u64;
            if let Some(slot) = insn.ctrl.write_bar {
                warp.scoreboard[slot as usize] = cycle + fixed_alu as u64;
            }
            if let Some(slot) = insn.ctrl.read_bar {
                warp.scoreboard[slot as usize] = cycle + 2;
            }
            if hazard_check && insn.op.writes_dst() && !insn.dst.is_zero() {
                warp.reg_ready_at[insn.dst.index()] = cycle + fixed_alu as u64;
            }
        }
        if let Some((_, e)) = self.launches.iter_mut().find(|(l, _)| *l == launch_id) {
            e.issued += 1;
        }
        let dispatch = match pipe {
            Pipeline::Fma | Pipeline::Alu | Pipeline::Mem => self.cfg.lat.dispatch_interval as u64,
            Pipeline::Control => 1,
        };
        let part = &mut self.partitions[p];
        part.port_free[pipe_index(pipe)] = cycle + dispatch;
        part.rr = if insn.ctrl.yield_flag {
            (scan + 1) % part.warp_ids.len()
        } else {
            scan
        };
        Ok(())
    }

    /// Runs the SM until all blocks complete (or `cycle_limit` trips).
    ///
    /// `gmem` is a shared reference: all functional accesses go through
    /// [`GlobalMemory`]'s interior-mutable (atomic) accessors, so several
    /// SMs may run concurrently on worker threads.
    pub fn run(mut self, gmem: &GlobalMemory, cycle_limit: u64) -> Result<SmReport> {
        let mut cycle: u64 = 0;
        loop {
            self.place_blocks(cycle);
            if self.all_done() {
                break;
            }
            // Superblock fast path: with every queued block resident and a
            // single live warp, no event outside that warp can change SM
            // state, so the per-warp drain is exact (see its doc comment).
            if self.fast_forward && self.trace.is_none() && self.pending.is_empty() {
                if let Some((p, widx)) = self.single_live_warp() {
                    self.drain_single_warp(p, widx, &mut cycle, gmem, cycle_limit)?;
                    continue;
                }
            }
            let mut any_issued = false;
            let mut next_event: Option<u64> = None;
            let mut active_partitions = 0u64;
            for p in 0..self.partitions.len() {
                match self.try_issue(p, cycle, gmem)? {
                    SlotOutcome::Issued => {
                        any_issued = true;
                        active_partitions += 1;
                        self.last_reason[p] = StallReason::NoWarp;
                    }
                    SlotOutcome::Stalled(reason, ready) => {
                        active_partitions += 1;
                        self.stats.record_stall(reason);
                        self.last_reason[p] = reason;
                        if let Some(t) = ready {
                            next_event = Some(next_event.map_or(t, |c: u64| c.min(t)));
                        }
                    }
                    SlotOutcome::Empty => {
                        self.last_reason[p] = StallReason::NoWarp;
                    }
                }
            }
            self.stats.slot_cycles += active_partitions;
            cycle += 1;
            if cycle > cycle_limit {
                return Err(SimError::CycleLimit { limit: cycle_limit });
            }
            if !any_issued {
                // Nothing issued: every blocking condition is timed (and
                // expires no earlier than `next_event`) or untimed (needs
                // an issue to clear), so SM state is frozen until the next
                // event. A block waiting in the queue becomes schedulable
                // at its submit cycle if it would fit right now, which is
                // an event too — residency cannot change while nothing
                // issues, so `block_fits` is stable over the window.
                if let Some(pb) = self.pending.front() {
                    if self.block_fits(pb) {
                        // `cycle` was already advanced above, so a block
                        // with submit_cycle <= cycle is placed at the next
                        // loop top — clamp the event to `cycle` so it is
                        // never mistaken for a deadlock.
                        let t = pb.submit_cycle.max(cycle);
                        next_event = Some(next_event.map_or(t, |c: u64| c.min(t)));
                    }
                }
                match next_event {
                    Some(t) if t > cycle && self.fast_forward => {
                        // Jump to the event, charging every skipped cycle
                        // to the stall reason each partition just reported
                        // — re-scanning would report the same reason, so
                        // the stall breakdown matches tick-mode exactly.
                        let skip = t - cycle;
                        for p in 0..self.partitions.len() {
                            if self.last_reason[p] != StallReason::NoWarp {
                                self.stats.stalls[self.last_reason[p] as usize] += skip;
                                self.stats.slot_cycles += skip;
                            }
                        }
                        cycle = t;
                    }
                    Some(_) => {}
                    None => {
                        if self.all_done() {
                            break;
                        }
                        return Err(SimError::Deadlock { cycle });
                    }
                }
            }
        }
        self.stats.cycles = cycle;
        Ok(SmReport {
            stats: self.stats,
            launches: self.launches.into_iter().collect(),
            trace: self.trace,
        })
    }
}

/// Opcodes eligible for the superblock fast path's `issue_simple`:
/// fixed-latency ALU/FMA work that always returns `Effect::None`,
/// advances the PC by one instruction, touches no memory stats and takes
/// no jitter draw. Memory, control, `S2R` and `CCTL` stay on the general
/// `issue` path.
fn is_simple_alu(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Nop
            | Opcode::Imad
            | Opcode::Lea
            | Opcode::LeaHi
            | Opcode::ShfL
            | Opcode::ShfR
            | Opcode::Lop3
            | Opcode::Iadd3
            | Opcode::Mov
            | Opcode::Ffma
            | Opcode::Fadd
            | Opcode::Fmul
            | Opcode::I2f
            | Opcode::F2i
            | Opcode::Lepc
            | Opcode::Isetp
    )
}

fn pick(current: StallReason, candidate: StallReason) -> StallReason {
    // Priority: report the most informative reason when several warps are
    // blocked for different causes.
    fn rank(r: StallReason) -> u8 {
        match r {
            StallReason::InstructionFetch => 5,
            StallReason::Scoreboard => 4,
            StallReason::Barrier => 3,
            StallReason::StallField => 2,
            StallReason::PortBusy => 1,
            StallReason::NoWarp => 0,
        }
    }
    if rank(candidate) > rank(current) {
        candidate
    } else {
        current
    }
}
