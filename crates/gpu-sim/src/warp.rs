//! Per-warp architectural and scheduling state.

use crate::ctrlflow::SyncEntry;

/// Number of lanes (threads) per warp, as on every NVIDIA architecture.
pub const WARP_LANES: u32 = 32;

/// All-lanes-active mask.
pub const FULL_MASK: u32 = u32::MAX;

/// State of one warp: registers, predicates, program counter, divergence
/// and call stacks, plus the scheduling state the SM consults every cycle.
#[derive(Clone, Debug)]
pub struct Warp {
    /// Index of the owning thread block in the SM's block table.
    pub block_slot: usize,
    /// Warp index within its thread block.
    pub warp_in_block: u32,
    /// Current program counter (byte address of the next instruction).
    pub pc: u32,
    /// Lanes that have not executed `EXIT`.
    pub live: u32,
    /// Lanes currently executing (subset of `live`).
    pub active: u32,
    /// Register file: `regs[r * 32 + lane]`.
    pub regs: Vec<u32>,
    /// Predicate registers `P0`–`P6`, one lane mask each.
    pub preds: [u32; 7],
    /// Return addresses pushed by `CAL`.
    pub call_stack: Vec<u32>,
    /// Reconvergence (branch-synchronization) stack.
    pub sync_stack: Vec<SyncEntry>,
    /// The warp may not issue again before this cycle (control-info stall
    /// field).
    pub stall_until: u64,
    /// An instruction fetch completes at this cycle (i-cache miss
    /// penalty).
    pub fetch_ready_at: u64,
    /// Scoreboard (dependency-barrier) slots: cycle at which each slot
    /// signals completion.
    pub scoreboard: [u64; 6],
    /// The warp is blocked at a thread-block barrier.
    pub at_barrier: bool,
    /// All lanes exited; the warp is retired.
    pub done: bool,
    /// Number of registers allocated per thread.
    pub nregs: u32,
    /// Instructions issued by this warp (for accounting).
    pub issued: u64,
    /// Per-register cycle at which the last writer's result is ready —
    /// used only by the optional hazard checker.
    pub reg_ready_at: Vec<u64>,
}

impl Warp {
    /// Creates a fresh warp with all lanes live and registers zeroed.
    pub fn new(block_slot: usize, warp_in_block: u32, entry_pc: u32, nregs: u32) -> Warp {
        Warp {
            block_slot,
            warp_in_block,
            pc: entry_pc,
            live: FULL_MASK,
            active: FULL_MASK,
            regs: vec![0; (nregs * WARP_LANES) as usize],
            preds: [0; 7],
            call_stack: Vec::new(),
            sync_stack: Vec::new(),
            stall_until: 0,
            fetch_ready_at: 0,
            scoreboard: [0; 6],
            at_barrier: false,
            done: false,
            nregs,
            issued: 0,
            reg_ready_at: vec![0; nregs as usize],
        }
    }

    /// Reads register `r` of `lane` (the zero register reads 0).
    #[inline]
    pub fn reg(&self, r: u8, lane: u32) -> u32 {
        if r == 255 {
            0
        } else {
            self.regs[r as usize * WARP_LANES as usize + lane as usize]
        }
    }

    /// Writes register `r` of `lane` (writes to the zero register are
    /// discarded).
    #[inline]
    pub fn set_reg(&mut self, r: u8, lane: u32, value: u32) {
        if r != 255 {
            self.regs[r as usize * WARP_LANES as usize + lane as usize] = value;
        }
    }

    /// Reads predicate `p` of `lane` (`P7`/PT reads true).
    #[inline]
    pub fn pred(&self, p: u8, lane: u32) -> bool {
        if p >= 7 {
            true
        } else {
            self.preds[p as usize] & (1 << lane) != 0
        }
    }

    /// Writes predicate `p` of `lane` (writes to PT are discarded).
    #[inline]
    pub fn set_pred(&mut self, p: u8, lane: u32, value: bool) {
        if p < 7 {
            if value {
                self.preds[p as usize] |= 1 << lane;
            } else {
                self.preds[p as usize] &= !(1 << lane);
            }
        }
    }

    /// The lane mask for which guard predicate `(reg, neg)` holds.
    pub fn guard_mask(&self, reg: u8, neg: bool) -> u32 {
        let base = if reg >= 7 {
            FULL_MASK
        } else {
            self.preds[reg as usize]
        };
        if neg {
            !base
        } else {
            base
        }
    }

    /// Whether all `wait_mask` scoreboard slots have completed by `cycle`.
    pub fn scoreboard_ready(&self, wait_mask: u8, cycle: u64) -> bool {
        (0..6).all(|slot| wait_mask & (1 << slot) == 0 || self.scoreboard[slot] <= cycle)
    }

    /// The effective per-lane byte addresses of a memory instruction
    /// (`base register + immediate offset`), for the active lanes under
    /// the instruction's guard, written into `buf` (returns the count).
    /// Used by the data-cache timing model on every global access — the
    /// caller supplies the buffer so the hot path never allocates.
    pub fn effective_addresses(&self, insn: &sage_isa::Instruction, buf: &mut [u32; 32]) -> usize {
        let guard = self.guard_mask(insn.pred.reg.0, insn.pred.neg);
        let mask = self.active & guard;
        let off = insn.srcs[1].imm().unwrap_or(0);
        let base = insn.srcs[0];
        if let (FULL_MASK, sage_isa::Operand::Reg(r)) = (mask, base) {
            if r.0 != 255 {
                // No divergence, register base: one bounds check and a
                // vectorisable add over the whole row.
                let row = r.0 as usize * WARP_LANES as usize;
                let row = &self.regs[row..row + WARP_LANES as usize];
                for (slot, &b) in buf.iter_mut().zip(row) {
                    *slot = b.wrapping_add(off);
                }
                return WARP_LANES as usize;
            }
        }
        let mut n = 0;
        for lane in 0..WARP_LANES {
            if mask & (1 << lane) != 0 {
                let b = match base {
                    sage_isa::Operand::Reg(r) => self.reg(r.0, lane),
                    sage_isa::Operand::Imm(v) => v,
                };
                buf[n] = b.wrapping_add(off);
                n += 1;
            }
        }
        n
    }

    /// The earliest cycle at which the `wait_mask` slots complete.
    pub fn scoreboard_ready_at(&self, wait_mask: u8) -> u64 {
        (0..6)
            .filter(|slot| wait_mask & (1 << slot) != 0)
            .map(|slot| self.scoreboard[slot])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_semantics() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(255, 3, 42);
        assert_eq!(w.reg(255, 3), 0);
        w.set_reg(4, 3, 42);
        assert_eq!(w.reg(4, 3), 42);
        assert_eq!(w.reg(4, 2), 0);
    }

    #[test]
    fn predicate_semantics() {
        let mut w = Warp::new(0, 0, 0, 8);
        assert!(w.pred(7, 0)); // PT
        w.set_pred(2, 5, true);
        assert!(w.pred(2, 5));
        assert!(!w.pred(2, 4));
        w.set_pred(7, 0, false); // write to PT discarded
        assert!(w.pred(7, 0));
        assert_eq!(w.guard_mask(2, false), 1 << 5);
        assert_eq!(w.guard_mask(2, true), !(1 << 5));
        assert_eq!(w.guard_mask(7, false), FULL_MASK);
    }

    #[test]
    fn scoreboard_wait() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.scoreboard[1] = 100;
        w.scoreboard[3] = 50;
        assert!(w.scoreboard_ready(0, 0));
        assert!(!w.scoreboard_ready(0b0010, 99));
        assert!(w.scoreboard_ready(0b0010, 100));
        assert_eq!(w.scoreboard_ready_at(0b1010), 100);
        assert_eq!(w.scoreboard_ready_at(0b1000), 50);
    }
}
