//! Simulator error types.

use core::fmt;

use sage_isa::DecodeError;

/// Errors raised by the device simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A memory access was out of bounds or misaligned.
    MemFault {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u32,
        /// Description of the access kind (`"global load"`, …).
        kind: &'static str,
    },
    /// Instruction fetch decoded an invalid instruction word.
    DecodeFault {
        /// Program counter of the faulting word.
        pc: u32,
        /// Underlying decode error.
        err: DecodeError,
    },
    /// A kernel launch was rejected (bad geometry or resources).
    BadLaunch(String),
    /// No warp can ever make progress again (e.g. barrier mismatch).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// An allocation did not fit in device memory.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u32,
    },
    /// Host-side copy exceeded the device buffer.
    BadCopy(String),
    /// The executed instruction is not valid in this context (e.g.
    /// `RET` with an empty call stack).
    IllegalInstruction {
        /// Program counter of the offending instruction.
        pc: u32,
        /// Description.
        what: &'static str,
    },
    /// Execution exceeded the configured cycle budget (runaway kernel).
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemFault { addr, width, kind } => {
                write!(f, "memory fault: {kind} of {width} bytes at {addr:#010x}")
            }
            SimError::DecodeFault { pc, err } => {
                write!(f, "instruction decode fault at pc {pc:#010x}: {err}")
            }
            SimError::BadLaunch(msg) => write!(f, "bad kernel launch: {msg}"),
            SimError::Deadlock { cycle } => write!(f, "deadlock detected at cycle {cycle}"),
            SimError::OutOfMemory { requested } => {
                write!(f, "device out of memory: requested {requested} bytes")
            }
            SimError::BadCopy(msg) => write!(f, "bad host/device copy: {msg}"),
            SimError::IllegalInstruction { pc, what } => {
                write!(f, "illegal instruction at pc {pc:#010x}: {what}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Simulator result alias.
pub type Result<T> = std::result::Result<T, SimError>;
