//! Data-cache timing model (paper §2: per-SM L1 data cache, shared L2).
//!
//! Purely a *timing* structure: it tracks tags, not data (functional
//! reads go straight to memory, which is exact because the simulator has
//! no reordering to hide). Per warp load, the distinct cache lines
//! touched by the active lanes are looked up; the instruction's latency
//! is the worst level hit plus a small per-extra-line pipelining cost
//! (memory divergence — the checksum's pseudo-random access pattern
//! touches up to 32 lines per warp load).
//!
//! Stores write through without allocating; atomics are performed at the
//! L2 (they pay L2 latency and install the line there).

use crate::sm::JitterRng;

/// Configuration of the data-cache hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataCacheConfig {
    /// Per-SM L1 data cache size, bytes.
    pub l1_bytes: u32,
    /// L2 slice size, bytes (each SM is simulated with a full-size L2
    /// view; exact for read-mostly working sets).
    pub l2_bytes: u32,
    /// Line size, bytes.
    pub line: u32,
    /// L1 hit latency.
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// Jitter added on L2 hits (interconnect contention).
    pub l2_jitter: u32,
    /// Extra cycles per additional distinct line in one warp access.
    pub diverge_penalty: u32,
}

impl DataCacheConfig {
    /// The A100-flavoured default: 128 KiB L1, 40 MiB L2, 128-byte
    /// lines.
    pub fn a100() -> DataCacheConfig {
        DataCacheConfig {
            l1_bytes: 128 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            line: 128,
            l1_hit: 33,
            l2_hit: 190,
            l2_jitter: 16,
            diverge_penalty: 2,
        }
    }
}

/// Tag-only set-associative LRU level.
#[derive(Clone, Debug)]
struct TagLevel {
    sets: Vec<Vec<u32>>, // MRU last
    ways: usize,
    set_mask: u32,
    line_shift: u32,
}

impl TagLevel {
    fn new(bytes: u32, line: u32, ways: usize) -> TagLevel {
        let lines = (bytes / line).max(1) as usize;
        let sets = (lines / ways).max(1).next_power_of_two();
        TagLevel {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: sets as u32 - 1,
            line_shift: line.trailing_zeros(),
        }
    }

    fn set_of(&self, line_addr: u32) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Probes and installs on miss; returns whether it was a hit.
    fn access(&mut self, line_addr: u32) -> bool {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            ways.remove(pos);
            ways.push(line_addr);
            true
        } else {
            if ways.len() >= self.ways {
                ways.remove(0);
            }
            ways.push(line_addr);
            false
        }
    }
}

/// The per-SM data-cache timing model.
#[derive(Clone, Debug)]
pub struct DataCache {
    cfg: DataCacheConfig,
    l1: TagLevel,
    l2: TagLevel,
    dram_min: u32,
    dram_jitter: u32,
}

impl DataCache {
    /// Creates the hierarchy; DRAM latency parameters come from the
    /// device latency table.
    pub fn new(cfg: DataCacheConfig, dram_min: u32, dram_jitter: u32) -> DataCache {
        DataCache {
            l1: TagLevel::new(cfg.l1_bytes, cfg.line, 4),
            l2: TagLevel::new(cfg.l2_bytes, cfg.line, 16),
            cfg,
            dram_min,
            dram_jitter,
        }
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line - 1)
    }

    /// Latency of a warp load touching `addrs` (per-lane byte addresses).
    pub fn load_latency(&mut self, addrs: &[u32], jitter: &mut JitterRng) -> u32 {
        let mut lines: Vec<u32> = addrs.iter().map(|&a| self.line_of(a)).collect();
        lines.sort_unstable();
        lines.dedup();
        let mut worst = self.cfg.l1_hit;
        for &line in &lines {
            let lat = if self.l1.access(line) {
                self.cfg.l1_hit
            } else if self.l2.access(line) {
                self.cfg.l2_hit + jitter.below(self.cfg.l2_jitter)
            } else {
                self.dram_min + jitter.below(self.dram_jitter)
            };
            worst = worst.max(lat);
        }
        worst + (lines.len().saturating_sub(1) as u32) * self.cfg.diverge_penalty
    }

    /// Latency of a warp atomic at `addrs` (performed at the L2).
    pub fn atomic_latency(&mut self, addrs: &[u32], jitter: &mut JitterRng) -> u32 {
        let mut worst = self.cfg.l2_hit;
        for &addr in addrs {
            let line = self.line_of(addr);
            let lat = if self.l2.access(line) {
                self.cfg.l2_hit + jitter.below(self.cfg.l2_jitter)
            } else {
                self.dram_min + jitter.below(self.dram_jitter)
            };
            worst = worst.max(lat);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jitter() -> JitterRng {
        JitterRng::new(7)
    }

    fn cache() -> DataCache {
        let cfg = DataCacheConfig {
            l1_bytes: 1024,
            l2_bytes: 8 * 1024,
            line: 128,
            l1_hit: 30,
            l2_hit: 200,
            l2_jitter: 0,
            diverge_penalty: 2,
        };
        DataCache::new(cfg, 500, 0)
    }

    #[test]
    fn warms_up_through_the_levels() {
        let mut c = cache();
        let mut j = jitter();
        // Cold: DRAM.
        assert_eq!(c.load_latency(&[0], &mut j), 500);
        // Warm: L1.
        assert_eq!(c.load_latency(&[0], &mut j), 30);
        // Same line, different offset: still L1.
        assert_eq!(c.load_latency(&[64], &mut j), 30);
    }

    #[test]
    fn l1_capacity_eviction_falls_to_l2() {
        let mut c = cache();
        let mut j = jitter();
        // Touch 16 lines (2× the 8-line L1) twice: second pass hits L2,
        // not L1.
        for round in 0..2 {
            for i in 0..16u32 {
                let lat = c.load_latency(&[i * 128], &mut j);
                if round == 1 {
                    assert_eq!(lat, 200, "line {i} should hit L2");
                }
            }
        }
    }

    #[test]
    fn divergent_warp_access_pays_per_line() {
        let mut c = cache();
        let mut j = jitter();
        // Warm 4 lines into L1.
        for i in 0..4u32 {
            c.load_latency(&[i * 128], &mut j);
            c.load_latency(&[i * 128], &mut j);
        }
        // A warp load spanning all 4 (L1-resident) lines: base + 3×2.
        let addrs: Vec<u32> = (0..4).map(|i| i * 128).collect();
        assert_eq!(c.load_latency(&addrs, &mut j), 30 + 6);
    }

    #[test]
    fn coalesced_access_is_one_line() {
        let mut c = cache();
        let mut j = jitter();
        let addrs: Vec<u32> = (0..32).map(|l| l * 4).collect(); // one line
        c.load_latency(&addrs, &mut j);
        assert_eq!(c.load_latency(&addrs, &mut j), 30);
    }

    #[test]
    fn atomics_execute_at_l2() {
        let mut c = cache();
        let mut j = jitter();
        assert_eq!(c.atomic_latency(&[0], &mut j), 500); // cold
        assert_eq!(c.atomic_latency(&[0], &mut j), 200); // L2 resident
    }
}
