//! Data-cache timing model (paper §2: per-SM L1 data cache, shared L2).
//!
//! Purely a *timing* structure: it tracks tags, not data (functional
//! reads go straight to memory, which is exact because the simulator has
//! no reordering to hide). Per warp load, the distinct cache lines
//! touched by the active lanes are looked up; the instruction's latency
//! is the worst level hit plus a small per-extra-line pipelining cost
//! (memory divergence — the checksum's pseudo-random access pattern
//! touches up to 32 lines per warp load).
//!
//! Stores write through without allocating; atomics are performed at the
//! L2 (they pay L2 latency and install the line there).

use crate::sm::JitterRng;

/// Configuration of the data-cache hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataCacheConfig {
    /// Per-SM L1 data cache size, bytes.
    pub l1_bytes: u32,
    /// L2 slice size, bytes (each SM is simulated with a full-size L2
    /// view; exact for read-mostly working sets).
    pub l2_bytes: u32,
    /// Line size, bytes.
    pub line: u32,
    /// L1 hit latency.
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// Jitter added on L2 hits (interconnect contention).
    pub l2_jitter: u32,
    /// Extra cycles per additional distinct line in one warp access.
    pub diverge_penalty: u32,
}

impl DataCacheConfig {
    /// The A100-flavoured default: 128 KiB L1, 40 MiB L2, 128-byte
    /// lines.
    pub fn a100() -> DataCacheConfig {
        DataCacheConfig {
            l1_bytes: 128 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            line: 128,
            l1_hit: 33,
            l2_hit: 190,
            l2_jitter: 16,
            diverge_penalty: 2,
        }
    }
}

/// Sentinel for an empty way. Line addresses are always aligned to the
/// (power-of-two, > 1) line size, so an all-ones tag can never collide.
const EMPTY: u32 = u32::MAX;

/// Tag-only set-associative LRU level.
///
/// Each way is one packed `u64` entry — last-use stamp in the high half,
/// line tag in the low half — so the tag scan and the victim scan touch
/// the same host cache line (the model's L2 tag table is megabytes and
/// every probe of it is a host cache miss; splitting tags and stamps
/// into two arrays costs a second miss per set). Recency is tracked by
/// stamp update rather than by reordering entries, which is an identical
/// hit/miss/eviction sequence to a move-to-front list: the LRU victim is
/// exactly the minimum stamp. Stamps are 32-bit; when the tick counter
/// saturates, all sets are re-ranked in place (order-preserving, so the
/// eviction sequence is unchanged).
#[derive(Clone, Debug)]
struct TagLevel {
    entries: Vec<u64>,
    tick: u32,
    ways: usize,
    set_mask: u32,
    line_shift: u32,
}

impl TagLevel {
    fn new(bytes: u32, line: u32, ways: usize) -> TagLevel {
        debug_assert!(line.is_power_of_two() && line > 1);
        let lines = (bytes / line).max(1) as usize;
        let sets = (lines / ways).max(1).next_power_of_two();
        TagLevel {
            entries: vec![EMPTY as u64; sets * ways],
            tick: 0,
            ways,
            set_mask: sets as u32 - 1,
            line_shift: line.trailing_zeros(),
        }
    }

    fn set_of(&self, line_addr: u32) -> usize {
        ((line_addr >> self.line_shift) & self.set_mask) as usize
    }

    /// Prefetches the host cache lines holding the set of `line_addr`
    /// (first and last way span the whole set). No simulated effect.
    fn prefetch_set(&self, line_addr: u32) {
        let base = self.set_of(line_addr) * self.ways;
        crate::host::prefetch_read(&self.entries[base]);
        crate::host::prefetch_read(&self.entries[base + self.ways - 1]);
    }

    /// Probes and installs on miss; returns whether it was a hit.
    fn access(&mut self, line_addr: u32) -> bool {
        if self.tick == u32::MAX {
            self.renormalize();
        }
        self.tick += 1;
        let stamped = ((self.tick as u64) << 32) | line_addr as u64;
        let base = self.set_of(line_addr) * self.ways;
        let set = &mut self.entries[base..base + self.ways];
        // Hit or free way first. This level has no invalidate, so free
        // ways are always packed behind the occupied ones.
        let mut slot = None;
        for (i, &e) in set.iter().enumerate() {
            let tag = e as u32;
            if tag == line_addr {
                set[i] = stamped;
                return true;
            }
            if tag == EMPTY {
                slot = Some(i);
                break;
            }
        }
        let i = slot.unwrap_or_else(|| {
            // Miss, set full: evict the least recently used way.
            let mut victim = 0;
            for i in 1..set.len() {
                if set[i] >> 32 < set[victim] >> 32 {
                    victim = i;
                }
            }
            victim
        });
        set[i] = stamped;
        false
    }

    /// Re-ranks every set's stamps to 1..=ways, preserving their relative
    /// order (so LRU victims are unchanged), and resets the tick just
    /// above them. Runs once per 2^32 accesses.
    fn renormalize(&mut self) {
        let ways = self.ways;
        for set in self.entries.chunks_mut(ways) {
            let mut order: Vec<usize> = (0..ways).collect();
            order.sort_unstable_by_key(|&i| set[i] >> 32);
            for (rank, &i) in order.iter().enumerate() {
                set[i] = ((rank as u64 + 1) << 32) | (set[i] as u32 as u64);
            }
        }
        self.tick = self.ways as u32;
    }
}

/// The per-SM data-cache timing model.
#[derive(Clone, Debug)]
pub struct DataCache {
    cfg: DataCacheConfig,
    l1: TagLevel,
    l2: TagLevel,
    dram_min: u32,
    dram_jitter: u32,
}

impl DataCache {
    /// Creates the hierarchy; DRAM latency parameters come from the
    /// device latency table.
    pub fn new(cfg: DataCacheConfig, dram_min: u32, dram_jitter: u32) -> DataCache {
        DataCache {
            l1: TagLevel::new(cfg.l1_bytes, cfg.line, 4),
            l2: TagLevel::new(cfg.l2_bytes, cfg.line, 16),
            cfg,
            dram_min,
            dram_jitter,
        }
    }

    fn line_of(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line - 1)
    }

    /// Latency of a warp load touching `addrs` (per-lane byte addresses,
    /// at most one per lane — this is the per-load hot path, so the line
    /// list lives on the stack).
    pub fn load_latency(&mut self, addrs: &[u32], jitter: &mut JitterRng) -> u32 {
        debug_assert!(addrs.len() <= 32);
        let mut buf = [0u32; 32];
        let n = addrs.len().min(32);
        for (slot, &a) in buf.iter_mut().zip(addrs) {
            *slot = self.line_of(a);
        }
        // Warm-up hints (host-side only, no simulated effect): the probes
        // below form a serial chain of host cache misses into the
        // multi-megabyte L2 tag table. Hinting every line now — before
        // the sort/dedup pass — gives the misses that long to land.
        // Duplicate hints are harmless; the (host-resident) L1 table
        // needs none.
        for &line in &buf[..n] {
            self.l2.prefetch_set(line);
        }
        let lines = &mut buf[..n];
        lines.sort_unstable();
        let mut uniq = 0;
        for i in 0..lines.len() {
            if i == 0 || lines[i] != lines[uniq - 1] {
                lines[uniq] = lines[i];
                uniq += 1;
            }
        }
        let lines = &buf[..uniq];
        let mut worst = self.cfg.l1_hit;
        for &line in lines {
            let lat = if self.l1.access(line) {
                self.cfg.l1_hit
            } else if self.l2.access(line) {
                self.cfg.l2_hit + jitter.below(self.cfg.l2_jitter)
            } else {
                self.dram_min + jitter.below(self.dram_jitter)
            };
            worst = worst.max(lat);
        }
        worst + (lines.len().saturating_sub(1) as u32) * self.cfg.diverge_penalty
    }

    /// Latency of a warp atomic at `addrs` (performed at the L2).
    pub fn atomic_latency(&mut self, addrs: &[u32], jitter: &mut JitterRng) -> u32 {
        let mut worst = self.cfg.l2_hit;
        for &addr in addrs {
            let line = self.line_of(addr);
            let lat = if self.l2.access(line) {
                self.cfg.l2_hit + jitter.below(self.cfg.l2_jitter)
            } else {
                self.dram_min + jitter.below(self.dram_jitter)
            };
            worst = worst.max(lat);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jitter() -> JitterRng {
        JitterRng::new(7)
    }

    fn cache() -> DataCache {
        let cfg = DataCacheConfig {
            l1_bytes: 1024,
            l2_bytes: 8 * 1024,
            line: 128,
            l1_hit: 30,
            l2_hit: 200,
            l2_jitter: 0,
            diverge_penalty: 2,
        };
        DataCache::new(cfg, 500, 0)
    }

    #[test]
    fn warms_up_through_the_levels() {
        let mut c = cache();
        let mut j = jitter();
        // Cold: DRAM.
        assert_eq!(c.load_latency(&[0], &mut j), 500);
        // Warm: L1.
        assert_eq!(c.load_latency(&[0], &mut j), 30);
        // Same line, different offset: still L1.
        assert_eq!(c.load_latency(&[64], &mut j), 30);
    }

    #[test]
    fn l1_capacity_eviction_falls_to_l2() {
        let mut c = cache();
        let mut j = jitter();
        // Touch 16 lines (2× the 8-line L1) twice: second pass hits L2,
        // not L1.
        for round in 0..2 {
            for i in 0..16u32 {
                let lat = c.load_latency(&[i * 128], &mut j);
                if round == 1 {
                    assert_eq!(lat, 200, "line {i} should hit L2");
                }
            }
        }
    }

    #[test]
    fn divergent_warp_access_pays_per_line() {
        let mut c = cache();
        let mut j = jitter();
        // Warm 4 lines into L1.
        for i in 0..4u32 {
            c.load_latency(&[i * 128], &mut j);
            c.load_latency(&[i * 128], &mut j);
        }
        // A warp load spanning all 4 (L1-resident) lines: base + 3×2.
        let addrs: Vec<u32> = (0..4).map(|i| i * 128).collect();
        assert_eq!(c.load_latency(&addrs, &mut j), 30 + 6);
    }

    #[test]
    fn coalesced_access_is_one_line() {
        let mut c = cache();
        let mut j = jitter();
        let addrs: Vec<u32> = (0..32).map(|l| l * 4).collect(); // one line
        c.load_latency(&addrs, &mut j);
        assert_eq!(c.load_latency(&addrs, &mut j), 30);
    }

    #[test]
    fn atomics_execute_at_l2() {
        let mut c = cache();
        let mut j = jitter();
        assert_eq!(c.atomic_latency(&[0], &mut j), 500); // cold
        assert_eq!(c.atomic_latency(&[0], &mut j), 200); // L2 resident
    }
}
