//! The simulator's telemetry adapter.
//!
//! The per-SM hot loops keep accumulating into plain-`u64`
//! [`KernelStats`](crate::stats::KernelStats) — zero atomics inside a
//! simulated cycle — and this adapter folds each finished run's
//! aggregate into shared [`sage_telemetry`] instruments once, at
//! [`Device::run`](crate::Device::run) exit. That keeps instrumentation
//! off the simulation's critical path entirely: the cost is a handful
//! of relaxed `fetch_add`s per *run*, not per cycle.
//!
//! Fault-hook applications arrive as cumulative
//! [`FaultCounters`](crate::fault::FaultCounters); the adapter exports
//! deltas so the `sim_faults_applied_total` series counts events like
//! every other counter.

use sage_telemetry::{Counter, Histogram, Registry};

use crate::fault::FaultCounters;
use crate::stats::{KernelStats, StallReason};

/// Pipeline labels, in [`KernelStats`] field order.
const PIPES: [&str; 4] = ["fma", "alu", "mem", "control"];
/// Instruction-cache level labels.
const ICACHE_LEVELS: [&str; 3] = ["l0", "l1", "l2"];
/// Global-memory operation labels.
const GMEM_OPS: [&str; 3] = ["load", "store", "atomic"];
/// Fault-kind labels, in [`FaultCounters`] field order.
const FAULT_KINDS: [&str; 3] = ["flip", "stall", "skew"];

/// Shared instruments for one device, minted from a [`Registry`].
pub(crate) struct SimTelemetry {
    runs: Counter,
    run_cycles: Histogram,
    issued: [Counter; 4],
    stalls: [Counter; 6],
    slot_cycles: Counter,
    icache_hits: [Counter; 3],
    icache_fills: Counter,
    gmem: [Counter; 3],
    smem: Counter,
    barriers: Counter,
    faults: [Counter; 3],
    /// Cumulative fault counters at the previous observation, for
    /// delta export.
    last_faults: FaultCounters,
    /// Registry handle and owned labels for series whose label set is
    /// only known at fold time (the per-opcode dispatch counters).
    reg: Registry,
    labels: Vec<(String, String)>,
}

/// How many of a run's most-issued opcodes are exported as labeled
/// `sim_opcode_issues_total` counters at each fold.
const TOP_OPCODES: usize = 8;

impl SimTelemetry {
    /// Mints the device's series under `labels` (callers add a
    /// `device` label to keep fleet members distinct).
    pub(crate) fn new(reg: &Registry, labels: &[(&str, &str)]) -> SimTelemetry {
        fn with<'a>(
            labels: &[(&'a str, &'a str)],
            extra: (&'a str, &'a str),
        ) -> Vec<(&'a str, &'a str)> {
            let mut l = labels.to_vec();
            l.push(extra);
            l
        }
        SimTelemetry {
            runs: reg.counter("sim_runs_total", labels),
            run_cycles: reg.histogram("sim_run_cycles", labels),
            issued: PIPES.map(|p| reg.counter("sim_issued_total", &with(labels, ("pipe", p)))),
            stalls: StallReason::ALL.map(|r| {
                reg.counter(
                    "sim_stall_cycles_total",
                    &with(labels, ("reason", r.label())),
                )
            }),
            slot_cycles: reg.counter("sim_slot_cycles_total", labels),
            icache_hits: ICACHE_LEVELS
                .map(|l| reg.counter("sim_icache_hits_total", &with(labels, ("level", l)))),
            icache_fills: reg.counter("sim_icache_mem_fills_total", labels),
            gmem: GMEM_OPS.map(|k| reg.counter("sim_gmem_ops_total", &with(labels, ("kind", k)))),
            smem: reg.counter("sim_smem_accesses_total", labels),
            barriers: reg.counter("sim_barriers_total", labels),
            faults: FAULT_KINDS
                .map(|k| reg.counter("sim_faults_applied_total", &with(labels, ("kind", k)))),
            last_faults: FaultCounters::default(),
            reg: reg.clone(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Folds one finished run's aggregate stats and the device's
    /// cumulative fault counters into the shared instruments.
    pub(crate) fn observe_run(&mut self, stats: &KernelStats, faults: FaultCounters) {
        self.runs.inc();
        self.run_cycles.record(stats.cycles);
        for (c, n) in self.issued.iter().zip([
            stats.issued_fma,
            stats.issued_alu,
            stats.issued_mem,
            stats.issued_control,
        ]) {
            c.add(n);
        }
        for (c, &n) in self.stalls.iter().zip(&stats.stalls) {
            c.add(n);
        }
        self.slot_cycles.add(stats.slot_cycles);
        for (c, &n) in self.icache_hits.iter().zip(&stats.icache_hits) {
            c.add(n);
        }
        self.icache_fills.add(stats.icache_mem_fills);
        for (c, n) in
            self.gmem
                .iter()
                .zip([stats.gmem_loads, stats.gmem_stores, stats.gmem_atomics])
        {
            c.add(n);
        }
        self.smem.add(stats.smem_accesses);
        self.barriers.add(stats.barriers);
        // Per-opcode dispatch mix: the run's top-issued opcodes, as
        // labeled counters. Minted lazily (get-or-create) because the
        // label set depends on the workload; the registry dedupes, so a
        // stable mix costs no new series after the first run.
        for (op, n) in stats.top_opcodes(TOP_OPCODES) {
            let mut labels: Vec<(&str, &str)> = self
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            labels.push(("opcode", op.mnemonic()));
            self.reg.counter("sim_opcode_issues_total", &labels).add(n);
        }
        for (c, (now, before)) in self.faults.iter().zip([
            (faults.flips, self.last_faults.flips),
            (faults.stalls, self.last_faults.stalls),
            (faults.skews, self.last_faults.skews),
        ]) {
            c.add(now.saturating_sub(before));
        }
        self.last_faults = faults;
    }
}
