//! Device configuration: compute, memory-hierarchy and latency parameters.

/// Latency and dispatch parameters of the timing model, in cycles.
///
/// Defaults follow the microbenchmark literature the paper builds on
/// (Jia et al., "Dissecting the NVIDIA Volta/Turing GPU architecture"):
/// 4-cycle fixed ALU/FMA latency, 2-cycle dispatch interval per pipeline
/// port, ~30-cycle shared memory, and 250–500-cycle global memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Latencies {
    /// Fixed result latency of ALU/FMA instructions (read-after-write).
    pub fixed_alu: u32,
    /// Dispatch interval of the FMA and ALU ports: a port accepts a new
    /// instruction every `dispatch_interval` cycles.
    pub dispatch_interval: u32,
    /// Shared-memory access latency.
    pub smem: u32,
    /// Minimum global-memory access latency.
    pub gmem_min: u32,
    /// Maximum additional (jittered) global-memory latency; the effective
    /// latency is `gmem_min + jitter % (gmem_jitter + 1)`.
    pub gmem_jitter: u32,
    /// Instruction fetch penalty on an L0i miss that hits in L1i.
    pub ifetch_l1: u32,
    /// Instruction fetch penalty on an L1i miss that hits in L2i.
    pub ifetch_l2: u32,
    /// Instruction fetch penalty on an L2i miss (fetch from device
    /// memory).
    pub ifetch_mem: u32,
    /// Global atomic latency (performed at the L2/memory partition).
    pub atomic_global: u32,
    /// Shared atomic latency.
    pub atomic_shared: u32,
    /// One-way PCIe command/DMA latency, in cycles.
    pub pcie: u32,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            fixed_alu: 4,
            dispatch_interval: 2,
            smem: 29,
            gmem_min: 250,
            gmem_jitter: 250,
            ifetch_l1: 12,
            ifetch_l2: 32,
            ifetch_mem: 190,
            atomic_global: 300,
            atomic_shared: 40,
            pcie: 700,
        }
    }
}

/// Full device configuration.
///
/// The [`DeviceConfig::a100`] preset mirrors the NVIDIA A100 constants the
/// paper quotes (108 SMs, 4 processing blocks per SM, 64 warps per SM,
/// 65,536 registers per SM, 192 KiB L1, 128 KiB instruction-cache slice);
/// the `sim_*` presets are proportionally scaled devices that keep every
/// architectural ratio but run fast enough for tests and benches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Processing blocks (warp schedulers / dispatch-port pairs) per SM.
    pub partitions_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Register allocation granularity (registers are allocated in
    /// multiples of this, per warp).
    pub reg_granularity: u32,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: u32,
    /// L0 instruction cache per processing block, bytes.
    pub l0i_bytes: u32,
    /// L1 instruction cache per SM, bytes.
    pub l1i_bytes: u32,
    /// Instruction-cache slice at the L2 level, bytes (the 128 KiB level
    /// whose eviction the self-modifying code must force, paper §7.1).
    pub l2i_bytes: u32,
    /// Instruction cache line size, bytes.
    pub icache_line: u32,
    /// Device (global) memory size, bytes.
    pub gmem_bytes: u32,
    /// Core clock in Hz, used only to convert cycles to seconds in
    /// reports.
    pub clock_hz: u64,
    /// Timing-model latencies.
    pub lat: Latencies,
    /// Optional data-cache timing model; `None` means every global access
    /// pays raw DRAM latency (`gmem_min` + jitter).
    pub dcache: Option<crate::dcache::DataCacheConfig>,
}

impl DeviceConfig {
    /// The NVIDIA A100 (SXM4 40 GB) preset, constants as quoted in the
    /// paper (§2, §6.3) and the Ampere whitepaper.
    pub fn a100() -> DeviceConfig {
        DeviceConfig {
            name: "A100-SIM",
            num_sms: 108,
            partitions_per_sm: 4,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65_536,
            reg_granularity: 8,
            smem_per_sm: 164 * 1024,
            l0i_bytes: 16 * 1024,
            l1i_bytes: 64 * 1024,
            l2i_bytes: 128 * 1024,
            icache_line: 128,
            gmem_bytes: 512 * 1024 * 1024,
            clock_hz: 1_410_000_000,
            lat: Latencies::default(),
            dcache: Some(crate::dcache::DataCacheConfig::a100()),
        }
    }

    /// A scaled-down device for benches: 8 SMs, same per-SM architecture
    /// as the A100.
    pub fn sim_large() -> DeviceConfig {
        DeviceConfig {
            name: "SIM-LARGE",
            num_sms: 8,
            gmem_bytes: 64 * 1024 * 1024,
            ..DeviceConfig::a100()
        }
    }

    /// A small device for integration tests: 2 SMs, reduced caches so
    /// cache-eviction phenomena are reachable with small programs.
    pub fn sim_small() -> DeviceConfig {
        DeviceConfig {
            name: "SIM-SMALL",
            num_sms: 2,
            partitions_per_sm: 4,
            max_threads_per_sm: 512,
            max_blocks_per_sm: 8,
            regs_per_sm: 16_384,
            reg_granularity: 8,
            smem_per_sm: 48 * 1024,
            l0i_bytes: 2 * 1024,
            l1i_bytes: 4 * 1024,
            l2i_bytes: 8 * 1024,
            icache_line: 128,
            gmem_bytes: 8 * 1024 * 1024,
            clock_hz: 1_410_000_000,
            lat: Latencies::default(),
            dcache: None,
        }
    }

    /// A minimal device for unit tests: 1 SM, tiny caches.
    pub fn sim_tiny() -> DeviceConfig {
        DeviceConfig {
            name: "SIM-TINY",
            num_sms: 1,
            max_threads_per_sm: 256,
            max_blocks_per_sm: 4,
            regs_per_sm: 8_192,
            smem_per_sm: 16 * 1024,
            l0i_bytes: 1024,
            l1i_bytes: 2 * 1024,
            l2i_bytes: 4 * 1024,
            gmem_bytes: 2 * 1024 * 1024,
            ..DeviceConfig::sim_small()
        }
    }

    /// The smallest device, for fleet-scale control-plane benchmarks
    /// that instantiate tens of thousands: one SM and just enough
    /// global memory for a `fleet_tiny` VF image. Fleet members built
    /// on it run *modeled* rounds (the session computes the checksum on
    /// the host and synthesizes timing), so the device exists to give
    /// each member a coherent identity — config, memory, bus — at
    /// minimal resident cost, not to execute kernels.
    pub fn sim_nano() -> DeviceConfig {
        DeviceConfig {
            name: "SIM-NANO",
            gmem_bytes: 16 * 1024,
            ..DeviceConfig::sim_tiny()
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / 32
    }

    /// Maximum resident warps per processing block.
    pub fn max_warps_per_partition(&self) -> u32 {
        self.max_warps_per_sm() / self.partitions_per_sm
    }

    /// Registers available per thread at full occupancy
    /// (`regs_per_sm / max_threads_per_sm`, = 32 on the A100 — the number
    /// the checksum function is built around, paper §6.3).
    pub fn regs_per_thread_full_occupancy(&self) -> u32 {
        self.regs_per_sm / self.max_threads_per_sm
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// The number of thread blocks of `block_threads` threads, each using
    /// `regs_per_thread` registers and `smem` bytes of shared memory, that
    /// fit on one SM simultaneously.
    pub fn blocks_resident_per_sm(
        &self,
        block_threads: u32,
        regs_per_thread: u32,
        smem: u32,
    ) -> u32 {
        if block_threads == 0 || block_threads > self.max_threads_per_sm {
            return 0;
        }
        let warps = block_threads.div_ceil(32);
        // Registers are allocated per warp with `reg_granularity`
        // granularity.
        let regs_per_warp =
            (regs_per_thread * 32).div_ceil(self.reg_granularity) * self.reg_granularity;
        let by_threads = self.max_threads_per_sm / (warps * 32);
        let by_regs = self
            .regs_per_sm
            .checked_div(regs_per_warp * warps)
            .unwrap_or(self.max_blocks_per_sm);
        let by_smem = self
            .smem_per_sm
            .checked_div(smem)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads
            .min(by_regs)
            .min(by_smem)
            .min(self.max_blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_constants_match_paper() {
        let c = DeviceConfig::a100();
        assert_eq!(c.num_sms, 108);
        assert_eq!(c.max_warps_per_sm(), 64);
        assert_eq!(c.partitions_per_sm, 4);
        // 32 registers per thread at full occupancy (paper §6.3).
        assert_eq!(c.regs_per_thread_full_occupancy(), 32);
        // Full GPU occupancy: 2 blocks of 1024 threads per SM, 216 total
        // (paper §6.3).
        assert_eq!(c.blocks_resident_per_sm(1024, 32, 0), 2);
        assert_eq!(c.blocks_resident_per_sm(1024, 32, 0) * c.num_sms, 216);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let c = DeviceConfig::a100();
        // 64 registers per thread halves occupancy.
        assert_eq!(c.blocks_resident_per_sm(1024, 64, 0), 1);
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let c = DeviceConfig::a100();
        assert_eq!(c.blocks_resident_per_sm(256, 32, c.smem_per_sm / 2), 2);
    }

    #[test]
    fn occupancy_rejects_oversized_blocks() {
        let c = DeviceConfig::sim_tiny();
        assert_eq!(c.blocks_resident_per_sm(4096, 32, 0), 0);
        assert_eq!(c.blocks_resident_per_sm(0, 32, 0), 0);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let c = DeviceConfig::a100();
        let s = c.cycles_to_seconds(1_410_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_presets_keep_ratios() {
        for c in [
            DeviceConfig::sim_large(),
            DeviceConfig::sim_small(),
            DeviceConfig::sim_tiny(),
        ] {
            assert_eq!(c.partitions_per_sm, 4);
            assert_eq!(c.regs_per_thread_full_occupancy(), 32);
            assert!(c.max_warps_per_sm() % c.partitions_per_sm == 0);
        }
    }
}
