//! Functional execution of one instruction across the active lanes of a
//! warp.

use sage_isa::{Instruction, Opcode, Operand, SpecialReg};

use crate::{
    ctrlflow,
    error::{Result, SimError},
    mem::GlobalMemory,
    warp::{Warp, WARP_LANES},
};

/// Execution environment handed to [`execute`]: the memories and identity
/// of the executing thread block.
pub struct ExecEnv<'a> {
    /// Device global memory (shared; interior-mutable via atomics).
    pub gmem: &'a GlobalMemory,
    /// Shared memory of the executing thread block.
    pub smem: &'a mut [u8],
    /// Physical SM identifier.
    pub sm_id: u32,
    /// Current cycle (for `SR_CLOCKLO`).
    pub cycle: u64,
    /// Threads per block.
    pub block_dim: u32,
    /// Thread-block index within the grid.
    pub cta_id: u32,
    /// Number of blocks in the grid.
    pub grid_dim: u32,
}

/// Control effect of an executed instruction, handled by the SM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effect {
    /// Ordinary instruction; PC already advanced.
    None,
    /// The warp arrived at a thread-block barrier.
    BarrierArrive,
    /// Lanes exited; `true` if the warp fully retired.
    Exited(bool),
    /// Invalidate the instruction-cache line containing this address.
    InvalidateLine(u32),
}

const STEP: u32 = sage_isa::INSN_BYTES as u32;

fn smem_read_u32(smem: &[u8], addr: u32) -> Result<u32> {
    let a = addr as usize;
    if !addr.is_multiple_of(4) || a + 4 > smem.len() {
        return Err(SimError::MemFault {
            addr,
            width: 4,
            kind: "shared load",
        });
    }
    Ok(u32::from_le_bytes([
        smem[a],
        smem[a + 1],
        smem[a + 2],
        smem[a + 3],
    ]))
}

fn smem_write_u32(smem: &mut [u8], addr: u32, value: u32) -> Result<()> {
    let a = addr as usize;
    if !addr.is_multiple_of(4) || a + 4 > smem.len() {
        return Err(SimError::MemFault {
            addr,
            width: 4,
            kind: "shared store",
        });
    }
    smem[a..a + 4].copy_from_slice(&value.to_le_bytes());
    Ok(())
}

#[inline]
fn f32_of(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// A source operand resolved once per instruction (not once per lane):
/// either a base index into the warp's register file row for the operand's
/// register, or a broadcast immediate. `RZ` resolves to `Imm(0)`.
#[derive(Clone, Copy)]
enum Src {
    Row(usize),
    Imm(u32),
}

#[inline]
fn resolve(s: Operand) -> Src {
    match s {
        Operand::Reg(r) if r.0 == 255 => Src::Imm(0),
        Operand::Reg(r) => Src::Row(r.0 as usize * WARP_LANES as usize),
        Operand::Imm(v) => Src::Imm(v),
    }
}

#[inline(always)]
fn fetch_src(warp: &Warp, s: Src, lane: usize) -> u32 {
    match s {
        Src::Row(base) => warp.regs[base + lane],
        Src::Imm(v) => v,
    }
}

/// Copies a source operand's full register row (or broadcast immediate)
/// into a stack buffer — the no-divergence fast path reads sources as
/// plain slices.
#[inline(always)]
fn gather(warp: &Warp, s: Src, out: &mut [u32; WARP_LANES as usize]) {
    match s {
        Src::Row(base) => out.copy_from_slice(&warp.regs[base..base + WARP_LANES as usize]),
        Src::Imm(v) => out.fill(v),
    }
}

/// Word-parallel LOP3: evaluates the 8-entry truth table over all 32 bits
/// at once (one minterm per set LUT bit) instead of bit-by-bit. Branchless
/// — each minterm is masked by the sign-extended LUT bit — so the per-lane
/// loop it runs in vectorises.
#[inline]
fn lop3_word(a: u32, b: u32, c: u32, lut: u8) -> u32 {
    let l = lut as u32;
    let bit = |k: u32| (l >> k & 1).wrapping_neg();
    (bit(0) & !a & !b & !c)
        | (bit(1) & !a & !b & c)
        | (bit(2) & !a & b & !c)
        | (bit(3) & !a & b & c)
        | (bit(4) & a & !b & !c)
        | (bit(5) & a & !b & c)
        | (bit(6) & a & b & !c)
        | (bit(7) & a & b & c)
}

/// Executes `insn` on `warp` in `env`, updating architectural state and
/// advancing the PC. Scheduling (stalls, scoreboards, ports) is the SM's
/// job; this function is purely functional semantics.
///
/// On x86-64 hosts with AVX2 this dispatches to a
/// `#[target_feature(enable = "avx2")]` clone of the interpreter body:
/// the baseline x86-64 target (SSE2) cannot vectorize the 32-lane
/// integer-multiply rows (`IMAD` etc. — no packed 32-bit multiply), so
/// only the AVX2 clone gets SIMD lane loops. Lane semantics are
/// value-identical on both paths (wrapping integer ops; the float ops
/// are IEEE-exact scalar-or-vector), so dispatch cannot change
/// architectural state.
pub fn execute(warp: &mut Warp, insn: &Instruction, env: &mut ExecEnv<'_>) -> Result<Effect> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { execute_avx2(warp, insn, env) };
    }
    execute_impl(warp, insn, env)
}

/// AVX2-enabled clone of [`execute_impl`]; the attribute lets LLVM use
/// 256-bit integer ops for the lane loops inlined below.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn execute_avx2(
    warp: &mut Warp,
    insn: &Instruction,
    env: &mut ExecEnv<'_>,
) -> Result<Effect> {
    execute_impl(warp, insn, env)
}

#[allow(clippy::too_many_lines)]
#[inline(always)]
fn execute_impl(warp: &mut Warp, insn: &Instruction, env: &mut ExecEnv<'_>) -> Result<Effect> {
    let guard = warp.guard_mask(insn.pred.reg.0, insn.pred.neg);
    let mask = warp.active & guard;
    let pc = warp.pc;

    // Control instructions manage the PC themselves.
    match insn.op {
        Opcode::Bra => {
            let target = insn.srcs[1].imm().unwrap_or(0);
            ctrlflow::branch(warp, mask, target)?;
            return Ok(Effect::None);
        }
        Opcode::Bssy => {
            let target = insn.srcs[1].imm().unwrap_or(0);
            warp.sync_stack.push(ctrlflow::SyncEntry {
                rejoin_pc: target,
                orig_mask: warp.active,
                pending: None,
            });
            warp.pc += STEP;
            return Ok(Effect::None);
        }
        Opcode::Bsync => {
            ctrlflow::bsync(warp)?;
            return Ok(Effect::None);
        }
        Opcode::Exit => {
            let done = ctrlflow::exit_lanes(warp, mask)?;
            return Ok(Effect::Exited(done));
        }
        Opcode::Jmx => {
            if mask == 0 {
                // Uniformly predicated off: fall through.
                warp.pc += STEP;
                return Ok(Effect::None);
            }
            if mask != warp.active {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "divergent JMX",
                });
            }
            // Warp-uniform: all active lanes must agree on the target.
            let first = mask.trailing_zeros();
            let target = match insn.srcs[0] {
                Operand::Reg(r) => warp.reg(r.0, first),
                Operand::Imm(v) => v,
            };
            for lane in 0..WARP_LANES {
                if mask & (1 << lane) != 0 {
                    let t = match insn.srcs[0] {
                        Operand::Reg(r) => warp.reg(r.0, lane),
                        Operand::Imm(v) => v,
                    };
                    if t != target {
                        return Err(SimError::IllegalInstruction {
                            pc,
                            what: "JMX with non-uniform target",
                        });
                    }
                }
            }
            warp.pc = target;
            return Ok(Effect::None);
        }
        Opcode::Cal => {
            if mask != warp.active {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "divergent CAL",
                });
            }
            let target = insn.srcs[1].imm().unwrap_or(0);
            warp.call_stack.push(warp.pc + STEP);
            warp.pc = target;
            return Ok(Effect::None);
        }
        Opcode::Ret => {
            let Some(ret) = warp.call_stack.pop() else {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "RET with empty call stack",
                });
            };
            warp.pc = ret;
            return Ok(Effect::None);
        }
        Opcode::BarSync => {
            if warp.active != warp.live {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "BAR.SYNC in divergent control flow",
                });
            }
            warp.pc += STEP;
            return Ok(Effect::BarrierArrive);
        }
        _ => {}
    }

    // Data instructions. The opcode and operand kinds are resolved ONCE
    // per instruction; only the per-lane arithmetic runs inside the lane
    // loops. This is the simulator's hottest path (one call per issued
    // instruction), so the dispatch must not be repeated 32 times.
    let [sa, sb, sc] = insn.srcs;
    let (sa, sb, sc) = (resolve(sa), resolve(sb), resolve(sc));
    let d = insn.dst.0;
    let mut effect = Effect::None;

    // Three-source ALU ops writing `d`: one tight loop per opcode. The
    // no-divergence case (all 32 lanes active, real destination) gathers
    // the source rows into stack arrays and writes the destination row as
    // a slice — no per-lane mask tests or bounds checks, so the per-op
    // loops vectorise. Per-lane ops read only their own lane, so snapshot
    // sources cannot observe a destination alias differently from the
    // lane-at-a-time path.
    macro_rules! lanes {
        (|$a:ident, $b:ident, $c:ident| $body:expr) => {
            if mask == crate::warp::FULL_MASK && d != 255 {
                let mut ra = [0u32; WARP_LANES as usize];
                let mut rb = [0u32; WARP_LANES as usize];
                let mut rc = [0u32; WARP_LANES as usize];
                gather(warp, sa, &mut ra);
                gather(warp, sb, &mut rb);
                gather(warp, sc, &mut rc);
                let _ = &rc;
                let base = d as usize * WARP_LANES as usize;
                let dst = &mut warp.regs[base..base + WARP_LANES as usize];
                for lane in 0..WARP_LANES as usize {
                    let $a = ra[lane];
                    let $b = rb[lane];
                    let $c = rc[lane];
                    let _ = &$c;
                    dst[lane] = $body;
                }
            } else {
                for lane in 0..WARP_LANES as usize {
                    if mask & (1u32 << lane) == 0 {
                        continue;
                    }
                    let $a = fetch_src(warp, sa, lane);
                    let $b = fetch_src(warp, sb, lane);
                    let $c = fetch_src(warp, sc, lane);
                    let _ = &$c;
                    let v = $body;
                    warp.set_reg(d, lane as u32, v);
                }
            }
        };
    }

    match insn.op {
        Opcode::Nop => {}
        Opcode::Imad => lanes!(|a, b, c| a.wrapping_mul(b).wrapping_add(c)),
        Opcode::Lea => {
            let sh = insn.shift;
            lanes!(|a, b, _c| (a << sh).wrapping_add(b));
        }
        Opcode::LeaHi => {
            let sh = insn.shift;
            lanes!(|a, b, _c| (a >> sh).wrapping_add(b));
        }
        Opcode::ShfL => lanes!(|a, b, c| {
            let s = b & 31;
            if s == 0 {
                a
            } else {
                (a << s) | (c >> (32 - s))
            }
        }),
        Opcode::ShfR => lanes!(|a, b, c| {
            let s = b & 31;
            if s == 0 {
                a
            } else {
                (a >> s) | (c << (32 - s))
            }
        }),
        Opcode::Lop3 => {
            let lut = insn.lut;
            lanes!(|a, b, c| lop3_word(a, b, c, lut));
        }
        Opcode::Iadd3 => lanes!(|a, b, c| a.wrapping_add(b).wrapping_add(c)),
        Opcode::Mov => lanes!(|a, _b, _c| a),
        Opcode::Ffma => lanes!(|a, b, c| f32_of(a).mul_add(f32_of(b), f32_of(c)).to_bits()),
        Opcode::Fadd => lanes!(|a, b, _c| (f32_of(a) + f32_of(b)).to_bits()),
        Opcode::Fmul => lanes!(|a, b, _c| (f32_of(a) * f32_of(b)).to_bits()),
        Opcode::I2f => lanes!(|a, _b, _c| (a as i32 as f32).to_bits()),
        Opcode::F2i => lanes!(|a, _b, _c| (f32_of(a) as i32) as u32),
        Opcode::Lepc => lanes!(|_a, _b, _c| pc),
        Opcode::Isetp => {
            let p = insn.dst_pred.map(|p| p.0).unwrap_or(7);
            let cmp = insn.cmp;
            if mask == crate::warp::FULL_MASK && p < 7 {
                let mut ra = [0u32; WARP_LANES as usize];
                let mut rb = [0u32; WARP_LANES as usize];
                gather(warp, sa, &mut ra);
                gather(warp, sb, &mut rb);
                let mut bits = 0u32;
                for lane in 0..WARP_LANES as usize {
                    bits |= (cmp.eval(ra[lane], rb[lane]) as u32) << lane;
                }
                warp.preds[p as usize] = bits;
            } else {
                for lane in 0..WARP_LANES as usize {
                    if mask & (1u32 << lane) == 0 {
                        continue;
                    }
                    let a = fetch_src(warp, sa, lane);
                    let b = fetch_src(warp, sb, lane);
                    warp.set_pred(p, lane as u32, cmp.eval(a, b));
                }
            }
        }
        Opcode::S2r => {
            let code = match sb {
                Src::Imm(v) => v as u8,
                Src::Row(_) => 0,
            };
            let Some(sr) = SpecialReg::from_code(code) else {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "S2R of unknown special register",
                });
            };
            for lane in 0..WARP_LANES {
                if mask & (1 << lane) == 0 {
                    continue;
                }
                let v = match sr {
                    SpecialReg::TidX => warp.warp_in_block * WARP_LANES + lane,
                    SpecialReg::CtaIdX => env.cta_id,
                    SpecialReg::NCtaIdX => env.grid_dim,
                    SpecialReg::LaneId => lane,
                    SpecialReg::WarpId => warp.warp_in_block,
                    SpecialReg::SmId => env.sm_id,
                    SpecialReg::ClockLo => env.cycle as u32,
                    SpecialReg::NTidX => env.block_dim,
                };
                warp.set_reg(d, lane, v);
            }
        }
        Opcode::Ldg => {
            // Address generation and prefetch first, then the loads: on
            // large working sets each lane's read is a host cache miss,
            // and hinting all lanes up front overlaps the misses instead
            // of serialising them through the loop.
            let mut addrs = [0u32; WARP_LANES as usize];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                if mask & (1u32 << lane) != 0 {
                    *slot = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                    env.gmem.prefetch(*slot);
                }
            }
            for (lane, &addr) in addrs.iter().enumerate() {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                let v = env.gmem.read_u32(addr)?;
                warp.set_reg(d, lane as u32, v);
            }
        }
        Opcode::Stg => {
            let mut addrs = [0u32; WARP_LANES as usize];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                if mask & (1u32 << lane) != 0 {
                    *slot = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                    env.gmem.prefetch(*slot);
                }
            }
            for (lane, &addr) in addrs.iter().enumerate() {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                env.gmem.write_u32(addr, fetch_src(warp, sc, lane))?;
            }
        }
        Opcode::Lds => {
            for lane in 0..WARP_LANES as usize {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                let addr = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                let v = smem_read_u32(env.smem, addr)?;
                warp.set_reg(d, lane as u32, v);
            }
        }
        Opcode::Sts => {
            for lane in 0..WARP_LANES as usize {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                let addr = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                smem_write_u32(env.smem, addr, fetch_src(warp, sc, lane))?;
            }
        }
        Opcode::AtomgAdd => {
            for lane in 0..WARP_LANES as usize {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                let addr = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                env.gmem.atomic_add_u32(addr, fetch_src(warp, sc, lane))?;
            }
        }
        Opcode::AtomsAdd => {
            for lane in 0..WARP_LANES as usize {
                if mask & (1u32 << lane) == 0 {
                    continue;
                }
                let addr = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                let old = smem_read_u32(env.smem, addr)?;
                smem_write_u32(env.smem, addr, old.wrapping_add(fetch_src(warp, sc, lane)))?;
            }
        }
        Opcode::Cctl => {
            // Uniform maintenance op: take the first active lane's
            // address.
            if mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                let addr = fetch_src(warp, sa, lane).wrapping_add(fetch_src(warp, sb, lane));
                effect = Effect::InvalidateLine(addr);
            }
        }
        Opcode::Bra
        | Opcode::Bssy
        | Opcode::Bsync
        | Opcode::BarSync
        | Opcode::Cal
        | Opcode::Ret
        | Opcode::Exit
        | Opcode::Jmx => unreachable!("control ops handled above"),
    }

    warp.pc += STEP;
    Ok(effect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_isa::{Pred, PredReg, Reg};

    fn env<'a>(gmem: &'a GlobalMemory, smem: &'a mut [u8]) -> ExecEnv<'a> {
        ExecEnv {
            gmem,
            smem,
            sm_id: 3,
            cycle: 77,
            block_dim: 128,
            cta_id: 2,
            grid_dim: 5,
        }
    }

    fn run_one(insn: Instruction, warp: &mut Warp) -> Effect {
        let gmem = GlobalMemory::new(4096);
        let mut smem = vec![0u8; 1024];
        let mut e = env(&gmem, &mut smem);
        execute(warp, &insn, &mut e).unwrap()
    }

    #[test]
    fn imad_per_lane() {
        let mut w = Warp::new(0, 0, 0, 8);
        for lane in 0..32 {
            w.set_reg(1, lane, lane);
            w.set_reg(2, lane, 10);
        }
        let mut i = Instruction::new(Opcode::Imad);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Reg(1).into()];
        run_one(i, &mut w);
        for lane in 0..32 {
            assert_eq!(w.reg(3, lane), lane * 10 + lane);
        }
        assert_eq!(w.pc, 16);
    }

    #[test]
    fn lea_hi_is_shift_add() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x100);
        w.set_reg(2, 0, 7);
        let mut i = Instruction::new(Opcode::LeaHi);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Operand::RZ];
        i.shift = 4;
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), (0x100 >> 4) + 7);
    }

    #[test]
    fn funnel_shifts() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x8000_0001);
        w.set_reg(2, 0, 0xFFFF_FFFF);
        let mut i = Instruction::new(Opcode::ShfL);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Operand::Imm(4), Reg(2).into()];
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), (0x8000_0001u32 << 4) | 0xF);

        let mut i = Instruction::new(Opcode::ShfR);
        i.dst = Reg(4);
        i.srcs = [Reg(1).into(), Operand::Imm(0), Reg(2).into()];
        run_one(i, &mut w);
        assert_eq!(w.reg(4, 0), 0x8000_0001); // shift 0 = identity
    }

    #[test]
    fn lop3_xor() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0b1100);
        w.set_reg(2, 0, 0b1010);
        let mut i = Instruction::new(Opcode::Lop3);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Operand::RZ];
        i.lut = sage_isa::op::lut::XOR_AB;
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), 0b0110);
    }

    #[test]
    fn predication_skips_lanes() {
        let mut w = Warp::new(0, 0, 0, 8);
        for lane in 0..32 {
            w.set_pred(0, lane, lane % 2 == 0);
        }
        let mut i = Instruction::new(Opcode::Mov);
        i.dst = Reg(5);
        i.srcs[0] = Operand::Imm(9);
        i.pred = Pred::on(PredReg(0));
        run_one(i, &mut w);
        for lane in 0..32 {
            assert_eq!(w.reg(5, lane), if lane % 2 == 0 { 9 } else { 0 });
        }
    }

    #[test]
    fn special_registers() {
        let mut w = Warp::new(0, 3, 0, 8);
        let gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&gmem, &mut smem);
        let mut i = Instruction::new(Opcode::S2r);
        i.dst = Reg(0);
        i.srcs[1] = Operand::Imm(SpecialReg::TidX.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 5), 3 * 32 + 5);

        i.srcs[1] = Operand::Imm(SpecialReg::SmId.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 0), 3);

        i.srcs[1] = Operand::Imm(SpecialReg::CtaIdX.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 0), 2);
    }

    #[test]
    fn global_and_shared_memory() {
        let mut w = Warp::new(0, 0, 0, 8);
        let gmem = GlobalMemory::new(4096);
        let mut smem = vec![0u8; 256];
        for lane in 0..32 {
            w.set_reg(1, lane, lane * 4);
            w.set_reg(2, lane, 100 + lane);
        }
        let mut e = env(&gmem, &mut smem);
        // STG [R1+0x80], R2
        let mut st = Instruction::new(Opcode::Stg);
        st.srcs = [Reg(1).into(), Operand::Imm(0x80), Reg(2).into()];
        execute(&mut w, &st, &mut e).unwrap();
        // LDG R3, [R1+0x80]
        let mut ld = Instruction::new(Opcode::Ldg);
        ld.dst = Reg(3);
        ld.srcs = [Reg(1).into(), Operand::Imm(0x80), Operand::RZ];
        execute(&mut w, &ld, &mut e).unwrap();
        for lane in 0..32 {
            assert_eq!(w.reg(3, lane), 100 + lane);
        }
        // Shared atomics accumulate in lane order.
        let mut at = Instruction::new(Opcode::AtomsAdd);
        at.srcs = [Reg(255).into(), Operand::Imm(0), Reg(2).into()];
        execute(&mut w, &at, &mut e).unwrap();
        let total: u32 = (0..32).map(|l| 100 + l).sum();
        assert_eq!(smem_read_u32(&smem, 0).unwrap(), total);
    }

    #[test]
    fn lepc_reads_pc() {
        let mut w = Warp::new(0, 0, 0x240, 8);
        let mut i = Instruction::new(Opcode::Lepc);
        i.dst = Reg(7);
        run_one(i, &mut w);
        assert_eq!(w.reg(7, 0), 0x240);
        assert_eq!(w.pc, 0x250);
    }

    #[test]
    fn fp32_ops() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 2.5f32.to_bits());
        w.set_reg(2, 0, 4.0f32.to_bits());
        w.set_reg(3, 0, 1.0f32.to_bits());
        let mut i = Instruction::new(Opcode::Ffma);
        i.dst = Reg(4);
        i.srcs = [Reg(1).into(), Reg(2).into(), Reg(3).into()];
        run_one(i, &mut w);
        assert_eq!(f32::from_bits(w.reg(4, 0)), 11.0);

        let mut c = Instruction::new(Opcode::I2f);
        c.dst = Reg(5);
        w.set_reg(6, 0, (-3i32) as u32);
        c.srcs[0] = Reg(6).into();
        run_one(c, &mut w);
        assert_eq!(f32::from_bits(w.reg(5, 0)), -3.0);

        let mut c = Instruction::new(Opcode::F2i);
        c.dst = Reg(7);
        c.srcs[0] = Reg(4).into();
        run_one(c, &mut w);
        assert_eq!(w.reg(7, 0), 11);
    }

    #[test]
    fn mem_fault_propagates() {
        let mut w = Warp::new(0, 0, 0, 8);
        let gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&gmem, &mut smem);
        let mut ld = Instruction::new(Opcode::Ldg);
        ld.dst = Reg(3);
        ld.srcs = [Operand::Imm(4096), Operand::Imm(0), Operand::RZ];
        // srcA must be a register for LDG in real code, but an immediate
        // base exercises the fault path deterministically.
        assert!(execute(&mut w, &ld, &mut e).is_err());
    }

    #[test]
    fn barrier_requires_convergence() {
        let mut w = Warp::new(0, 0, 0, 8);
        let eff = run_one(Instruction::new(Opcode::BarSync), &mut w);
        assert_eq!(eff, Effect::BarrierArrive);

        let mut w2 = Warp::new(0, 0, 0, 8);
        w2.active = 1; // divergent
        let gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&gmem, &mut smem);
        assert!(execute(&mut w2, &Instruction::new(Opcode::BarSync), &mut e).is_err());
    }

    #[test]
    fn cctl_yields_invalidate_effect() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x400);
        let mut i = Instruction::new(Opcode::Cctl);
        i.srcs = [Reg(1).into(), Operand::Imm(0x80), Operand::RZ];
        let eff = run_one(i, &mut w);
        assert_eq!(eff, Effect::InvalidateLine(0x480));
    }
}
