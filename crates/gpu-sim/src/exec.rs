//! Functional execution of one instruction across the active lanes of a
//! warp.

use sage_isa::{Instruction, Opcode, Operand, SpecialReg};

use crate::{
    ctrlflow,
    error::{Result, SimError},
    mem::GlobalMemory,
    warp::{Warp, WARP_LANES},
};

/// Execution environment handed to [`execute`]: the memories and identity
/// of the executing thread block.
pub struct ExecEnv<'a> {
    /// Device global memory.
    pub gmem: &'a mut GlobalMemory,
    /// Shared memory of the executing thread block.
    pub smem: &'a mut [u8],
    /// Physical SM identifier.
    pub sm_id: u32,
    /// Current cycle (for `SR_CLOCKLO`).
    pub cycle: u64,
    /// Threads per block.
    pub block_dim: u32,
    /// Thread-block index within the grid.
    pub cta_id: u32,
    /// Number of blocks in the grid.
    pub grid_dim: u32,
}

/// Control effect of an executed instruction, handled by the SM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Effect {
    /// Ordinary instruction; PC already advanced.
    None,
    /// The warp arrived at a thread-block barrier.
    BarrierArrive,
    /// Lanes exited; `true` if the warp fully retired.
    Exited(bool),
    /// Invalidate the instruction-cache line containing this address.
    InvalidateLine(u32),
}

const STEP: u32 = sage_isa::INSN_BYTES as u32;

fn smem_read_u32(smem: &[u8], addr: u32) -> Result<u32> {
    let a = addr as usize;
    if addr % 4 != 0 || a + 4 > smem.len() {
        return Err(SimError::MemFault {
            addr,
            width: 4,
            kind: "shared load",
        });
    }
    Ok(u32::from_le_bytes([
        smem[a],
        smem[a + 1],
        smem[a + 2],
        smem[a + 3],
    ]))
}

fn smem_write_u32(smem: &mut [u8], addr: u32, value: u32) -> Result<()> {
    let a = addr as usize;
    if addr % 4 != 0 || a + 4 > smem.len() {
        return Err(SimError::MemFault {
            addr,
            width: 4,
            kind: "shared store",
        });
    }
    smem[a..a + 4].copy_from_slice(&value.to_le_bytes());
    Ok(())
}

#[inline]
fn f32_of(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Executes `insn` on `warp` in `env`, updating architectural state and
/// advancing the PC. Scheduling (stalls, scoreboards, ports) is the SM's
/// job; this function is purely functional semantics.
#[allow(clippy::too_many_lines)]
pub fn execute(warp: &mut Warp, insn: &Instruction, env: &mut ExecEnv<'_>) -> Result<Effect> {
    let guard = warp.guard_mask(insn.pred.reg.0, insn.pred.neg);
    let mask = warp.active & guard;
    let pc = warp.pc;

    // Control instructions manage the PC themselves.
    match insn.op {
        Opcode::Bra => {
            let target = insn.srcs[1].imm().unwrap_or(0);
            ctrlflow::branch(warp, mask, target)?;
            return Ok(Effect::None);
        }
        Opcode::Bssy => {
            let target = insn.srcs[1].imm().unwrap_or(0);
            warp.sync_stack.push(ctrlflow::SyncEntry {
                rejoin_pc: target,
                orig_mask: warp.active,
                pending: None,
            });
            warp.pc += STEP;
            return Ok(Effect::None);
        }
        Opcode::Bsync => {
            ctrlflow::bsync(warp)?;
            return Ok(Effect::None);
        }
        Opcode::Exit => {
            let done = ctrlflow::exit_lanes(warp, mask)?;
            return Ok(Effect::Exited(done));
        }
        Opcode::Jmx => {
            if mask == 0 {
                // Uniformly predicated off: fall through.
                warp.pc += STEP;
                return Ok(Effect::None);
            }
            if mask != warp.active {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "divergent JMX",
                });
            }
            // Warp-uniform: all active lanes must agree on the target.
            let first = mask.trailing_zeros();
            let target = match insn.srcs[0] {
                Operand::Reg(r) => warp.reg(r.0, first),
                Operand::Imm(v) => v,
            };
            for lane in 0..WARP_LANES {
                if mask & (1 << lane) != 0 {
                    let t = match insn.srcs[0] {
                        Operand::Reg(r) => warp.reg(r.0, lane),
                        Operand::Imm(v) => v,
                    };
                    if t != target {
                        return Err(SimError::IllegalInstruction {
                            pc,
                            what: "JMX with non-uniform target",
                        });
                    }
                }
            }
            warp.pc = target;
            return Ok(Effect::None);
        }
        Opcode::Cal => {
            if mask != warp.active {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "divergent CAL",
                });
            }
            let target = insn.srcs[1].imm().unwrap_or(0);
            warp.call_stack.push(warp.pc + STEP);
            warp.pc = target;
            return Ok(Effect::None);
        }
        Opcode::Ret => {
            let Some(ret) = warp.call_stack.pop() else {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "RET with empty call stack",
                });
            };
            warp.pc = ret;
            return Ok(Effect::None);
        }
        Opcode::BarSync => {
            if warp.active != warp.live {
                return Err(SimError::IllegalInstruction {
                    pc,
                    what: "BAR.SYNC in divergent control flow",
                });
            }
            warp.pc += STEP;
            return Ok(Effect::BarrierArrive);
        }
        _ => {}
    }

    // Data instructions: per-lane over the guarded active mask.
    let [sa, sb, sc] = insn.srcs;
    let val = |warp: &Warp, s: Operand, lane: u32| -> u32 {
        match s {
            Operand::Reg(r) => warp.reg(r.0, lane),
            Operand::Imm(v) => v,
        }
    };
    let mut effect = Effect::None;

    for lane in 0..WARP_LANES {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let a = val(warp, sa, lane);
        let b = val(warp, sb, lane);
        let c = val(warp, sc, lane);
        let d = insn.dst.0;
        match insn.op {
            Opcode::Nop => {}
            Opcode::Imad => warp.set_reg(d, lane, a.wrapping_mul(b).wrapping_add(c)),
            Opcode::Lea => warp.set_reg(d, lane, (a << insn.shift).wrapping_add(b)),
            Opcode::LeaHi => warp.set_reg(d, lane, (a >> insn.shift).wrapping_add(b)),
            Opcode::ShfL => {
                let s = b & 31;
                let v = if s == 0 { a } else { (a << s) | (c >> (32 - s)) };
                warp.set_reg(d, lane, v);
            }
            Opcode::ShfR => {
                let s = b & 31;
                let v = if s == 0 { a } else { (a >> s) | (c << (32 - s)) };
                warp.set_reg(d, lane, v);
            }
            Opcode::Lop3 => {
                let mut out = 0u32;
                for bit in 0..32 {
                    let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
                    out |= (((insn.lut as u32) >> idx) & 1) << bit;
                }
                warp.set_reg(d, lane, out);
            }
            Opcode::Iadd3 => warp.set_reg(d, lane, a.wrapping_add(b).wrapping_add(c)),
            Opcode::Mov => warp.set_reg(d, lane, a),
            Opcode::Isetp => {
                let p = insn.dst_pred.map(|p| p.0).unwrap_or(7);
                let r = insn.cmp.eval(a, b);
                warp.set_pred(p, lane, r);
            }
            Opcode::S2r => {
                let code = sb.imm().unwrap_or(0) as u8;
                let v = match SpecialReg::from_code(code) {
                    Some(SpecialReg::TidX) => warp.warp_in_block * WARP_LANES + lane,
                    Some(SpecialReg::CtaIdX) => env.cta_id,
                    Some(SpecialReg::NCtaIdX) => env.grid_dim,
                    Some(SpecialReg::LaneId) => lane,
                    Some(SpecialReg::WarpId) => warp.warp_in_block,
                    Some(SpecialReg::SmId) => env.sm_id,
                    Some(SpecialReg::ClockLo) => env.cycle as u32,
                    Some(SpecialReg::NTidX) => env.block_dim,
                    None => {
                        return Err(SimError::IllegalInstruction {
                            pc,
                            what: "S2R of unknown special register",
                        })
                    }
                };
                warp.set_reg(d, lane, v);
            }
            Opcode::Lepc => warp.set_reg(d, lane, pc),
            Opcode::Ldg => {
                let addr = a.wrapping_add(b);
                let v = env.gmem.read_u32(addr)?;
                warp.set_reg(d, lane, v);
            }
            Opcode::Stg => {
                let addr = a.wrapping_add(b);
                env.gmem.write_u32(addr, c)?;
            }
            Opcode::Lds => {
                let addr = a.wrapping_add(b);
                let v = smem_read_u32(env.smem, addr)?;
                warp.set_reg(d, lane, v);
            }
            Opcode::Sts => {
                let addr = a.wrapping_add(b);
                smem_write_u32(env.smem, addr, c)?;
            }
            Opcode::AtomgAdd => {
                let addr = a.wrapping_add(b);
                env.gmem.atomic_add_u32(addr, c)?;
            }
            Opcode::AtomsAdd => {
                let addr = a.wrapping_add(b);
                let old = smem_read_u32(env.smem, addr)?;
                smem_write_u32(env.smem, addr, old.wrapping_add(c))?;
            }
            Opcode::Cctl => {
                // Uniform maintenance op: take the first active lane's
                // address.
                if matches!(effect, Effect::None) {
                    effect = Effect::InvalidateLine(a.wrapping_add(b));
                }
            }
            Opcode::Ffma => {
                let r = f32_of(a).mul_add(f32_of(b), f32_of(c));
                warp.set_reg(d, lane, r.to_bits());
            }
            Opcode::Fadd => warp.set_reg(d, lane, (f32_of(a) + f32_of(b)).to_bits()),
            Opcode::Fmul => warp.set_reg(d, lane, (f32_of(a) * f32_of(b)).to_bits()),
            Opcode::I2f => warp.set_reg(d, lane, (a as i32 as f32).to_bits()),
            Opcode::F2i => warp.set_reg(d, lane, (f32_of(a) as i32) as u32),
            Opcode::Bra
            | Opcode::Bssy
            | Opcode::Bsync
            | Opcode::BarSync
            | Opcode::Cal
            | Opcode::Ret
            | Opcode::Exit
            | Opcode::Jmx => unreachable!("control ops handled above"),
        }
    }

    warp.pc += STEP;
    Ok(effect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_isa::{CtrlInfo, Pred, PredReg, Reg};

    fn env<'a>(gmem: &'a mut GlobalMemory, smem: &'a mut [u8]) -> ExecEnv<'a> {
        ExecEnv {
            gmem,
            smem,
            sm_id: 3,
            cycle: 77,
            block_dim: 128,
            cta_id: 2,
            grid_dim: 5,
        }
    }

    fn run_one(insn: Instruction, warp: &mut Warp) -> Effect {
        let mut gmem = GlobalMemory::new(4096);
        let mut smem = vec![0u8; 1024];
        let mut e = env(&mut gmem, &mut smem);
        execute(warp, &insn, &mut e).unwrap()
    }

    #[test]
    fn imad_per_lane() {
        let mut w = Warp::new(0, 0, 0, 8);
        for lane in 0..32 {
            w.set_reg(1, lane, lane);
            w.set_reg(2, lane, 10);
        }
        let mut i = Instruction::new(Opcode::Imad);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Reg(1).into()];
        run_one(i, &mut w);
        for lane in 0..32 {
            assert_eq!(w.reg(3, lane), lane * 10 + lane);
        }
        assert_eq!(w.pc, 16);
    }

    #[test]
    fn lea_hi_is_shift_add() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x100);
        w.set_reg(2, 0, 7);
        let mut i = Instruction::new(Opcode::LeaHi);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Operand::RZ];
        i.shift = 4;
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), (0x100 >> 4) + 7);
    }

    #[test]
    fn funnel_shifts() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x8000_0001);
        w.set_reg(2, 0, 0xFFFF_FFFF);
        let mut i = Instruction::new(Opcode::ShfL);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Operand::Imm(4), Reg(2).into()];
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), (0x8000_0001u32 << 4) | 0xF);

        let mut i = Instruction::new(Opcode::ShfR);
        i.dst = Reg(4);
        i.srcs = [Reg(1).into(), Operand::Imm(0), Reg(2).into()];
        run_one(i, &mut w);
        assert_eq!(w.reg(4, 0), 0x8000_0001); // shift 0 = identity
    }

    #[test]
    fn lop3_xor() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0b1100);
        w.set_reg(2, 0, 0b1010);
        let mut i = Instruction::new(Opcode::Lop3);
        i.dst = Reg(3);
        i.srcs = [Reg(1).into(), Reg(2).into(), Operand::RZ];
        i.lut = sage_isa::op::lut::XOR_AB;
        run_one(i, &mut w);
        assert_eq!(w.reg(3, 0), 0b0110);
    }

    #[test]
    fn predication_skips_lanes() {
        let mut w = Warp::new(0, 0, 0, 8);
        for lane in 0..32 {
            w.set_pred(0, lane, lane % 2 == 0);
        }
        let mut i = Instruction::new(Opcode::Mov);
        i.dst = Reg(5);
        i.srcs[0] = Operand::Imm(9);
        i.pred = Pred::on(PredReg(0));
        run_one(i, &mut w);
        for lane in 0..32 {
            assert_eq!(w.reg(5, lane), if lane % 2 == 0 { 9 } else { 0 });
        }
    }

    #[test]
    fn special_registers() {
        let mut w = Warp::new(0, 3, 0, 8);
        let mut gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&mut gmem, &mut smem);
        let mut i = Instruction::new(Opcode::S2r);
        i.dst = Reg(0);
        i.srcs[1] = Operand::Imm(SpecialReg::TidX.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 5), 3 * 32 + 5);

        i.srcs[1] = Operand::Imm(SpecialReg::SmId.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 0), 3);

        i.srcs[1] = Operand::Imm(SpecialReg::CtaIdX.code() as u32);
        execute(&mut w, &i, &mut e).unwrap();
        assert_eq!(w.reg(0, 0), 2);
    }

    #[test]
    fn global_and_shared_memory() {
        let mut w = Warp::new(0, 0, 0, 8);
        let mut gmem = GlobalMemory::new(4096);
        let mut smem = vec![0u8; 256];
        for lane in 0..32 {
            w.set_reg(1, lane, lane * 4);
            w.set_reg(2, lane, 100 + lane);
        }
        let mut e = env(&mut gmem, &mut smem);
        // STG [R1+0x80], R2
        let mut st = Instruction::new(Opcode::Stg);
        st.srcs = [Reg(1).into(), Operand::Imm(0x80), Reg(2).into()];
        execute(&mut w, &st, &mut e).unwrap();
        // LDG R3, [R1+0x80]
        let mut ld = Instruction::new(Opcode::Ldg);
        ld.dst = Reg(3);
        ld.srcs = [Reg(1).into(), Operand::Imm(0x80), Operand::RZ];
        execute(&mut w, &ld, &mut e).unwrap();
        for lane in 0..32 {
            assert_eq!(w.reg(3, lane), 100 + lane);
        }
        // Shared atomics accumulate in lane order.
        let mut at = Instruction::new(Opcode::AtomsAdd);
        at.srcs = [Reg(255).into(), Operand::Imm(0), Reg(2).into()];
        execute(&mut w, &at, &mut e).unwrap();
        let total: u32 = (0..32).map(|l| 100 + l).sum();
        assert_eq!(smem_read_u32(&smem, 0).unwrap(), total);
    }

    #[test]
    fn lepc_reads_pc() {
        let mut w = Warp::new(0, 0, 0x240, 8);
        let mut i = Instruction::new(Opcode::Lepc);
        i.dst = Reg(7);
        run_one(i, &mut w);
        assert_eq!(w.reg(7, 0), 0x240);
        assert_eq!(w.pc, 0x250);
    }

    #[test]
    fn fp32_ops() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 2.5f32.to_bits());
        w.set_reg(2, 0, 4.0f32.to_bits());
        w.set_reg(3, 0, 1.0f32.to_bits());
        let mut i = Instruction::new(Opcode::Ffma);
        i.dst = Reg(4);
        i.srcs = [Reg(1).into(), Reg(2).into(), Reg(3).into()];
        run_one(i, &mut w);
        assert_eq!(f32::from_bits(w.reg(4, 0)), 11.0);

        let mut c = Instruction::new(Opcode::I2f);
        c.dst = Reg(5);
        w.set_reg(6, 0, (-3i32) as u32);
        c.srcs[0] = Reg(6).into();
        run_one(c, &mut w);
        assert_eq!(f32::from_bits(w.reg(5, 0)), -3.0);

        let mut c = Instruction::new(Opcode::F2i);
        c.dst = Reg(7);
        c.srcs[0] = Reg(4).into();
        run_one(c, &mut w);
        assert_eq!(w.reg(7, 0), 11);
    }

    #[test]
    fn mem_fault_propagates() {
        let mut w = Warp::new(0, 0, 0, 8);
        let mut gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&mut gmem, &mut smem);
        let mut ld = Instruction::new(Opcode::Ldg);
        ld.dst = Reg(3);
        ld.srcs = [Operand::Imm(4096), Operand::Imm(0), Operand::RZ];
        // srcA must be a register for LDG in real code, but an immediate
        // base exercises the fault path deterministically.
        assert!(execute(&mut w, &ld, &mut e).is_err());
    }

    #[test]
    fn barrier_requires_convergence() {
        let mut w = Warp::new(0, 0, 0, 8);
        let eff = run_one(Instruction::new(Opcode::BarSync), &mut w);
        assert_eq!(eff, Effect::BarrierArrive);

        let mut w2 = Warp::new(0, 0, 0, 8);
        w2.active = 1; // divergent
        let mut gmem = GlobalMemory::new(64);
        let mut smem = vec![0u8; 64];
        let mut e = env(&mut gmem, &mut smem);
        assert!(execute(&mut w2, &Instruction::new(Opcode::BarSync), &mut e).is_err());
    }

    #[test]
    fn cctl_yields_invalidate_effect() {
        let mut w = Warp::new(0, 0, 0, 8);
        w.set_reg(1, 0, 0x400);
        let mut i = Instruction::new(Opcode::Cctl);
        i.srcs = [Reg(1).into(), Operand::Imm(0x80), Operand::RZ];
        let eff = run_one(i, &mut w);
        assert_eq!(eff, Effect::InvalidateLine(0x480));
    }
}
