//! Device-level fault injection: the chaos engine's lowest layer.
//!
//! A [`FaultHook`] is the device-side analogue of [`crate::BusTap`]: an
//! optional, config-gated injection point consulted once per
//! [`Device::run`](crate::Device::run). When no hook is installed the
//! cost is a single `Option` check — the hot simulation loops never see
//! it. When one is installed it may
//!
//! * flip bits in global memory (DRAM upsets; flips inside a code region
//!   corrupt the icache lines decoded from it on the next fetch, since
//!   lines are installed from memory at miss time),
//! * stall a chosen SM for N cycles (a stuck warp scheduler / thermal
//!   throttle on one partition), and
//! * skew the device clock (the completion counter the verifier's timing
//!   channel ultimately observes).
//!
//! Faults are *scheduled*, not sampled at run time: a [`FaultPlan`] is a
//! sorted `(run_index, fault)` list, optionally generated from a seed via
//! [`FaultPlan::seeded`], so every chaos experiment is reproducible from
//! a single `u64`. Bit flips are XOR — self-inverse — so a transient
//! fault is simply the same flip scheduled twice
//! ([`FaultPlan::transient_flip`]).

use crate::mem::GlobalMemory;

/// One injectable device fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceFault {
    /// XOR bit `bit` (0..8) of the byte at `addr` in global memory.
    /// Self-inverse: scheduling the same flip twice restores the byte.
    FlipBit {
        /// Byte address in device global memory.
        addr: u32,
        /// Bit index within the byte, 0..8.
        bit: u8,
    },
    /// Add `cycles` of stall to every block resident on SM `sm_id`
    /// during this run (reflected in that SM's cycle count and in the
    /// completion cycle of every launch it participated in).
    StallSm {
        /// Target SM.
        sm_id: u32,
        /// Extra cycles.
        cycles: u64,
    },
    /// Skew the device clock: every completion reported by this run is
    /// `cycles` larger than the true figure.
    ClockSkew {
        /// Extra cycles added to every reported completion.
        cycles: u64,
    },
}

/// Timing effects a hook asks the device to apply to one run's report.
/// Memory effects (bit flips) are applied directly by the hook.
#[derive(Clone, Debug, Default)]
pub struct RunEffects {
    /// `(sm_id, extra_cycles)` stalls; multiple entries for one SM add.
    pub sm_stalls: Vec<(u32, u64)>,
    /// Extra cycles added to every reported completion (clock skew).
    pub clock_skew: u64,
}

impl RunEffects {
    /// Total extra stall cycles charged to `sm_id` this run.
    pub fn stall_for(&self, sm_id: u32) -> u64 {
        self.sm_stalls
            .iter()
            .filter(|(s, _)| *s == sm_id)
            .map(|(_, c)| c)
            .sum()
    }

    /// True when the run is unaffected (no stalls, no skew).
    pub fn is_empty(&self) -> bool {
        self.sm_stalls.is_empty() && self.clock_skew == 0
    }
}

/// Counters of faults actually applied so far (for reports/assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Bit flips applied to global memory.
    pub flips: u64,
    /// SM stalls applied.
    pub stalls: u64,
    /// Clock skews applied.
    pub skews: u64,
}

impl FaultCounters {
    /// Total faults applied.
    pub fn total(&self) -> u64 {
        self.flips + self.stalls + self.skews
    }
}

/// Per-run fault injection point. Installed on a
/// [`Device`](crate::Device) via
/// [`install_fault_hook`](crate::Device::install_fault_hook); absent by
/// default and free when absent.
pub trait FaultHook: Send {
    /// Called once per non-empty [`Device::run`](crate::Device::run),
    /// after launch parameter DMA and before any SM executes.
    ///
    /// `run_index` counts the device's non-empty runs (0-based) so
    /// schedules line up with attestation rounds. The hook may mutate
    /// `mem` directly (bit flips) and returns the timing effects the
    /// device should fold into the run's report.
    fn on_run(&mut self, run_index: u64, mem: &GlobalMemory) -> RunEffects;

    /// Counters of faults applied so far (reports/assertions).
    fn applied(&self) -> FaultCounters {
        FaultCounters::default()
    }
}

/// A deterministic fault schedule: a sorted `(run_index, fault)` list.
///
/// Entries fire the first run whose index is `>=` their scheduled run
/// (exactly their run when the device runs every index, which attestation
/// rounds do). Build one by hand with [`at`](FaultPlan::at) /
/// [`transient_flip`](FaultPlan::transient_flip), or generate a whole
/// campaign from a seed with [`seeded`](FaultPlan::seeded).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    entries: Vec<(u64, DeviceFault)>,
    cursor: usize,
    applied: FaultCounters,
}

/// Parameters for [`FaultPlan::seeded`]: how many of each fault class to
/// scatter over a run horizon, and where flips may land.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Schedule horizon: faults land on run indices `0..runs`.
    pub runs: u64,
    /// Byte region `(base, len)` eligible for bit flips.
    pub flip_region: (u32, u32),
    /// Number of *transient* flip pairs (each is flip + unflip 1–3 runs
    /// later).
    pub transient_flips: u32,
    /// Number of persistent flips (never undone by the plan).
    pub persistent_flips: u32,
    /// Number of SM stalls.
    pub stalls: u32,
    /// SM ids are drawn from `0..num_sms`.
    pub num_sms: u32,
    /// Stall lengths are drawn from `1..=max_stall`.
    pub max_stall: u64,
    /// Number of clock skews.
    pub skews: u32,
    /// Skew magnitudes are drawn from `1..=max_skew`.
    pub max_skew: u64,
}

/// SplitMix64 step (same generator the service net layer uses; kept
/// local so `gpu-sim` stays dependency-free).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `fault` for run `run` (builder style).
    pub fn at(mut self, run: u64, fault: DeviceFault) -> FaultPlan {
        self.entries.push((run, fault));
        self.entries.sort_by_key(|(r, _)| *r);
        self
    }

    /// Schedules a *transient* bit flip: flipped at `run`, restored at
    /// `clear_run` (XOR is self-inverse).
    pub fn transient_flip(self, run: u64, clear_run: u64, addr: u32, bit: u8) -> FaultPlan {
        self.at(run, DeviceFault::FlipBit { addr, bit })
            .at(clear_run, DeviceFault::FlipBit { addr, bit })
    }

    /// Generates a reproducible schedule from `seed`: same seed and spec
    /// ⇒ identical plan, bit for bit.
    pub fn seeded(seed: u64, spec: &ChaosSpec) -> FaultPlan {
        let mut s = seed ^ 0xC4A0_5FA1_7ED0_11CE;
        let mut plan = FaultPlan::new();
        let runs = spec.runs.max(1);
        let (base, len) = spec.flip_region;
        let len = len.max(1);
        for _ in 0..spec.transient_flips {
            let run = splitmix(&mut s) % runs;
            let clear = run + 1 + splitmix(&mut s) % 3;
            let addr = base + (splitmix(&mut s) % len as u64) as u32;
            let bit = (splitmix(&mut s) % 8) as u8;
            plan = plan.transient_flip(run, clear, addr, bit);
        }
        for _ in 0..spec.persistent_flips {
            let run = splitmix(&mut s) % runs;
            let addr = base + (splitmix(&mut s) % len as u64) as u32;
            let bit = (splitmix(&mut s) % 8) as u8;
            plan = plan.at(run, DeviceFault::FlipBit { addr, bit });
        }
        for _ in 0..spec.stalls {
            let run = splitmix(&mut s) % runs;
            let sm_id = (splitmix(&mut s) % u64::from(spec.num_sms.max(1))) as u32;
            let cycles = 1 + splitmix(&mut s) % spec.max_stall.max(1);
            plan = plan.at(run, DeviceFault::StallSm { sm_id, cycles });
        }
        for _ in 0..spec.skews {
            let run = splitmix(&mut s) % runs;
            let cycles = 1 + splitmix(&mut s) % spec.max_skew.max(1);
            plan = plan.at(run, DeviceFault::ClockSkew { cycles });
        }
        plan
    }

    /// Shifts every scheduled run by `delta` (builder style), so a
    /// seeded campaign generated over `0..runs` can be parked after a
    /// settle window on a live device.
    pub fn offset(mut self, delta: u64) -> FaultPlan {
        for (r, _) in &mut self.entries {
            *r += delta;
        }
        self
    }

    /// Scheduled entries (sorted by run index).
    pub fn entries(&self) -> &[(u64, DeviceFault)] {
        &self.entries
    }

    /// Number of entries not yet fired.
    pub fn remaining(&self) -> usize {
        self.entries.len() - self.cursor
    }
}

impl FaultHook for FaultPlan {
    fn on_run(&mut self, run_index: u64, mem: &GlobalMemory) -> RunEffects {
        let mut effects = RunEffects::default();
        while self.cursor < self.entries.len() && self.entries[self.cursor].0 <= run_index {
            let (_, fault) = self.entries[self.cursor];
            self.cursor += 1;
            match fault {
                DeviceFault::FlipBit { addr, bit } => {
                    // Word-aligned RMW; a flip outside the memory is a
                    // no-op (the plan was generated for a larger device).
                    let word_addr = addr & !3;
                    if let Ok(word) = mem.read_u32(word_addr) {
                        let shift = (addr & 3) * 8 + u32::from(bit & 7);
                        if mem.write_u32(word_addr, word ^ (1 << shift)).is_ok() {
                            self.applied.flips += 1;
                        }
                    }
                }
                DeviceFault::StallSm { sm_id, cycles } => {
                    effects.sm_stalls.push((sm_id, cycles));
                    self.applied.stalls += 1;
                }
                DeviceFault::ClockSkew { cycles } => {
                    effects.clock_skew += cycles;
                    self.applied.skews += 1;
                }
            }
        }
        effects
    }

    fn applied(&self) -> FaultCounters {
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let spec = ChaosSpec {
            runs: 100,
            flip_region: (4096, 1024),
            transient_flips: 4,
            persistent_flips: 2,
            stalls: 3,
            num_sms: 4,
            max_stall: 500,
            skews: 2,
            max_skew: 300,
        };
        let a = FaultPlan::seeded(42, &spec);
        let b = FaultPlan::seeded(42, &spec);
        let c = FaultPlan::seeded(43, &spec);
        assert_eq!(a.entries(), b.entries());
        assert_ne!(a.entries(), c.entries());
        // 4 transient pairs (8 entries) + 2 + 3 + 2.
        assert_eq!(a.entries().len(), 15);
    }

    #[test]
    fn transient_flip_round_trips_memory() {
        let mem = GlobalMemory::new(64);
        mem.write_u32(8, 0xDEAD_BEEF).unwrap();
        let mut plan = FaultPlan::new().transient_flip(0, 1, 9, 3);
        let eff = plan.on_run(0, &mem);
        assert!(eff.is_empty());
        assert_eq!(mem.read_u32(8).unwrap(), 0xDEAD_BEEF ^ (1 << 11));
        plan.on_run(1, &mem);
        assert_eq!(mem.read_u32(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(plan.applied().flips, 2);
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn late_entries_fire_on_first_subsequent_run() {
        let mem = GlobalMemory::new(64);
        let mut plan = FaultPlan::new().at(3, DeviceFault::ClockSkew { cycles: 7 });
        assert!(plan.on_run(1, &mem).is_empty());
        // Run 3 was skipped; the entry fires at run 5.
        let eff = plan.on_run(5, &mem);
        assert_eq!(eff.clock_skew, 7);
        assert_eq!(plan.applied().skews, 1);
    }

    #[test]
    fn out_of_bounds_flip_is_a_noop() {
        let mem = GlobalMemory::new(16);
        let mut plan = FaultPlan::new().at(0, DeviceFault::FlipBit { addr: 9999, bit: 0 });
        plan.on_run(0, &mem);
        assert_eq!(plan.applied().flips, 0);
    }

    #[test]
    fn stall_accumulates_per_sm() {
        let eff = RunEffects {
            sm_stalls: vec![(0, 10), (1, 5), (0, 7)],
            clock_skew: 0,
        };
        assert_eq!(eff.stall_for(0), 17);
        assert_eq!(eff.stall_for(1), 5);
        assert_eq!(eff.stall_for(2), 0);
    }
}
