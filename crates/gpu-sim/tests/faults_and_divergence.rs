//! Failure injection and control-flow edge cases run through the full
//! device stack (not just the unit-level modules): faults must surface
//! as typed errors, and divergent warps must reconverge correctly.

use sage_gpu_sim::{Device, DeviceConfig, LaunchParams, SimError};
use sage_isa::{CmpOp, CtrlInfo, Operand, Pred, PredReg, Program, ProgramBuilder, Reg, SpecialReg};

fn device() -> Device {
    Device::new(DeviceConfig::sim_tiny())
}

fn load(dev: &mut Device, prog: &Program) -> u32 {
    let mut p = prog.clone();
    let base = dev.alloc(p.byte_len() as u32).unwrap();
    p.relocate(base);
    dev.memcpy_h2d(base, &p.encode()).unwrap();
    base
}

fn launch(dev: &mut Device, entry: u32, params: Vec<u32>) -> sage_gpu_sim::Result<()> {
    let ctx = dev.create_context();
    dev.run_single(LaunchParams {
        ctx,
        entry_pc: entry,
        grid_dim: 1,
        block_dim: 32,
        regs_per_thread: 16,
        smem_bytes: 256,
        params,
    })
    .map(|_| ())
}

#[test]
fn out_of_bounds_load_faults() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.mov(Reg(1), Operand::Imm(0x7FFF_FFF0));
    b.ctrl(CtrlInfo::stall(4));
    b.ldg(Reg(2), Reg(1), 0);
    b.exit();
    let entry = load(&mut dev, &b.build().unwrap());
    let err = launch(&mut dev, entry, vec![]).unwrap_err();
    assert!(matches!(err, SimError::MemFault { .. }), "{err}");
}

#[test]
fn misaligned_store_faults() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(1), Operand::Imm(4097)); // odd address
    b.ctrl(CtrlInfo::stall(4));
    b.stg(Reg(1), 0, Reg(2));
    b.exit();
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::MemFault { .. })
    ));
}

#[test]
fn executing_data_decode_faults() {
    let mut dev = device();
    let buf = dev.alloc(256).unwrap();
    dev.memcpy_h2d(buf, &[0xFFu8; 256]).unwrap(); // invalid opcodes
    let err = launch(&mut dev, buf, vec![]).unwrap_err();
    assert!(matches!(err, SimError::DecodeFault { .. }), "{err}");
}

#[test]
fn runaway_kernel_hits_cycle_limit() {
    let mut dev = device();
    dev.set_cycle_limit(50_000);
    let mut b = ProgramBuilder::new();
    b.label("forever");
    b.nop();
    b.bra("forever");
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::CycleLimit { limit: 50_000 })
    ));
}

#[test]
fn ret_without_call_is_illegal() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ret();
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::IllegalInstruction { .. })
    ));
}

#[test]
fn divergent_if_else_reconverges_through_bssy() {
    // if (lane < 16) out[lane] = 1; else out[lane] = 2; then everyone
    // adds 10 — validates full reconvergence at the BSYNC.
    let mut dev = device();
    let out = dev.alloc(128).unwrap();

    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(1), Reg(0), 0); // out base
    b.ctrl(CtrlInfo::stall(4));
    b.s2r(Reg(2), SpecialReg::LaneId);
    let mut c = CtrlInfo::stall(4);
    c.wait_mask = 1;
    b.ctrl(c);
    b.isetp(PredReg(0), CmpOp::Lt, Reg(2), Operand::Imm(16));
    b.bssy("join");
    b.pred(Pred::on(PredReg(0)));
    b.bra("low_half");
    // else branch: value = 2
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(2));
    b.bra("join");
    b.label("low_half");
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(1));
    b.label("join");
    b.bsync();
    // Reconverged: everyone executes this.
    b.ctrl(CtrlInfo::stall(4));
    b.iadd3(Reg(3), Reg(3), Operand::Imm(10), Reg::RZ);
    b.ctrl(CtrlInfo::stall(4));
    b.lea(Reg(4), Reg(2), Reg(1).into(), 2);
    b.ctrl(CtrlInfo::stall(4));
    b.stg(Reg(4), 0, Reg(3));
    b.exit();

    let entry = load(&mut dev, &b.build().unwrap());
    launch(&mut dev, entry, vec![out]).unwrap();
    let raw = dev.memcpy_d2h(out, 128).unwrap();
    for lane in 0..32usize {
        let v = u32::from_le_bytes(raw[lane * 4..lane * 4 + 4].try_into().unwrap());
        let expect = if lane < 16 { 11 } else { 12 };
        assert_eq!(v, expect, "lane {lane}");
    }
}

#[test]
fn divergent_branch_without_bssy_is_rejected() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.s2r(Reg(2), SpecialReg::LaneId);
    b.ctrl(CtrlInfo::stall(4));
    b.isetp(PredReg(0), CmpOp::Lt, Reg(2), Operand::Imm(7));
    b.pred(Pred::on(PredReg(0)));
    b.bra("skip");
    b.nop();
    b.label("skip");
    b.exit();
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::IllegalInstruction { .. })
    ));
}

#[test]
fn nonuniform_jmx_is_rejected() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.s2r(Reg(1), SpecialReg::LaneId); // per-lane target: invalid
    b.ctrl(CtrlInfo::stall(4));
    b.jmx(Reg(1));
    b.exit();
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::IllegalInstruction { .. })
    ));
}

#[test]
fn nested_divergence_two_levels() {
    // Nested if: lane<16 { lane<8 ? 100 : 200 } else { 300 }.
    let mut dev = device();
    let out = dev.alloc(128).unwrap();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(1), Reg(0), 0);
    b.ctrl(CtrlInfo::stall(4));
    b.s2r(Reg(2), SpecialReg::LaneId);
    let mut c = CtrlInfo::stall(4);
    c.wait_mask = 1;
    b.ctrl(c);
    b.isetp(PredReg(0), CmpOp::Lt, Reg(2), Operand::Imm(16));
    b.ctrl(CtrlInfo::stall(4));
    b.isetp(PredReg(1), CmpOp::Lt, Reg(2), Operand::Imm(8));

    b.bssy("outer_join");
    b.pred(Pred::on(PredReg(0)));
    b.bra("low16");
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(300));
    b.bra("outer_join");
    b.label("low16");
    b.bssy("inner_join");
    b.pred(Pred::on(PredReg(1)));
    b.bra("low8");
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(200));
    b.bra("inner_join");
    b.label("low8");
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(3), Operand::Imm(100));
    b.label("inner_join");
    b.bsync();
    b.label("outer_join");
    b.bsync();

    b.ctrl(CtrlInfo::stall(4));
    b.lea(Reg(4), Reg(2), Reg(1).into(), 2);
    b.ctrl(CtrlInfo::stall(4));
    b.stg(Reg(4), 0, Reg(3));
    b.exit();

    let entry = load(&mut dev, &b.build().unwrap());
    launch(&mut dev, entry, vec![out]).unwrap();
    let raw = dev.memcpy_d2h(out, 128).unwrap();
    for lane in 0..32usize {
        let v = u32::from_le_bytes(raw[lane * 4..lane * 4 + 4].try_into().unwrap());
        let expect = if lane < 8 {
            100
        } else if lane < 16 {
            200
        } else {
            300
        };
        assert_eq!(v, expect, "lane {lane}");
    }
}

#[test]
fn oom_alloc_reported() {
    let mut dev = device();
    assert!(matches!(
        dev.alloc(u32::MAX),
        Err(SimError::OutOfMemory { .. })
    ));
}

#[test]
fn smem_out_of_bounds_faults() {
    let mut dev = device();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(4));
    b.mov(Reg(1), Operand::Imm(4096)); // beyond the 256 B smem
    b.ctrl(CtrlInfo::stall(4));
    b.sts(Reg(1), 0, Reg(2));
    b.exit();
    let entry = load(&mut dev, &b.build().unwrap());
    assert!(matches!(
        launch(&mut dev, entry, vec![]),
        Err(SimError::MemFault {
            kind: "shared store",
            ..
        })
    ));
}
