//! Device-level chaos engine: faults injected by a [`FaultPlan`] must be
//! (a) invisible when no hook is installed, (b) architecturally visible
//! when scheduled (memory flips change data, stalls/skews move the
//! clock), and (c) reproducible from the seed.

use sage_gpu_sim::{
    ChaosSpec, Device, DeviceConfig, DeviceFault, FaultPlan, LaunchParams, RunReport,
};
use sage_isa::{CtrlInfo, ProgramBuilder, Reg, SpecialReg};

/// Kernel: out[tid] = in[tid] (one block). params = [in_base, out_base].
fn copy_kernel(dev: &mut Device) -> (u32, u32, u32) {
    let inp = dev.alloc(256).unwrap();
    let out = dev.alloc(256).unwrap();
    let mut b = ProgramBuilder::new();
    b.ctrl(CtrlInfo::stall(1).with_write_bar(0));
    b.ldg(Reg(1), Reg(0), 0); // in base
    b.ctrl(CtrlInfo::stall(1).with_write_bar(1));
    b.ldg(Reg(2), Reg(0), 4); // out base
    b.s2r(Reg(3), SpecialReg::TidX);
    b.ctrl(CtrlInfo::stall(1).with_wait(0));
    b.lea(Reg(4), Reg(3), Reg(1).into(), 2); // in + 4*tid
    b.ctrl(CtrlInfo::stall(1).with_write_bar(2));
    b.ldg(Reg(5), Reg(4), 0);
    b.ctrl(CtrlInfo::stall(1).with_wait(1));
    b.lea(Reg(6), Reg(3), Reg(2).into(), 2); // out + 4*tid
    b.ctrl(CtrlInfo::stall(1).with_wait(2));
    b.stg(Reg(6), 0, Reg(5));
    b.exit();
    let prog = b.build().unwrap();
    let code = dev.alloc(prog.byte_len() as u32).unwrap();
    dev.memcpy_h2d(code, &prog.encode()).unwrap();
    // Deterministic input pattern.
    let bytes: Vec<u8> = (0..64u32)
        .flat_map(|i| (i.wrapping_mul(0x01010101) ^ 0xA5).to_le_bytes())
        .collect();
    dev.memcpy_h2d(inp, &bytes).unwrap();
    (code, inp, out)
}

fn launch(code: u32, inp: u32, out: u32) -> LaunchParams {
    LaunchParams {
        ctx: sage_gpu_sim::ContextId(0),
        entry_pc: code,
        grid_dim: 4,
        block_dim: 32,
        regs_per_thread: 8,
        smem_bytes: 0,
        params: vec![inp, out],
    }
}

fn run_copy(hook: Option<FaultPlan>) -> (Device, RunReport, u32) {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    dev.create_context();
    let (code, inp, out) = copy_kernel(&mut dev);
    if let Some(plan) = hook {
        dev.install_fault_hook(Box::new(plan));
    }
    dev.launch(launch(code, inp, out)).unwrap();
    let report = dev.run().unwrap();
    (dev, report, out)
}

#[test]
fn no_hook_matches_empty_plan_bit_for_bit() {
    let (dev_a, rep_a, out_a) = run_copy(None);
    let (dev_b, rep_b, out_b) = run_copy(Some(FaultPlan::new()));
    assert_eq!(rep_a.total_cycles, rep_b.total_cycles);
    assert_eq!(
        dev_a.peek(out_a, 256).unwrap(),
        dev_b.peek(out_b, 256).unwrap()
    );
    assert_eq!(dev_b.faults_applied().total(), 0);
}

#[test]
fn data_flip_lands_in_the_copied_output() {
    let (dev_clean, _, out_clean) = run_copy(None);
    // Flip bit 5 of byte 3 of word 7 in the input region (in base is the
    // first alloc: 4096).
    let addr = 4096 + 7 * 4 + 3;
    let plan = FaultPlan::new().at(0, DeviceFault::FlipBit { addr, bit: 5 });
    let (dev, _, out) = run_copy(Some(plan));
    assert_eq!(dev.faults_applied().flips, 1);
    let clean = dev_clean.peek(out_clean, 256).unwrap();
    let faulty = dev.peek(out, 256).unwrap();
    for (i, (c, f)) in clean.iter().zip(faulty.iter()).enumerate() {
        if i == 7 * 4 + 3 {
            assert_eq!(*f, c ^ (1 << 5), "flipped bit must propagate");
        } else {
            assert_eq!(f, c, "byte {i} must be untouched");
        }
    }
}

#[test]
fn sm_stall_and_clock_skew_move_the_clock_exactly() {
    let (_, rep_clean, _) = run_copy(None);
    // Stall an SM that received blocks (4 blocks round-robin from SM 0).
    let plan = FaultPlan::new().at(
        0,
        DeviceFault::StallSm {
            sm_id: 0,
            cycles: 1000,
        },
    );
    let (dev, rep_stall, _) = run_copy(Some(plan));
    assert_eq!(dev.faults_applied().stalls, 1);
    assert!(
        rep_stall.total_cycles >= rep_clean.total_cycles + 1000 - 1,
        "stall must extend the critical path: {} vs {}",
        rep_stall.total_cycles,
        rep_clean.total_cycles
    );
    let skew = FaultPlan::new().at(0, DeviceFault::ClockSkew { cycles: 777 });
    let (_, rep_skew, _) = run_copy(Some(skew));
    assert_eq!(rep_skew.total_cycles, rep_clean.total_cycles + 777);
    assert_eq!(
        rep_skew.launches[0].completion_cycle,
        rep_clean.launches[0].completion_cycle + 777
    );
}

#[test]
fn faults_only_fire_on_their_scheduled_run() {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    dev.create_context();
    let (code, inp, out) = copy_kernel(&mut dev);
    dev.install_fault_hook(Box::new(
        FaultPlan::new().at(1, DeviceFault::ClockSkew { cycles: 500 }),
    ));
    dev.launch(launch(code, inp, out)).unwrap();
    let first = dev.run().unwrap();
    dev.launch(launch(code, inp, out)).unwrap();
    let second = dev.run().unwrap();
    assert_eq!(dev.fault_run_index(), 2);
    assert_eq!(second.total_cycles, first.total_cycles + 500);
}

#[test]
fn seeded_campaign_is_reproducible_end_to_end() {
    let spec = ChaosSpec {
        runs: 4,
        flip_region: (4096, 256), // the input buffer
        transient_flips: 2,
        persistent_flips: 1,
        stalls: 2,
        num_sms: 2,
        max_stall: 400,
        skews: 1,
        max_skew: 200,
    };
    let run_campaign = |seed: u64| {
        let mut dev = Device::new(DeviceConfig::sim_tiny());
        dev.create_context();
        let (code, inp, out) = copy_kernel(&mut dev);
        dev.install_fault_hook(Box::new(FaultPlan::seeded(seed, &spec)));
        let mut history = Vec::new();
        for _ in 0..4 {
            dev.launch(launch(code, inp, out)).unwrap();
            let rep = dev.run().unwrap();
            history.push((rep.total_cycles, dev.peek(out, 256).unwrap()));
        }
        (history, dev.faults_applied())
    };
    let (h1, c1) = run_campaign(1234);
    let (h2, c2) = run_campaign(1234);
    assert_eq!(h1, h2, "same seed must replay the same history");
    assert_eq!(c1, c2);
    assert!(c1.total() > 0, "campaign must actually inject something");
}
