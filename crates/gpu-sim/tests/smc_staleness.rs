//! Regression test for self-modifying-code staleness under the
//! pre-decoded instruction cache (paper §6.4/§7.5).
//!
//! The instruction caches store *decoded* instructions per line and are
//! not coherent with stores: a kernel that patches the immediate of one
//! of its own instructions must keep executing the stale value while the
//! line is resident, and must observe the patched value once the line has
//! been evicted by capacity. Both directions are pinned here end to end —
//! a device-visible guarantee the SAGE checksum's SMC step depends on —
//! in both execution modes, so neither the decoded-line optimisation nor
//! fast-forwarding can silently break eviction semantics.

use sage_gpu_sim::{Device, DeviceConfig, ExecMode, LaunchParams};
use sage_isa::{encode::IMM_BYTE_OFFSET, CmpOp, Operand, Pred, PredReg, ProgramBuilder, Reg};

const STALE: u32 = 0x11;
const PATCHED: u32 = 0x99;

/// Builds a kernel that executes `MOV R4, STALE`, patches that
/// instruction's immediate to `PATCHED` in device memory, optionally
/// thrashes the instruction caches with an 8 KiB filler call (2× the
/// tiny device's L2i), then re-executes the patched instruction and
/// stores the observed R4 to the output cell.
fn smc_kernel(evict_via_filler: bool) -> sage_isa::Program {
    let mut b = ProgramBuilder::new();
    // ABI: R0 = param base; params = [out, patch_addr, patch_value].
    b.ldg(Reg(1), Reg(0), 0);
    b.ldg(Reg(2), Reg(0), 4);
    b.ldg(Reg(3), Reg(0), 8);
    b.mov(Reg(10), Operand::Imm(0));
    b.label("loop");
    b.label("smc");
    b.mov(Reg(4), Operand::Imm(STALE));
    b.stg(Reg(2), 0, Reg(3)); // patch the immediate bytes in memory
    if evict_via_filler {
        b.cal("filler");
    }
    b.isetp(PredReg(0), CmpOp::Ne, Reg(10), Operand::Imm(1));
    b.iadd(Reg(10), Reg(10), Operand::Imm(1));
    b.pred(Pred::on(PredReg(0)));
    b.bra("loop");
    b.stg(Reg(1), 0, Reg(4));
    b.exit();
    if evict_via_filler {
        b.label("filler");
        for _ in 0..512 {
            b.nop();
        }
        b.ret();
    }
    b.build().expect("labels resolve")
}

/// Runs the kernel and returns the value the second pass observed.
fn observed_immediate(evict_via_filler: bool, mode: ExecMode) -> u32 {
    let mut dev = Device::new(DeviceConfig::sim_tiny());
    dev.set_exec_mode(mode);
    let ctx = dev.create_context();
    let mut prog = smc_kernel(evict_via_filler);
    let code = dev.alloc(prog.byte_len() as u32).unwrap();
    let smc_pc = code + prog.label_addr("smc").unwrap();
    prog.relocate(code);
    dev.memcpy_h2d(code, &prog.encode()).unwrap();
    let out = dev.alloc(4).unwrap();
    let (report, _) = dev
        .run_single(LaunchParams {
            ctx,
            entry_pc: code,
            grid_dim: 1,
            block_dim: 32,
            regs_per_thread: 16,
            smem_bytes: 0,
            params: vec![out, smc_pc + IMM_BYTE_OFFSET as u32, PATCHED],
        })
        .unwrap();
    assert!(report.completion_cycle > 0);
    // The store really did land in memory in both variants.
    let mem = dev.peek(smc_pc + IMM_BYTE_OFFSET as u32, 4).unwrap();
    assert_eq!(u32::from_le_bytes(mem.try_into().unwrap()), PATCHED);
    let raw = dev.peek(out, 4).unwrap();
    u32::from_le_bytes(raw.try_into().unwrap())
}

#[test]
fn patched_immediate_is_stale_while_line_is_resident() {
    for mode in [ExecMode::Parallel, ExecMode::Sequential] {
        assert_eq!(
            observed_immediate(false, mode),
            STALE,
            "resident line must serve the pre-decoded (stale) instruction ({mode:?})"
        );
    }
}

#[test]
fn patched_immediate_is_observed_after_capacity_eviction() {
    for mode in [ExecMode::Parallel, ExecMode::Sequential] {
        assert_eq!(
            observed_immediate(true, mode),
            PATCHED,
            "capacity eviction must expose the patched bytes ({mode:?})"
        );
    }
}
