//! The race-condition entropy source.
//!
//! Worker threads spin on a small array of shared atomic cells, each
//! applying a different mixing function as fast as it can; the sampler
//! thread concurrently reads the cells and folds in a nanosecond
//! timestamp. The *values* observed depend on the physical interleaving
//! of cache-coherence traffic between cores — the same uncertainty the
//! paper's GPU TRNG exploits with simultaneous memory accesses (§6.6,
//! following Teh et al.). Raw samples are then conditioned with SHA-256
//! before use.

use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Arc,
};
use std::time::Instant;

/// Configuration of the race harvester.
#[derive(Clone, Copy, Debug)]
pub struct RaceTrngConfig {
    /// Number of racing worker threads.
    pub workers: usize,
    /// Number of shared cells being hammered.
    pub cells: usize,
    /// Raw samples harvested per conditioned output block; higher values
    /// trade throughput for entropy margin.
    pub samples_per_block: usize,
}

impl Default for RaceTrngConfig {
    fn default() -> RaceTrngConfig {
        RaceTrngConfig {
            workers: 4,
            cells: 8,
            samples_per_block: 256,
        }
    }
}

/// A running race-condition TRNG.
///
/// # Examples
///
/// ```
/// use sage_trng::RaceTrng;
///
/// let mut trng = RaceTrng::start(Default::default());
/// let key = trng.bytes(32);
/// assert_eq!(key.len(), 32);
/// trng.stop();
/// ```
pub struct RaceTrng {
    cells: Arc<Vec<AtomicU64>>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
    cfg: RaceTrngConfig,
    epoch: Instant,
    counter: u64,
}

impl RaceTrng {
    /// Spawns the racing workers and returns a generator.
    pub fn start(cfg: RaceTrngConfig) -> RaceTrng {
        let cells: Arc<Vec<AtomicU64>> = Arc::new(
            (0..cfg.cells.max(1))
                .map(|i| AtomicU64::new(i as u64))
                .collect(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let cells = Arc::clone(&cells);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 0x9E37_79B9u64.wrapping_mul(w as u64 + 1);
                    while !stop.load(Ordering::Relaxed) {
                        // Each worker hammers every cell with a different
                        // non-commutative update; interleaving with other
                        // workers decides the observed values.
                        for (i, cell) in cells.iter().enumerate() {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(w as u64);
                            let prev = cell.fetch_xor(x.rotate_left(i as u32), Ordering::Relaxed);
                            cell.fetch_add(prev ^ x, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        RaceTrng {
            cells,
            stop,
            workers,
            cfg,
            epoch: Instant::now(),
            counter: 0,
        }
    }

    /// Harvests one raw 64-bit sample (unconditioned).
    pub fn raw_sample(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        let t = self.epoch.elapsed().as_nanos() as u64;
        let mut acc = t ^ self.counter.rotate_left(32);
        for cell in self.cells.iter() {
            acc = acc
                .rotate_left(13)
                .wrapping_add(cell.load(Ordering::Relaxed));
        }
        // Briefly yield so workers interleave even on few cores.
        if self.counter.is_multiple_of(64) {
            std::thread::yield_now();
        }
        acc
    }

    /// Produces one conditioned 32-byte block: SHA-256 over
    /// `samples_per_block` raw samples.
    pub fn block(&mut self) -> [u8; 32] {
        let mut h = sage_crypto::Sha256::new();
        for _ in 0..self.cfg.samples_per_block.max(1) {
            h.update(&self.raw_sample().to_le_bytes());
        }
        h.finalize()
    }

    /// Produces `n` conditioned output bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.extend_from_slice(&self.block());
        }
        out.truncate(n);
        out
    }

    /// Stops the workers (also done on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RaceTrng {
    fn drop(&mut self) {
        self.stop();
    }
}

impl sage_crypto::EntropySource for RaceTrng {
    fn fill(&mut self, buf: &mut [u8]) {
        let bytes = self.bytes(buf.len());
        buf.copy_from_slice(&bytes);
    }
}

/// Von Neumann extractor: debiases a bit stream by mapping `01 → 0`,
/// `10 → 1` and discarding `00`/`11` pairs. Kept for study alongside the
/// SHA-256 conditioner.
pub fn von_neumann(bits: impl Iterator<Item = bool>) -> Vec<bool> {
    let mut out = Vec::new();
    let mut prev: Option<bool> = None;
    for b in bits {
        match prev.take() {
            None => prev = Some(b),
            Some(p) => {
                if p != b {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// Expands a byte slice into its bits, most significant first.
pub fn bytes_to_bits(bytes: &[u8]) -> impl Iterator<Item = bool> + '_ {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        let mut t = RaceTrng::start(RaceTrngConfig {
            workers: 2,
            cells: 4,
            samples_per_block: 32,
        });
        assert_eq!(t.bytes(1).len(), 1);
        assert_eq!(t.bytes(32).len(), 32);
        assert_eq!(t.bytes(100).len(), 100);
        t.stop();
    }

    #[test]
    fn successive_outputs_differ() {
        let mut t = RaceTrng::start(Default::default());
        let a = t.block();
        let b = t.block();
        assert_ne!(a, b);
    }

    #[test]
    fn two_generators_disagree() {
        let mut t1 = RaceTrng::start(Default::default());
        let mut t2 = RaceTrng::start(Default::default());
        assert_ne!(t1.bytes(32), t2.bytes(32));
    }

    #[test]
    fn conditioned_output_has_high_entropy() {
        let mut t = RaceTrng::start(Default::default());
        let data = t.bytes(16 * 1024);
        let report = crate::stats::EntReport::analyze(&data);
        // SHA-conditioned output must be statistically indistinguishable
        // from uniform at this sample size.
        assert!(report.entropy_bits_per_byte > 7.9, "{report:?}");
    }

    #[test]
    fn von_neumann_debiasing() {
        // Perfectly alternating input: pairs (1,0) -> 1.
        let bits = [true, false, true, false, true, false];
        assert_eq!(von_neumann(bits.into_iter()), vec![true, true, true]);
        // Constant input yields nothing.
        let bits = [true; 10];
        assert!(von_neumann(bits.into_iter()).is_empty());
    }

    #[test]
    fn bits_round_trip() {
        let bits: Vec<bool> = bytes_to_bits(&[0b1010_0001]).collect();
        assert_eq!(
            bits,
            vec![true, false, true, false, false, false, false, true]
        );
    }

    #[test]
    fn entropy_source_trait() {
        use sage_crypto::EntropySource;
        let mut t = RaceTrng::start(Default::default());
        let mut buf = [0u8; 48];
        t.fill(&mut buf);
        assert_ne!(buf, [0u8; 48]);
    }
}
