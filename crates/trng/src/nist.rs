//! A subset of the NIST SP 800-22 statistical test suite, used (with
//! DIEHARD and ENT) to evaluate the TRNG in the paper (§6.6).
//!
//! Implemented tests: frequency (monobit), block frequency, runs,
//! longest-run-of-ones, cumulative sums, serial, and approximate entropy.
//! Each returns a p-value; a sequence passes a test at significance
//! `ALPHA = 0.01` if `p ≥ 0.01` (SP 800-22 §1.1.5).

/// Significance level used by [`TestOutcome::passed`].
pub const ALPHA: f64 = 0.01;

/// The result of one statistical test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TestOutcome {
    /// Test p-value in `[0, 1]`.
    pub p_value: f64,
}

impl TestOutcome {
    /// Whether the sequence passes at the standard 1% significance.
    pub fn passed(&self) -> bool {
        self.p_value >= ALPHA
    }
}

/// Complementary error function, Abramowitz & Stegun 7.1.26-style
/// rational approximation (max error ≈ 1.2e-7, ample for pass/fail at
/// α = 0.01).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = Γ(a,x)/Γ(a)`
/// (series + continued fraction, Numerical Recipes style).
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

fn ln_gamma(x: f64) -> f64 {
    // Lanczos approximation.
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1e300;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn to_bits(data: &[u8]) -> Vec<bool> {
    crate::race::bytes_to_bits(data).collect()
}

/// 2.1 Frequency (monobit) test.
pub fn frequency(data: &[u8]) -> TestOutcome {
    let bits = to_bits(data);
    let n = bits.len() as f64;
    let s: i64 = bits.iter().map(|&b| if b { 1i64 } else { -1 }).sum();
    let s_obs = (s as f64).abs() / n.sqrt();
    TestOutcome {
        p_value: erfc(s_obs / std::f64::consts::SQRT_2),
    }
}

/// 2.2 Frequency test within blocks of `m` bits.
pub fn block_frequency(data: &[u8], m: usize) -> TestOutcome {
    let bits = to_bits(data);
    let n_blocks = bits.len() / m;
    if n_blocks == 0 {
        return TestOutcome { p_value: 0.0 };
    }
    let mut chi = 0.0;
    for blk in 0..n_blocks {
        let ones = bits[blk * m..(blk + 1) * m].iter().filter(|&&b| b).count();
        let pi = ones as f64 / m as f64;
        chi += (pi - 0.5) * (pi - 0.5);
    }
    chi *= 4.0 * m as f64;
    TestOutcome {
        p_value: igamc(n_blocks as f64 / 2.0, chi / 2.0),
    }
}

/// 2.3 Runs test.
pub fn runs(data: &[u8]) -> TestOutcome {
    let bits = to_bits(data);
    let n = bits.len() as f64;
    let pi = bits.iter().filter(|&&b| b).count() as f64 / n;
    // Prerequisite frequency check (SP 800-22 step 2).
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return TestOutcome { p_value: 0.0 };
    }
    let v: u64 = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count() as u64;
    let num = (v as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    TestOutcome {
        p_value: erfc(num / den),
    }
}

/// 2.4 Longest run of ones in 128-bit blocks (the `n ≥ 6272`, `M = 128`
/// parameterization).
pub fn longest_run(data: &[u8]) -> TestOutcome {
    let bits = to_bits(data);
    const M: usize = 128;
    // Class probabilities for M = 128, K = 5 (SP 800-22 §2.4.4).
    const PI: [f64; 6] = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124];
    let n_blocks = bits.len() / M;
    if n_blocks < 49 {
        return TestOutcome { p_value: 0.0 };
    }
    let mut v = [0u64; 6];
    for blk in 0..n_blocks {
        let mut longest = 0usize;
        let mut run = 0usize;
        for &b in &bits[blk * M..(blk + 1) * M] {
            if b {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let class = match longest {
            0..=4 => 0,
            5 => 1,
            6 => 2,
            7 => 3,
            8 => 4,
            _ => 5,
        };
        v[class] += 1;
    }
    let n = n_blocks as f64;
    let chi: f64 = v
        .iter()
        .zip(PI)
        .map(|(&obs, pi)| {
            let d = obs as f64 - n * pi;
            d * d / (n * pi)
        })
        .sum();
    TestOutcome {
        p_value: igamc(2.5, chi / 2.0),
    }
}

/// 2.13 Cumulative sums test (forward mode).
pub fn cumulative_sums(data: &[u8]) -> TestOutcome {
    let bits = to_bits(data);
    let n = bits.len() as f64;
    let mut s = 0i64;
    let mut z = 0i64;
    for &b in &bits {
        s += if b { 1 } else { -1 };
        z = z.max(s.abs());
    }
    let z = z as f64;
    if z == 0.0 {
        return TestOutcome { p_value: 0.0 };
    }
    let mut p = 1.0;
    let sqrt_n = n.sqrt();
    let phi = |x: f64| 0.5 * erfc(-x / std::f64::consts::SQRT_2);
    let k_lo = ((-n / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    let mut sum1 = 0.0;
    for k in k_lo..=k_hi {
        sum1 += phi(((4 * k + 1) as f64 * z) / sqrt_n) - phi(((4 * k - 1) as f64 * z) / sqrt_n);
    }
    let k_lo2 = ((-n / z - 3.0) / 4.0).floor() as i64;
    let k_hi2 = ((n / z - 1.0) / 4.0).floor() as i64;
    let mut sum2 = 0.0;
    for k in k_lo2..=k_hi2 {
        sum2 += phi(((4 * k + 3) as f64 * z) / sqrt_n) - phi(((4 * k + 1) as f64 * z) / sqrt_n);
    }
    p -= sum1;
    p += sum2;
    TestOutcome {
        p_value: p.clamp(0.0, 1.0),
    }
}

fn psi_sq(bits: &[bool], m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    for i in 0..n {
        let mut idx = 0usize;
        for j in 0..m {
            idx = (idx << 1) | bits[(i + j) % n] as usize;
        }
        counts[idx] += 1;
    }
    let nf = n as f64;
    let sum: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1u64 << m) as f64 / nf * sum - nf
}

/// 2.11 Serial test (returns the first of the two p-values).
pub fn serial(data: &[u8], m: usize) -> TestOutcome {
    let bits = to_bits(data);
    let d1 = psi_sq(&bits, m) - psi_sq(&bits, m.saturating_sub(1));
    let d2 = psi_sq(&bits, m) - 2.0 * psi_sq(&bits, m.saturating_sub(1))
        + psi_sq(&bits, m.saturating_sub(2));
    let p1 = igamc(((1usize << (m - 1)) / 2) as f64, d1 / 2.0);
    let _p2 = igamc(((1usize << (m - 2)).max(1) / 2).max(1) as f64, d2 / 2.0);
    TestOutcome { p_value: p1 }
}

/// 2.12 Approximate entropy test.
pub fn approximate_entropy(data: &[u8], m: usize) -> TestOutcome {
    let bits = to_bits(data);
    let n = bits.len() as f64;
    let phi = |mm: usize| -> f64 {
        if mm == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; 1 << mm];
        for i in 0..bits.len() {
            let mut idx = 0usize;
            for j in 0..mm {
                idx = (idx << 1) | bits[(i + j) % bits.len()] as usize;
            }
            counts[idx] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi = 2.0 * n * (std::f64::consts::LN_2 - ap_en);
    TestOutcome {
        p_value: igamc((1u64 << (m - 1)) as f64, chi / 2.0),
    }
}

/// 2.6 Discrete Fourier transform (spectral) test.
///
/// Detects periodic features: computes the DFT of the ±1 sequence and
/// checks that no more than ~5% of the first n/2 magnitudes exceed the
/// 95% threshold `sqrt(ln(1/0.05)·n)`. A straightforward O(n log n)
/// radix-2 FFT over a power-of-two prefix.
pub fn spectral(data: &[u8]) -> TestOutcome {
    let bits = to_bits(data);
    let n = bits.len().next_power_of_two() / 2 * 2;
    let n = n.min(bits.len()).next_power_of_two() / 2; // largest power of two ≤ len
    let n = if n * 2 <= bits.len() { n * 2 } else { n };
    if n < 1024 {
        return TestOutcome { p_value: 0.0 };
    }
    // Radix-2 FFT on ±1 input.
    let mut re: Vec<f64> = bits[..n]
        .iter()
        .map(|&b| if b { 1.0 } else { -1.0 })
        .collect();
    let mut im = vec![0.0f64; n];
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
            i += len;
        }
        len <<= 1;
    }
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let below = (0..half)
        .filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold)
        .count() as f64;
    let expected = 0.95 * half as f64;
    let d = (below - expected) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    TestOutcome {
        p_value: erfc(d.abs() / std::f64::consts::SQRT_2),
    }
}

/// Runs the whole battery with standard parameters and returns
/// `(name, outcome)` pairs.
pub fn run_battery(data: &[u8]) -> Vec<(&'static str, TestOutcome)> {
    vec![
        ("frequency", frequency(data)),
        ("block-frequency(128)", block_frequency(data, 128)),
        ("runs", runs(data)),
        ("longest-run", longest_run(data)),
        ("cumulative-sums", cumulative_sums(data)),
        ("spectral", spectral(data)),
        ("serial(16)", serial(data, 16)),
        ("approx-entropy(10)", approximate_entropy(data, 10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prng_stream(len: usize, mut seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            v.extend_from_slice(&z.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn igamc_reference_values() {
        // Q(1, x) = e^-x.
        for x in [0.1, 1.0, 3.0] {
            assert!((igamc(1.0, x) - (-x).exp()).abs() < 1e-9, "x={x}");
        }
        // Q(0.5, x) = erfc(sqrt(x)).
        for x in [0.25, 1.0, 4.0] {
            assert!((igamc(0.5, x) - erfc(x.sqrt())).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn sp800_22_frequency_example() {
        // SP 800-22 §2.1.8 example: ε = 1100100100001111110110101010001000
        //1000010110100011000010001101001100010011000110011000101000101110
        // 00000011011100010011010 (first 100 binary digits of π), P ≈ 0.109599.
        let eps = "11001001000011111101101010100010001000010110100011\
                   00001000110100110001001100011001100010100010111000";
        let bits: Vec<bool> = eps.chars().map(|c| c == '1').collect();
        // Pack into bytes (length 100 bits → pad to 104, run manually).
        let n = bits.len() as f64;
        let s: i64 = bits.iter().map(|&b| if b { 1i64 } else { -1 }).sum();
        let p = erfc(((s as f64).abs() / n.sqrt()) / std::f64::consts::SQRT_2);
        assert!((p - 0.109599).abs() < 1e-4, "p={p}");
    }

    #[test]
    fn good_stream_passes_battery() {
        let data = prng_stream(32 * 1024, 1234);
        for (name, outcome) in run_battery(&data) {
            assert!(outcome.passed(), "{name} failed: p={}", outcome.p_value);
        }
    }

    #[test]
    fn spectral_detects_periodicity() {
        // A strong 32-bit period that monobit/runs would partially miss.
        let pattern = [0x35u8, 0xC9, 0x35, 0xC9];
        let data: Vec<u8> = pattern.iter().copied().cycle().take(16 * 1024).collect();
        assert!(!spectral(&data).passed());
        // Random data passes.
        let good = prng_stream(16 * 1024, 77);
        assert!(spectral(&good).passed());
    }

    #[test]
    fn constant_stream_fails_battery() {
        let data = vec![0xFFu8; 4096];
        let results = run_battery(&data);
        let failures = results.iter().filter(|(_, o)| !o.passed()).count();
        assert!(failures >= 5, "only {failures} failures: {results:?}");
    }

    #[test]
    fn alternating_stream_fails_runs() {
        let data = vec![0b0101_0101u8; 4096];
        assert!(!runs(&data).passed());
        assert!(!serial(&data, 16).passed());
        assert!(!approximate_entropy(&data, 10).passed());
        // Monobit alone is fooled (exactly half ones).
        assert!(frequency(&data).passed());
    }

    #[test]
    fn biased_stream_fails_frequency() {
        // 60% ones.
        let data: Vec<u8> = prng_stream(16 * 1024, 9)
            .iter()
            .map(|&b| b | 0b1010_0000)
            .collect();
        assert!(!frequency(&data).passed());
        assert!(!block_frequency(&data, 128).passed());
    }
}
