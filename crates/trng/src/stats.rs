//! ENT-style statistical analysis (Walker's `ent` tool), the analyzer the
//! paper quotes: "the TRNG provides 7.999996 bits of entropy per byte
//! (measured using ENT)" (§6.6).

/// Results of the five classic ENT measurements on a byte stream.
#[derive(Clone, Debug, PartialEq)]
pub struct EntReport {
    /// Shannon entropy in bits per byte (8.0 = ideal).
    pub entropy_bits_per_byte: f64,
    /// χ² statistic over the 256 byte-value bins (≈255 expected for
    /// random data).
    pub chi_square: f64,
    /// Arithmetic mean of the bytes (127.5 = ideal).
    pub mean: f64,
    /// Monte-Carlo estimate of π from consecutive 6-byte points
    /// (3.14159… = ideal).
    pub monte_carlo_pi: f64,
    /// First-order serial correlation coefficient (0.0 = ideal).
    pub serial_correlation: f64,
    /// Number of bytes analyzed.
    pub len: usize,
}

impl EntReport {
    /// Analyzes a byte stream.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn analyze(data: &[u8]) -> EntReport {
        assert!(!data.is_empty(), "cannot analyze an empty stream");
        let mut counts = [0u64; 256];
        let mut sum = 0u64;
        for &b in data {
            counts[b as usize] += 1;
            sum += b as u64;
        }
        let n = data.len() as f64;

        // Shannon entropy.
        let mut entropy = 0.0;
        for &c in &counts {
            if c > 0 {
                let p = c as f64 / n;
                entropy -= p * p.log2();
            }
        }

        // Chi-square against the uniform expectation.
        let expected = n / 256.0;
        let chi_square = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();

        // Monte-Carlo pi: use consecutive 6-byte (x, y) points inside the
        // unit square, counting those inside the inscribed quarter circle.
        let mut inside = 0u64;
        let mut total = 0u64;
        for chunk in data.chunks_exact(6) {
            let x = u32::from_be_bytes([0, chunk[0], chunk[1], chunk[2]]) as f64 / 16777216.0;
            let y = u32::from_be_bytes([0, chunk[3], chunk[4], chunk[5]]) as f64 / 16777216.0;
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
            total += 1;
        }
        let monte_carlo_pi = if total == 0 {
            0.0
        } else {
            4.0 * inside as f64 / total as f64
        };

        // Serial correlation coefficient (Knuth Vol. 2, as in ent).
        let serial_correlation = if data.len() < 2 {
            0.0
        } else {
            let mut t1 = 0.0;
            let mut t2 = 0.0;
            let mut t3 = 0.0;
            for i in 0..data.len() {
                let a = data[i] as f64;
                let b = data[(i + 1) % data.len()] as f64;
                t1 += a * b;
                t2 += a;
                t3 += a * a;
            }
            let num = n * t1 - t2 * t2;
            let den = n * t3 - t2 * t2;
            if den == 0.0 {
                1.0 // constant stream: perfectly correlated
            } else {
                num / den
            }
        };

        EntReport {
            entropy_bits_per_byte: entropy,
            chi_square,
            mean: sum as f64 / n,
            monte_carlo_pi,
            serial_correlation,
            len: data.len(),
        }
    }

    /// A loose overall verdict mirroring how `ent` output is usually
    /// read: high entropy, sane χ², centred mean, small correlation.
    pub fn looks_random(&self) -> bool {
        self.entropy_bits_per_byte > 7.8
            && self.chi_square > 180.0
            && self.chi_square < 340.0
            && (self.mean - 127.5).abs() < 3.0
            && self.serial_correlation.abs() < 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic high-quality PRNG stream for testing the analyzer
    /// itself (splitmix64).
    fn prng_stream(len: usize, mut seed: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            v.extend_from_slice(&z.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    #[test]
    fn uniform_stream_passes() {
        let data = prng_stream(64 * 1024, 42);
        let r = EntReport::analyze(&data);
        assert!(r.entropy_bits_per_byte > 7.99, "{r:?}");
        assert!((r.mean - 127.5).abs() < 1.5, "{r:?}");
        assert!(
            (r.monte_carlo_pi - std::f64::consts::PI).abs() < 0.1,
            "{r:?}"
        );
        assert!(r.serial_correlation.abs() < 0.02, "{r:?}");
        assert!(r.looks_random(), "{r:?}");
    }

    #[test]
    fn constant_stream_fails() {
        let data = vec![0xAA; 4096];
        let r = EntReport::analyze(&data);
        assert!(r.entropy_bits_per_byte < 0.01);
        assert!(!r.looks_random());
        assert_eq!(r.mean, 170.0);
    }

    #[test]
    fn ascii_text_fails() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let r = EntReport::analyze(&data);
        assert!(r.entropy_bits_per_byte < 5.0, "{r:?}");
        assert!(!r.looks_random());
    }

    #[test]
    fn biased_stream_detected_by_chi_square() {
        // 75% zeros, 25% PRNG bytes: entropy still moderately high but
        // chi-square explodes.
        let noise = prng_stream(16 * 1024, 7);
        let data: Vec<u8> = noise
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 4 == 0 { b } else { 0 })
            .collect();
        let r = EntReport::analyze(&data);
        assert!(r.chi_square > 1000.0, "{r:?}");
        assert!(!r.looks_random());
    }

    #[test]
    fn alternating_stream_has_strong_serial_correlation() {
        let data: Vec<u8> = (0..4096)
            .map(|i| if i % 2 == 0 { 0 } else { 255 })
            .collect();
        let r = EntReport::analyze(&data);
        assert!(r.serial_correlation < -0.9, "{r:?}");
        assert!(!r.looks_random());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stream_panics() {
        let _ = EntReport::analyze(&[]);
    }
}
