//! True random number generation from multi-core race conditions, plus
//! the statistical test battery the paper evaluates it with (§6.6).
//!
//! The paper's TRNG runs on the GPU and harvests "uncertainties that
//! arise when cores simultaneously access a particular memory location".
//! A deterministic simulator cannot produce physical entropy, so — per the
//! substitution rule documented in DESIGN.md — [`race::RaceTrng`] harvests
//! the *same physical phenomenon on the host CPU*: worker threads hammer
//! shared memory locations and the sampler observes the racy
//! interleavings. The rest of the pipeline is identical to the paper's:
//! raw samples are conditioned (SHA-256), and the output is evaluated with
//! an ENT-style analyzer ([`stats`]) and a NIST SP 800-22 subset
//! ([`nist`]).

pub mod nist;
pub mod race;
pub mod stats;

pub use race::{RaceTrng, RaceTrngConfig};
pub use stats::EntReport;
