//! Hierarchical timer wheel for virtual-clock due events.
//!
//! The control plane schedules three kinds of future work — frame
//! deliveries, re-attestation actions, and round deadlines — and the
//! old implementation found the next one by scanning every in-flight
//! frame and every roster entry on every step (O(fleet) per event).
//! This wheel makes `insert` O(1), `next_due` O(levels) and `pop_due`
//! amortized O(1) per expired entry, which is what lets one virtual
//! clock drive a 10k-device fleet.
//!
//! # Layout
//!
//! Eight levels of 64 slots each. Level `k` has slot granularity
//! `64^k` ticks, so the wheel covers `64^8 = 2^48` ticks of horizon;
//! entries beyond that (never hit by the simulated fleet, whose clocks
//! stay far below 2^48) overflow into a small `far` vector that is
//! re-homed as the cursor advances. An entry due `delta` ticks ahead
//! lands in the lowest level whose window still contains it, at slot
//! `(due >> 6k) & 63`. When the cursor crosses a level-`k` boundary
//! (a multiple of `64^k`), that level's current slot *cascades*: its
//! entries re-insert at lower levels, and by the time a due tick is
//! reached every entry due at it sits in the level-0 slot `due & 63`.
//!
//! Each level keeps a 64-bit occupancy mask so the cursor can jump
//! across empty regions without visiting each tick, and `next_due` can
//! find the earliest entry by rotating masks instead of scanning slots.
//!
//! # Determinism
//!
//! Entries are stamped with an insertion sequence number; `pop_due`
//! yields expired entries ordered by `(due, seq)` — exactly the
//! iteration order of the `BTreeMap<(at, seq), _>` the wheel replaces,
//! so frame delivery order (and with it every downstream RNG draw) is
//! bit-identical to the scan-based implementation.
//!
//! # Lazy cancellation
//!
//! There is no `remove`. Schedulers that reschedule (backoff moved, a
//! deadline superseded) simply insert a new entry and let the stale one
//! pop as a no-op: the service validates every popped timer against
//! current device state, so a stale pop costs one comparison. This
//! keeps the hot path allocation-free and branch-light.

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const LEVELS: usize = 8;
/// Ticks of horizon the wheel proper covers: `64^LEVELS`.
const HORIZON: u64 = 1u64 << (SLOT_BITS * LEVELS as u32); // 2^48

#[derive(Debug)]
struct Entry<T> {
    due: u64,
    seq: u64,
    item: T,
}

/// A hierarchical timer wheel over a virtual `u64` clock.
///
/// `pop_due` never yields an entry before its due time, and yields
/// expired entries in `(due, insertion order)` order. Entries inserted
/// in the past (due < current wheel time) are clamped to fire at the
/// current time — the caller's clock is authoritative.
#[derive(Debug)]
pub struct TimerWheel<T> {
    /// `levels[k][slot]`; level `k` slot granularity is `64^k` ticks.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmask (bit `s` set ⇔ slot `s` non-empty).
    occupancy: [u64; LEVELS],
    /// Entries due ≥ `time + HORIZON` at insert time.
    far: Vec<Entry<T>>,
    /// Current cursor: every held entry is due at or after this.
    time: u64,
    len: usize,
    seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            far: Vec::new(),
            time: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current cursor position.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Schedules `item` at tick `due` (clamped to the cursor if in the
    /// past). Returns the entry's sequence stamp, which orders
    /// same-tick pops.
    pub fn insert(&mut self, due: u64, item: T) -> u64 {
        let due = due.max(self.time);
        let seq = self.seq;
        self.seq += 1;
        self.place(Entry { due, seq, item });
        self.len += 1;
        seq
    }

    fn place(&mut self, e: Entry<T>) {
        let delta = e.due - self.time;
        if delta >= HORIZON {
            self.far.push(e);
            return;
        }
        // Lowest level whose window still contains `due`.
        let mut level = 0;
        while delta >= (SLOTS as u64) << (SLOT_BITS * level as u32) {
            level += 1;
        }
        let slot = ((e.due >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occupancy[level] |= 1u64 << slot;
    }

    /// The earliest pending due tick, if any.
    pub fn next_due(&self) -> Option<u64> {
        let mut best: Option<u64> = self.far.iter().map(|e| e.due).min();
        for level in 0..LEVELS {
            let mask = self.occupancy[level];
            if mask == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur = ((self.time >> shift) & (SLOTS as u64 - 1)) as u32;
            // Rotate the mask so the cursor's slot is bit 0, then take
            // the first set bit in cyclic order. At level 0 the cursor
            // slot itself can hold entries due exactly now; at higher
            // levels the current window was already cascaded away, so
            // its slot only holds next-cycle entries and cyclic order
            // from `cur` still ranks it correctly (farthest ≈ +64
            // windows, strictly beyond any other slot's window).
            let rot = mask.rotate_right(cur);
            let off = rot.trailing_zeros() as u64;
            let slot = ((cur as u64 + off) & (SLOTS as u64 - 1)) as usize;
            let cand = if level == 0 {
                // All entries in a level-0 slot share the unique tick
                // ≥ time congruent to the slot index (proved by the
                // placement rule), so the slot index alone is exact.
                self.time + off
            } else {
                // One slot scan: entries in it share a 64^level window
                // but not a tick.
                self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|e| e.due)
                    .min()
                    .expect("occupancy bit set for empty slot")
            };
            best = Some(best.map_or(cand, |b| b.min(cand)));
        }
        best
    }

    /// Pops every entry due at or before `now` into `out` as
    /// `(due, item)` pairs ordered by `(due, seq)`, advancing the
    /// cursor to `now`.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<(u64, T)>) {
        if now < self.time && self.len == 0 {
            return;
        }
        while let Some(due) = self.next_due() {
            if due > now {
                break;
            }
            self.advance_to(due);
            // After advancing, everything due at `due` sits in the
            // level-0 slot `due & 63` (cascades pulled higher levels
            // down at each window boundary).
            let slot = (due & (SLOTS as u64 - 1)) as usize;
            let bucket = &mut self.slots[slot];
            debug_assert!(bucket.iter().all(|e| e.due == due));
            // Appends during cascade can interleave entries inserted at
            // different times; restore insertion order.
            bucket.sort_unstable_by_key(|e| e.seq);
            self.len -= bucket.len();
            out.extend(bucket.drain(..).map(|e| (e.due, e.item)));
            self.occupancy[0] &= !(1u64 << slot);
            // Re-home far entries that the cursor has pulled within
            // horizon (cannot fire before `now` anyway: they were ≥
            // time + 2^48 when parked).
            self.rehome_far();
        }
        if now > self.time {
            self.advance_to(now);
        }
    }

    fn rehome_far(&mut self) {
        if self.far.is_empty() {
            return;
        }
        let time = self.time;
        if self.far.iter().all(|e| e.due - time >= HORIZON) {
            return;
        }
        let far = std::mem::take(&mut self.far);
        for e in far {
            if e.due - time < HORIZON {
                self.place(e);
            } else {
                self.far.push(e);
            }
        }
    }

    /// Moves the cursor to `target`, cascading higher-level slots down
    /// as their window boundaries are crossed. Caller guarantees no
    /// entry is due in `(self.time, target)` — `pop_due` only advances
    /// to due ticks it is about to drain.
    fn advance_to(&mut self, target: u64) {
        while self.time < target {
            let Some(level) = (0..LEVELS).find(|&k| self.occupancy[k] != 0) else {
                // Nothing below `far`; jump straight there.
                self.time = target;
                return;
            };
            // Next boundary at which something can cascade: level `k`
            // pulls its current slot when time crosses a multiple of
            // 64^k. Lower (empty) levels have no boundaries to honor.
            let gran = 1u64 << (SLOT_BITS * level as u32);
            let boundary = (self.time | (gran - 1)) + 1;
            if target < boundary {
                self.time = target;
            } else {
                self.time = boundary;
                self.cascade();
            }
        }
    }

    /// At a window boundary: pull every level whose window just rolled
    /// over down into lower levels.
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            let gran = 1u64 << (SLOT_BITS * level as u32);
            if self.time & (gran - 1) != 0 {
                break;
            }
            let slot = ((self.time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occupancy[level] & (1u64 << slot) == 0 {
                continue;
            }
            let entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupancy[level] &= !(1u64 << slot);
            for e in entries {
                debug_assert!(e.due >= self.time);
                self.place(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Deterministic xorshift for the oracle fuzz below.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn pops_in_due_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.insert(5, "b");
        w.insert(3, "a");
        w.insert(5, "c");
        w.insert(900_000, "z");
        let mut out = Vec::new();
        w.pop_due(10, &mut out);
        assert_eq!(out, vec![(3, "a"), (5, "b"), (5, "c")]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_due(), Some(900_000));
        out.clear();
        w.pop_due(900_000, &mut out);
        assert_eq!(out, vec![(900_000, "z")]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_inserts_clamp_to_cursor() {
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        w.pop_due(100, &mut out);
        w.insert(7, "late");
        assert_eq!(w.next_due(), Some(100));
        w.pop_due(100, &mut out);
        assert_eq!(out, vec![(100, "late")]);
    }

    #[test]
    fn same_tick_insert_after_pop_fires_same_tick() {
        // The service schedules zero-backoff retries at the current
        // tick; they must be visible to a second pop at the same time.
        let mut w = TimerWheel::new();
        let mut out = Vec::new();
        w.insert(50, 1u32);
        w.pop_due(50, &mut out);
        assert_eq!(out, vec![(50, 1)]);
        w.insert(50, 2u32);
        assert_eq!(w.next_due(), Some(50));
        out.clear();
        w.pop_due(50, &mut out);
        assert_eq!(out, vec![(50, 2)]);
    }

    #[test]
    fn cascades_across_level_boundaries() {
        let mut w = TimerWheel::new();
        // One entry per level's window.
        let dues = [1u64, 63, 64, 4095, 4096, 262_143, 262_144, 1 << 30];
        for (i, &d) in dues.iter().enumerate() {
            w.insert(d, i);
        }
        let mut out = Vec::new();
        w.pop_due(1 << 30, &mut out);
        let got: Vec<u64> = out.iter().map(|&(d, _)| d).collect();
        assert_eq!(got, dues.to_vec());
        let ids: Vec<usize> = out.iter().map(|&(_, i)| i).collect();
        assert_eq!(ids, (0..dues.len()).collect::<Vec<_>>());
    }

    #[test]
    fn incremental_pops_match_big_pop() {
        let mut a = TimerWheel::new();
        let mut b = TimerWheel::new();
        let mut rng = Rng(0xDEADBEEF);
        for i in 0..500u32 {
            let due = rng.next() % 10_000;
            a.insert(due, i);
            b.insert(due, i);
        }
        let mut big = Vec::new();
        a.pop_due(10_000, &mut big);
        let mut inc = Vec::new();
        let mut t = 0;
        while t < 10_000 {
            t += 1 + rng.next() % 997;
            b.pop_due(t.min(10_000), &mut inc);
        }
        b.pop_due(10_000, &mut inc);
        assert_eq!(big, inc);
    }

    #[test]
    fn oracle_fuzz_against_btreemap() {
        // Random interleaved inserts and pops must match the
        // BTreeMap<(due, seq), _> the wheel replaced, including order.
        for seed in 1..=5u64 {
            let mut rng = Rng(seed * 0x9E37_79B9);
            let mut wheel = TimerWheel::new();
            let mut oracle: BTreeMap<(u64, u64), u32> = BTreeMap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for i in 0..3_000u32 {
                if rng.next().is_multiple_of(4) {
                    // Pop everything due at a jumped-forward clock.
                    now += rng.next() % 300;
                    let mut got = Vec::new();
                    wheel.pop_due(now, &mut got);
                    let mut want = Vec::new();
                    while let Some((&(due, s), _)) = oracle.iter().next() {
                        if due > now {
                            break;
                        }
                        want.push((due, oracle.remove(&(due, s)).unwrap()));
                    }
                    assert_eq!(got, want, "seed {seed} step {i} now {now}");
                } else {
                    // Mix of near, mid and far horizons.
                    let due = now
                        + match rng.next() % 10 {
                            0..=5 => rng.next() % 128,
                            6..=8 => rng.next() % 100_000,
                            _ => rng.next() % (1 << 34),
                        };
                    wheel.insert(due, i);
                    oracle.insert((due, seq), i);
                    seq += 1;
                }
            }
            // Drain the rest.
            let mut got = Vec::new();
            wheel.pop_due(u64::MAX - HORIZON, &mut got);
            let want: Vec<(u64, u32)> = oracle.iter().map(|(&(d, _), &v)| (d, v)).collect();
            assert_eq!(got, want, "seed {seed} final drain");
            assert!(wheel.is_empty());
        }
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut w = TimerWheel::new();
        for i in 0..100u64 {
            w.insert(i * 3, i);
        }
        assert_eq!(w.len(), 100);
        let mut out = Vec::new();
        w.pop_due(150, &mut out);
        assert_eq!(w.len(), 100 - out.len());
        w.pop_due(10_000, &mut out);
        assert_eq!(out.len(), 100);
        assert!(w.is_empty());
    }
}
