//! The device-side endpoint of the control plane: owns the GPU session
//! and answers re-attestation challenges arriving over the transport.

use sage::multi::FleetMember;

use crate::net::NodeId;
use crate::wire::Frame;

/// A fleet device as seen from the network: the installed session plus
/// its transport address.
pub struct DeviceNode {
    /// The device's session, agent and name.
    pub member: FleetMember,
    /// Transport address.
    pub id: NodeId,
    /// Extra cycles added to every checksum run — models a device that
    /// genuinely became slower after enrollment (e.g. a proxy relaying
    /// the exchange, paper §8). Zero for honest devices.
    pub extra_compute: u64,
}

impl DeviceNode {
    /// Wraps a fleet member as a network node.
    pub fn new(member: FleetMember, id: NodeId) -> DeviceNode {
        DeviceNode {
            member,
            id,
            extra_compute: 0,
        }
    }

    /// Handles one decoded frame arriving at virtual time `at`. Returns
    /// the reply and the time it leaves the device (arrival plus the
    /// checksum runtime — the device is busy while the VF runs).
    ///
    /// A faulting device returns `None` (it goes silent; the verifier's
    /// deadline converts that into a timeout).
    pub fn handle(&mut self, at: u64, frame: &Frame) -> Option<(u64, Frame)> {
        match frame {
            Frame::Challenge { round, challenges } => {
                let (checksum, measured) = self.member.session.run_checksum(challenges).ok()?;
                let measured = measured + self.extra_compute;
                Some((
                    at + measured,
                    Frame::Response {
                        round: *round,
                        checksum,
                        measured_cycles: measured,
                    },
                ))
            }
            // SAKE and data-channel frames are handled by the agent
            // during enrollment and data transfer; the steady-state loop
            // ignores them here.
            _ => None,
        }
    }
}
