//! The device-side endpoint of the control plane: owns the GPU session
//! and answers re-attestation challenges arriving over the transport.

use sage::channel::{Role, SecureChannel, Wire};
use sage::multi::FleetMember;

use crate::net::NodeId;
use crate::wire::Frame;

/// A fleet device as seen from the network: the installed session plus
/// its transport address.
pub struct DeviceNode {
    /// The device's session, agent and name.
    pub member: FleetMember,
    /// Transport address.
    pub id: NodeId,
    /// Extra cycles added to every checksum run — models a device that
    /// genuinely became slower after enrollment (e.g. a proxy relaying
    /// the exchange, paper §8). Zero for honest devices.
    pub extra_compute: u64,
    /// The SAKE session key held by the device-resident trusted code
    /// (installed after establishment; the device end of liveness
    /// probes). Survives a control-plane crash with the endpoint.
    pub session_key: Option<[u8; 16]>,
    /// When `true`, the device ignores liveness probes (models a hung or
    /// unplugged device for tests; challenge rounds are unaffected).
    pub mute_liveness: bool,
    /// Extra wire delay on every response — models a relay/proxy that
    /// outsources the checksum to another GPU and forwards the answer.
    /// Unlike [`DeviceNode::extra_compute`], this delay is *not* folded
    /// into the reported `measured_cycles`: the relayed GPU's compute
    /// time can look perfectly honest while the response still pays the
    /// extra hop on the wire, which is exactly what the topology
    /// detector ([`crate::quorum::relay_wire_excess`]) keys on.
    pub relay_delay: u64,
}

impl DeviceNode {
    /// Wraps a fleet member as a network node.
    pub fn new(member: FleetMember, id: NodeId) -> DeviceNode {
        DeviceNode {
            member,
            id,
            extra_compute: 0,
            session_key: None,
            mute_liveness: false,
            relay_delay: 0,
        }
    }

    /// Answers an authenticated liveness probe with the SAKE-keyed echo,
    /// or `None` if no key is installed, the probe fails to open, or the
    /// device is muted.
    pub fn answer_liveness(&mut self, probe: &Wire) -> Option<Wire> {
        if self.mute_liveness {
            return None;
        }
        let sk = self.session_key?;
        let mut ch = SecureChannel::new(sk, Role::Device);
        ch.answer_liveness(probe).ok()
    }

    /// Handles one decoded frame arriving at virtual time `at`. Returns
    /// the reply and the time it leaves the device (arrival plus the
    /// checksum runtime — the device is busy while the VF runs).
    ///
    /// A faulting device returns `None` (it goes silent; the verifier's
    /// deadline converts that into a timeout).
    pub fn handle(&mut self, at: u64, frame: &Frame) -> Option<(u64, Frame)> {
        match frame {
            Frame::Challenge { round, challenges } => {
                let (checksum, measured) = self.member.session.run_checksum(challenges).ok()?;
                let measured = measured + self.extra_compute;
                Some((
                    at + measured + self.relay_delay,
                    Frame::Response {
                        round: *round,
                        checksum,
                        measured_cycles: measured,
                    },
                ))
            }
            // SAKE and data-channel frames are handled by the agent
            // during enrollment and data transfer; the steady-state loop
            // ignores them here.
            _ => None,
        }
    }
}
