//! Framed, versioned wire codec for the verifier↔agent traffic.
//!
//! Everything the control plane puts on a (simulated) network link is one
//! self-describing frame:
//!
//! ```text
//! ┌────────┬─────────┬──────┬──────────┬───────────────┐
//! │ magic  │ version │ kind │ len (LE) │ payload…      │
//! │ u16 LE │ u8      │ u8   │ u32      │ `len` bytes   │
//! └────────┴─────────┴──────┴──────────┴───────────────┘
//! ```
//!
//! Frame kinds cover the three protocol families the service carries:
//! the six modified-SAKE key-establishment messages
//! ([`sage::sake::SakeMessage`]), sealed [`sage::channel::Wire`] data
//! messages, and the service's own re-attestation challenge/response
//! pair. Decoding is strict: unknown magic, versions, kinds, truncated
//! buffers, oversized length fields and trailing bytes are all rejected
//! with a typed [`CodecError`] — a lossy or adversarial link can corrupt
//! frames, and the state machine must fail closed rather than
//! misinterpret them.

use core::fmt;

use sage::channel::Wire;
use sage::sake::SakeMessage;
use sage_evidence::StageVerdict;

/// Frame magic ("SAGE service", arbitrary but fixed).
pub const MAGIC: u16 = 0x5AE5;
/// Current wire-format version. Decoders reject everything else.
pub const VERSION: u8 = 1;
/// Upper bound on a payload length field; larger values are rejected
/// before any allocation happens.
pub const MAX_PAYLOAD: u32 = 1 << 20;

const HEADER_BYTES: usize = 8;

// Frame kinds. SAKE messages occupy 0x01–0x06 in flow order; data-channel
// and service frames live in separate ranges so new kinds never collide.
const K_SAKE_CHALLENGE: u8 = 0x01;
const K_SAKE_COMMIT: u8 = 0x02;
const K_SAKE_REVEAL_V1: u8 = 0x03;
const K_SAKE_DEV_REVEAL1: u8 = 0x04;
const K_SAKE_REVEAL_V0: u8 = 0x05;
const K_SAKE_DEV_REVEAL0: u8 = 0x06;
const K_SAKE_COMMIT_TIMED: u8 = 0x07;
const K_CHANNEL: u8 = 0x10;
const K_CHALLENGE: u8 = 0x20;
const K_RESPONSE: u8 = 0x21;
// Link-layer frames (0x30+): connection supervision for the real
// transport — enrollment, authenticated session resume, heartbeats.
const K_LINK_NONCE: u8 = 0x30;
const K_ENROLL: u8 = 0x31;
const K_HELLO: u8 = 0x32;
const K_HELLO_ACK: u8 = 0x33;
const K_HEARTBEAT: u8 = 0x34;
// Quorum frames (0x40+): cross-verifier vote exchange and spot-check
// plan broadcast for the multi-verifier control plane.
const K_QUORUM_VOTE: u8 = 0x40;
const K_SAMPLING_PLAN: u8 = 0x41;

/// Longest device name the link frames will carry.
pub const MAX_NAME: usize = 256;

/// A decoded control-plane frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A modified-SAKE key-establishment message.
    Sake(SakeMessage),
    /// A sealed secure-channel data message.
    Channel(Wire),
    /// Verifier → device: one re-attestation round's fresh per-block
    /// challenges.
    Challenge {
        /// Monotonic per-device round number.
        round: u64,
        /// Per-block 16-byte challenges.
        challenges: Vec<[u8; 16]>,
    },
    /// Device → verifier: the checksum answer for a round.
    Response {
        /// Echoed round number.
        round: u64,
        /// The 8-word grid checksum.
        checksum: [u32; 8],
        /// Measured exchange time in device cycles.
        measured_cycles: u64,
    },
    /// Device → verifier: a SAKE commit carrying the device's measured
    /// checksum-exchange time. In-process flows pass the timing out of
    /// band; over a real link it rides in the commit frame.
    SakeCommitTimed {
        /// The commit hash `w2`.
        w2: [u8; 32],
        /// The commit MAC.
        mac: [u8; 16],
        /// Measured exchange time in device cycles.
        measured_cycles: u64,
    },
    /// Server → device, first frame on every accepted connection: a
    /// fresh nonce the device must fold into its `Hello` MAC, so a
    /// recorded resume handshake cannot be replayed on a later link.
    LinkNonce {
        /// Fresh per-connection server nonce.
        nonce: [u8; 16],
    },
    /// Device → verifier: a first-contact enrollment request; the
    /// connection then carries calibration and SAKE frames in the clear
    /// protocol order.
    Enroll {
        /// The device's fleet name.
        device: String,
    },
    /// Device → verifier: an authenticated session-resume request. The
    /// MAC is keyed by the link key derived from the SAKE session key,
    /// over the device name, the server's `LinkNonce`, and the evidence
    /// sequence the device believes is current — proof of key
    /// possession without rerunning SAKE.
    Hello {
        /// The device's fleet name.
        device: String,
        /// Echo of the server's `LinkNonce` nonce.
        nonce: [u8; 16],
        /// The device's view of its evidence-chain sequence head.
        resume_from: u64,
        /// `CMAC(link_key, transcript)`.
        mac: [u8; 16],
    },
    /// Verifier → device: accepts a `Hello`, proving the verifier also
    /// holds the link key (mutual authentication).
    HelloAck {
        /// Echo of the device's hello nonce.
        nonce: [u8; 16],
        /// `CMAC(link_key, ack transcript)`.
        mac: [u8; 16],
    },
    /// Either direction: connection liveness probe. `echo == false`
    /// requests a reply; the reply echoes the sequence with
    /// `echo == true`. Handled inside the transport, never surfaced to
    /// the service loop.
    Heartbeat {
        /// Sender-chosen sequence number, echoed back.
        seq: u64,
        /// Whether this frame is the reply leg.
        echo: bool,
    },
    /// Verifier ↔ verifier: one replica's authenticated vote on a
    /// round verdict. The vote rides the wire as a *self-checking*
    /// byte — verdict tag in the low nibble, its bitwise complement in
    /// the high — so any single-bit corruption is rejected at decode
    /// time, before the CMAC layer even looks at it.
    QuorumVote {
        /// Index of the voting verifier replica.
        verifier: u16,
        /// The device whose round is being judged.
        device: String,
        /// The round the vote judges.
        round: u64,
        /// The replica's verdict.
        vote: StageVerdict,
        /// `CMAC(vote_key, verifier ‖ device ‖ round ‖ vote)` under the
        /// replica's per-session vote key.
        mac: [u8; 16],
    },
    /// Verifier ↔ verifier: one epoch's spot-check plan, broadcast so
    /// every replica attests (and expects silence from) the same
    /// sample. Coverage above 1000‰ is rejected at decode.
    SamplingPlan {
        /// The epoch the plan covers.
        epoch: u64,
        /// Coverage the plan was drawn at, in per-mille (≤ 1000).
        coverage_per_mille: u32,
        /// The plan seed (lets a receiver re-derive and cross-check).
        seed: u64,
        /// Devices selected for attestation this epoch.
        selected: Vec<String>,
    },
}

/// The self-checking vote-tag byte: verdict tag in the low nibble, its
/// bitwise complement in the high nibble. Any two valid encodings
/// differ in at least two bits, so every single-bit mutation breaks
/// the complement relation and fails decode.
fn vote_byte(v: StageVerdict) -> u8 {
    let t: u8 = match v {
        StageVerdict::Pass => 0,
        StageVerdict::WrongValue => 1,
        StageVerdict::TooSlow => 2,
        StageVerdict::Timeout => 3,
    };
    ((t ^ 0x0F) << 4) | t
}

fn vote_from_byte(b: u8) -> Result<StageVerdict, CodecError> {
    let t = b & 0x0F;
    if (b >> 4) != (t ^ 0x0F) {
        return Err(CodecError::BadField("vote tag"));
    }
    Ok(match t {
        0 => StageVerdict::Pass,
        1 => StageVerdict::WrongValue,
        2 => StageVerdict::TooSlow,
        3 => StageVerdict::Timeout,
        _ => return Err(CodecError::BadField("vote tag")),
    })
}

/// Decoding failures (all fail closed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Fewer bytes than a header or a declared field requires.
    Truncated,
    /// The magic bytes did not match.
    BadMagic(u16),
    /// The version is not [`VERSION`].
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// A length field exceeded [`MAX_PAYLOAD`].
    Oversize(u32),
    /// Bytes left over after the payload was fully parsed.
    Trailing(usize),
    /// A field held a value outside its domain.
    BadField(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::Oversize(n) => write!(f, "length field {n} exceeds maximum"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::BadField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes a frame into its wire representation.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let (kind, payload) = match frame {
        Frame::Sake(msg) => encode_sake(msg),
        Frame::Channel(wire) => (K_CHANNEL, encode_channel(wire)),
        Frame::Challenge { round, challenges } => {
            let mut p = Vec::with_capacity(12 + challenges.len() * 16);
            p.extend_from_slice(&round.to_le_bytes());
            p.extend_from_slice(&(challenges.len() as u32).to_le_bytes());
            for c in challenges {
                p.extend_from_slice(c);
            }
            (K_CHALLENGE, p)
        }
        Frame::Response {
            round,
            checksum,
            measured_cycles,
        } => {
            let mut p = Vec::with_capacity(48);
            p.extend_from_slice(&round.to_le_bytes());
            for w in checksum {
                p.extend_from_slice(&w.to_le_bytes());
            }
            p.extend_from_slice(&measured_cycles.to_le_bytes());
            (K_RESPONSE, p)
        }
        Frame::SakeCommitTimed {
            w2,
            mac,
            measured_cycles,
        } => {
            let mut p = Vec::with_capacity(56);
            p.extend_from_slice(w2);
            p.extend_from_slice(mac);
            p.extend_from_slice(&measured_cycles.to_le_bytes());
            (K_SAKE_COMMIT_TIMED, p)
        }
        Frame::LinkNonce { nonce } => (K_LINK_NONCE, nonce.to_vec()),
        Frame::Enroll { device } => {
            let mut p = Vec::with_capacity(2 + device.len());
            encode_name(&mut p, device);
            (K_ENROLL, p)
        }
        Frame::Hello {
            device,
            nonce,
            resume_from,
            mac,
        } => {
            let mut p = Vec::with_capacity(42 + device.len());
            encode_name(&mut p, device);
            p.extend_from_slice(nonce);
            p.extend_from_slice(&resume_from.to_le_bytes());
            p.extend_from_slice(mac);
            (K_HELLO, p)
        }
        Frame::HelloAck { nonce, mac } => {
            let mut p = Vec::with_capacity(32);
            p.extend_from_slice(nonce);
            p.extend_from_slice(mac);
            (K_HELLO_ACK, p)
        }
        Frame::Heartbeat { seq, echo } => {
            let mut p = Vec::with_capacity(9);
            p.extend_from_slice(&seq.to_le_bytes());
            p.push(*echo as u8);
            (K_HEARTBEAT, p)
        }
        Frame::QuorumVote {
            verifier,
            device,
            round,
            vote,
            mac,
        } => {
            let mut p = Vec::with_capacity(29 + device.len());
            p.extend_from_slice(&verifier.to_le_bytes());
            encode_name(&mut p, device);
            p.extend_from_slice(&round.to_le_bytes());
            p.push(vote_byte(*vote));
            p.extend_from_slice(mac);
            (K_QUORUM_VOTE, p)
        }
        Frame::SamplingPlan {
            epoch,
            coverage_per_mille,
            seed,
            selected,
        } => {
            assert!(
                *coverage_per_mille <= 1000,
                "coverage is per-mille, at most 1000"
            );
            let mut p =
                Vec::with_capacity(24 + selected.iter().map(|n| 2 + n.len()).sum::<usize>());
            p.extend_from_slice(&epoch.to_le_bytes());
            p.extend_from_slice(&coverage_per_mille.to_le_bytes());
            p.extend_from_slice(&seed.to_le_bytes());
            p.extend_from_slice(&(selected.len() as u32).to_le_bytes());
            for name in selected {
                encode_name(&mut p, name);
            }
            (K_SAMPLING_PLAN, p)
        }
    };
    assert!(
        payload.len() as u32 <= MAX_PAYLOAD,
        "frame payload too large"
    );
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn encode_sake(msg: &SakeMessage) -> (u8, Vec<u8>) {
    match msg {
        SakeMessage::Challenge { v2 } => (K_SAKE_CHALLENGE, v2.to_vec()),
        SakeMessage::Commit { w2, mac } => {
            let mut p = Vec::with_capacity(48);
            p.extend_from_slice(w2);
            p.extend_from_slice(mac);
            (K_SAKE_COMMIT, p)
        }
        SakeMessage::RevealV1 { v1 } => (K_SAKE_REVEAL_V1, v1.to_vec()),
        SakeMessage::DeviceReveal1 { w1, k, mac_k } => {
            let mut p = Vec::with_capacity(52 + k.len());
            p.extend_from_slice(w1);
            p.extend_from_slice(&(k.len() as u32).to_le_bytes());
            p.extend_from_slice(k);
            p.extend_from_slice(mac_k);
            (K_SAKE_DEV_REVEAL1, p)
        }
        SakeMessage::RevealV0 { v0 } => {
            let mut p = Vec::with_capacity(4 + v0.len());
            p.extend_from_slice(&(v0.len() as u32).to_le_bytes());
            p.extend_from_slice(v0);
            (K_SAKE_REVEAL_V0, p)
        }
        SakeMessage::DeviceReveal0 { w0 } => (K_SAKE_DEV_REVEAL0, w0.to_vec()),
    }
}

fn encode_name(p: &mut Vec<u8>, name: &str) {
    assert!(name.len() <= MAX_NAME, "device name too long for the wire");
    p.extend_from_slice(&(name.len() as u16).to_le_bytes());
    p.extend_from_slice(name.as_bytes());
}

fn encode_channel(wire: &Wire) -> Vec<u8> {
    let mut p = Vec::with_capacity(33 + wire.body.len());
    p.extend_from_slice(&wire.seq.to_le_bytes());
    p.extend_from_slice(&wire.addr.to_le_bytes());
    p.push(wire.confidential as u8);
    p.extend_from_slice(&wire.mac);
    p.extend_from_slice(&(wire.body.len() as u32).to_le_bytes());
    p.extend_from_slice(&wire.body);
    p
}

/// Decodes a wire buffer back into a frame.
pub fn decode(bytes: &[u8]) -> Result<Frame, CodecError> {
    let mut r = Reader::new(bytes);
    let magic = r.u16()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = r.u8()?;
    let len = r.u32()?;
    if len > MAX_PAYLOAD {
        return Err(CodecError::Oversize(len));
    }
    if r.remaining() != len as usize {
        // Either truncated relative to the declared length, or carrying
        // trailing garbage past it.
        return if r.remaining() < len as usize {
            Err(CodecError::Truncated)
        } else {
            Err(CodecError::Trailing(r.remaining() - len as usize))
        };
    }
    let frame = match kind {
        K_SAKE_CHALLENGE => Frame::Sake(SakeMessage::Challenge { v2: r.arr32()? }),
        K_SAKE_COMMIT => Frame::Sake(SakeMessage::Commit {
            w2: r.arr32()?,
            mac: r.arr16()?,
        }),
        K_SAKE_REVEAL_V1 => Frame::Sake(SakeMessage::RevealV1 { v1: r.arr32()? }),
        K_SAKE_DEV_REVEAL1 => {
            let w1 = r.arr32()?;
            let klen = r.u32()?;
            if klen > MAX_PAYLOAD {
                return Err(CodecError::Oversize(klen));
            }
            let k = r.take(klen as usize)?.to_vec();
            let mac_k = r.arr16()?;
            Frame::Sake(SakeMessage::DeviceReveal1 { w1, k, mac_k })
        }
        K_SAKE_REVEAL_V0 => {
            let vlen = r.u32()?;
            if vlen > MAX_PAYLOAD {
                return Err(CodecError::Oversize(vlen));
            }
            Frame::Sake(SakeMessage::RevealV0 {
                v0: r.take(vlen as usize)?.to_vec(),
            })
        }
        K_SAKE_DEV_REVEAL0 => Frame::Sake(SakeMessage::DeviceReveal0 { w0: r.arr32()? }),
        K_CHANNEL => {
            let seq = r.u64()?;
            let addr = r.u32()?;
            let confidential = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadField("confidential flag")),
            };
            let mac = r.arr16()?;
            let blen = r.u32()?;
            if blen > MAX_PAYLOAD {
                return Err(CodecError::Oversize(blen));
            }
            let body = r.take(blen as usize)?.to_vec();
            Frame::Channel(Wire {
                seq,
                addr,
                body,
                confidential,
                mac,
            })
        }
        K_CHALLENGE => {
            let round = r.u64()?;
            let count = r.u32()?;
            if count > MAX_PAYLOAD / 16 {
                return Err(CodecError::Oversize(count));
            }
            let mut challenges = Vec::with_capacity(count as usize);
            for _ in 0..count {
                challenges.push(r.arr16()?);
            }
            Frame::Challenge { round, challenges }
        }
        K_RESPONSE => {
            let round = r.u64()?;
            let mut checksum = [0u32; 8];
            for w in &mut checksum {
                *w = r.u32()?;
            }
            Frame::Response {
                round,
                checksum,
                measured_cycles: r.u64()?,
            }
        }
        K_SAKE_COMMIT_TIMED => Frame::SakeCommitTimed {
            w2: r.arr32()?,
            mac: r.arr16()?,
            measured_cycles: r.u64()?,
        },
        K_LINK_NONCE => Frame::LinkNonce { nonce: r.arr16()? },
        K_ENROLL => Frame::Enroll { device: r.name()? },
        K_HELLO => Frame::Hello {
            device: r.name()?,
            nonce: r.arr16()?,
            resume_from: r.u64()?,
            mac: r.arr16()?,
        },
        K_HELLO_ACK => Frame::HelloAck {
            nonce: r.arr16()?,
            mac: r.arr16()?,
        },
        K_HEARTBEAT => Frame::Heartbeat {
            seq: r.u64()?,
            echo: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadField("heartbeat echo flag")),
            },
        },
        K_QUORUM_VOTE => Frame::QuorumVote {
            verifier: r.u16()?,
            device: r.name()?,
            round: r.u64()?,
            vote: vote_from_byte(r.u8()?)?,
            mac: r.arr16()?,
        },
        K_SAMPLING_PLAN => {
            let epoch = r.u64()?;
            let coverage_per_mille = r.u32()?;
            if coverage_per_mille > 1000 {
                return Err(CodecError::BadField("coverage per-mille"));
            }
            let seed = r.u64()?;
            let count = r.u32()?;
            // Each selected name costs at least its 2-byte length prefix.
            if count > MAX_PAYLOAD / 2 {
                return Err(CodecError::Oversize(count));
            }
            let mut selected = Vec::with_capacity(count as usize);
            for _ in 0..count {
                selected.push(r.name()?);
            }
            Frame::SamplingPlan {
                epoch,
                coverage_per_mille,
                seed,
                selected,
            }
        }
        other => return Err(CodecError::BadKind(other)),
    };
    r.finish()?;
    Ok(frame)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.take(8)?
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| CodecError::Truncated)
    }

    fn arr16(&mut self) -> Result<[u8; 16], CodecError> {
        self.take(16)?.try_into().map_err(|_| CodecError::Truncated)
    }

    fn arr32(&mut self) -> Result<[u8; 32], CodecError> {
        self.take(32)?.try_into().map_err(|_| CodecError::Truncated)
    }

    fn name(&mut self) -> Result<String, CodecError> {
        let len = self.u16()? as usize;
        if len > MAX_NAME {
            return Err(CodecError::Oversize(len as u32));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadField("device name"))
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        assert_eq!(decode(&bytes).unwrap(), frame, "roundtrip {frame:?}");
    }

    #[test]
    fn all_sake_messages_roundtrip() {
        roundtrip(Frame::Sake(SakeMessage::Challenge { v2: [1; 32] }));
        roundtrip(Frame::Sake(SakeMessage::Commit {
            w2: [2; 32],
            mac: [3; 16],
        }));
        roundtrip(Frame::Sake(SakeMessage::RevealV1 { v1: [4; 32] }));
        roundtrip(Frame::Sake(SakeMessage::DeviceReveal1 {
            w1: [5; 32],
            k: vec![6, 7, 8],
            mac_k: [9; 16],
        }));
        roundtrip(Frame::Sake(SakeMessage::RevealV0 { v0: vec![] }));
        roundtrip(Frame::Sake(SakeMessage::DeviceReveal0 { w0: [10; 32] }));
    }

    #[test]
    fn channel_and_service_frames_roundtrip() {
        roundtrip(Frame::Channel(Wire {
            seq: 7,
            addr: 0x1000,
            body: b"ciphertext".to_vec(),
            confidential: true,
            mac: [0xAB; 16],
        }));
        roundtrip(Frame::Challenge {
            round: 3,
            challenges: vec![[1; 16], [2; 16]],
        });
        roundtrip(Frame::Challenge {
            round: 0,
            challenges: vec![],
        });
        roundtrip(Frame::Response {
            round: 3,
            checksum: [1, 2, 3, 4, 5, 6, 7, 8],
            measured_cycles: 12345,
        });
    }

    #[test]
    fn link_frames_roundtrip() {
        roundtrip(Frame::SakeCommitTimed {
            w2: [0x11; 32],
            mac: [0x22; 16],
            measured_cycles: 987_654,
        });
        roundtrip(Frame::LinkNonce { nonce: [0x33; 16] });
        roundtrip(Frame::Enroll {
            device: "gpu-00042".to_string(),
        });
        roundtrip(Frame::Enroll {
            device: String::new(),
        });
        roundtrip(Frame::Hello {
            device: "gpu-a".to_string(),
            nonce: [0x44; 16],
            resume_from: 17,
            mac: [0x55; 16],
        });
        roundtrip(Frame::HelloAck {
            nonce: [0x66; 16],
            mac: [0x77; 16],
        });
        roundtrip(Frame::Heartbeat {
            seq: 9,
            echo: false,
        });
        roundtrip(Frame::Heartbeat {
            seq: 10,
            echo: true,
        });
    }

    #[test]
    fn quorum_frames_roundtrip() {
        for vote in [
            StageVerdict::Pass,
            StageVerdict::WrongValue,
            StageVerdict::TooSlow,
            StageVerdict::Timeout,
        ] {
            roundtrip(Frame::QuorumVote {
                verifier: 3,
                device: "gpu-07".to_string(),
                round: 42,
                vote,
                mac: [0x5A; 16],
            });
        }
        roundtrip(Frame::SamplingPlan {
            epoch: 9,
            coverage_per_mille: 250,
            seed: 0xFEED,
            selected: vec!["gpu-00".to_string(), "gpu-03".to_string()],
        });
        roundtrip(Frame::SamplingPlan {
            epoch: 0,
            coverage_per_mille: 1000,
            seed: 0,
            selected: vec![],
        });
    }

    #[test]
    fn every_single_bit_vote_tag_mutation_rejected() {
        let device = "gpu-07";
        let bytes = encode(&Frame::QuorumVote {
            verifier: 1,
            device: device.to_string(),
            round: 5,
            vote: StageVerdict::Pass,
            mac: [0x11; 16],
        });
        // Payload layout: verifier u16, name (u16 len + bytes), round
        // u64, vote byte, mac.
        let vote_off = HEADER_BYTES + 2 + 2 + device.len() + 8;
        for vote in [
            StageVerdict::Pass,
            StageVerdict::WrongValue,
            StageVerdict::TooSlow,
            StageVerdict::Timeout,
        ] {
            let mut bytes = bytes.clone();
            bytes[vote_off] = super::vote_byte(vote);
            assert!(decode(&bytes).is_ok());
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[vote_off] ^= 1 << bit;
                assert_eq!(
                    decode(&mutated),
                    Err(CodecError::BadField("vote tag")),
                    "single-bit flip {bit} of vote {vote:?} must be rejected"
                );
            }
        }
    }

    #[test]
    fn sampling_plan_bad_coverage_and_oversize_count_rejected() {
        let bytes = encode(&Frame::SamplingPlan {
            epoch: 1,
            coverage_per_mille: 500,
            seed: 2,
            selected: vec!["gpu-00".to_string()],
        });
        // Coverage above 1000‰.
        let cov_off = HEADER_BYTES + 8;
        let mut bad = bytes.clone();
        bad[cov_off..cov_off + 4].copy_from_slice(&1001u32.to_le_bytes());
        assert_eq!(
            decode(&bad),
            Err(CodecError::BadField("coverage per-mille"))
        );
        // A selected-count field claiming half the maximum payload.
        let count_off = HEADER_BYTES + 20;
        let mut bad = bytes.clone();
        bad[count_off..count_off + 4].copy_from_slice(&(MAX_PAYLOAD / 2 + 1).to_le_bytes());
        assert!(matches!(decode(&bad), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn oversize_name_and_bad_flags_rejected() {
        // A Hello whose name-length field claims more than MAX_NAME.
        let mut bytes = encode(&Frame::Hello {
            device: "x".to_string(),
            nonce: [0; 16],
            resume_from: 0,
            mac: [0; 16],
        });
        bytes[HEADER_BYTES..HEADER_BYTES + 2].copy_from_slice(&(MAX_NAME as u16 + 1).to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Oversize(_))));

        // Non-UTF-8 name bytes.
        let mut bytes = encode(&Frame::Enroll {
            device: "ab".to_string(),
        });
        bytes[HEADER_BYTES + 2] = 0xFF;
        bytes[HEADER_BYTES + 3] = 0xFE;
        assert_eq!(decode(&bytes), Err(CodecError::BadField("device name")));

        // Heartbeat echo flag outside {0, 1}.
        let mut bytes = encode(&Frame::Heartbeat { seq: 1, echo: true });
        bytes[HEADER_BYTES + 8] = 7;
        assert_eq!(
            decode(&bytes),
            Err(CodecError::BadField("heartbeat echo flag"))
        );
    }

    #[test]
    fn bad_magic_version_kind_rejected() {
        let mut bytes = encode(&Frame::Sake(SakeMessage::Challenge { v2: [0; 32] }));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(CodecError::BadMagic(_))));
        let mut bad = bytes.clone();
        bad[2] = 9;
        assert_eq!(decode(&bad), Err(CodecError::BadVersion(9)));
        bytes[3] = 0x7F;
        assert_eq!(decode(&bytes), Err(CodecError::BadKind(0x7F)));
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let bytes = encode(&Frame::Response {
            round: 1,
            checksum: [0; 8],
            measured_cycles: 2,
        });
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode(&long), Err(CodecError::Trailing(1)));
    }

    #[test]
    fn oversize_length_fields_rejected_before_allocation() {
        // A DeviceReveal1 whose inner k-length claims 256 MiB.
        let mut bytes = encode(&Frame::Sake(SakeMessage::DeviceReveal1 {
            w1: [0; 32],
            k: vec![1, 2, 3, 4],
            mac_k: [0; 16],
        }));
        let klen_off = HEADER_BYTES + 32;
        bytes[klen_off..klen_off + 4].copy_from_slice(&(256u32 << 20).to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn bad_confidential_flag_rejected() {
        let mut bytes = encode(&Frame::Channel(Wire {
            seq: 0,
            addr: 0,
            body: vec![],
            confidential: false,
            mac: [0; 16],
        }));
        bytes[HEADER_BYTES + 12] = 2;
        assert_eq!(
            decode(&bytes),
            Err(CodecError::BadField("confidential flag"))
        );
    }
}
