//! The transport abstraction and its deterministic in-process
//! implementation.
//!
//! The control plane never talks to a device directly: every byte crosses
//! a [`Transport`], so the same service loop can later be bound to a real
//! socket. The in-tree implementation, [`SimNet`], is a virtual-clock
//! message switch with *seeded* latency, jitter, drop and duplication —
//! the whole fleet simulation is reproducible from one `u64` seed, which
//! is what lets the integration tests assert exact lifecycle outcomes
//! across fault injection.

use std::collections::{BTreeMap, VecDeque};

use crate::wheel::TimerWheel;

/// A node address on the control-plane network. The verifier is
/// conventionally node 0; devices get ascending ids as they join.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct NodeId(pub u16);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An addressed, encoded frame in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Encoded frame bytes (see [`crate::wire`]).
    pub bytes: Vec<u8>,
}

/// A connection-lifecycle notification from a transport that has real
/// links to lose. The service folds these into trust policy — a flapping
/// link degrades a device without touching its attestation record,
/// because a severed cable must never look like a cheating GPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkEvent {
    /// The link to `node` went down (read error, heartbeat budget
    /// exhausted, or an orderly close).
    Down(NodeId),
    /// The device on `node` re-authenticated against its existing SAKE
    /// session and the link is live again.
    Resumed(NodeId),
}

/// A message transport driven by the service's virtual clock.
pub trait Transport {
    /// Hands an envelope to the network at virtual time `now` (a future
    /// `now` models a sender that finishes composing the message later,
    /// e.g. a device still running its checksum).
    fn send(&mut self, now: u64, env: Envelope);

    /// Takes the next envelope that has arrived at `node` by time `now`,
    /// in arrival order.
    fn poll(&mut self, now: u64, node: NodeId) -> Option<Envelope>;

    /// The earliest virtual time at which new work exists: a queued
    /// arrival, or an already-delivered envelope waiting in an inbox.
    fn next_event_at(&self) -> Option<u64>;

    /// Removes and returns *every* envelope that has arrived anywhere
    /// on the network by `now`, in delivery order (ties broken by send
    /// order), ahead of any envelopes already sitting in per-node
    /// inboxes (returned first, in node order). This is the batched
    /// path the sharded service loop uses: one drain per tick instead
    /// of one `poll` per device, so delivery cost is O(due frames)
    /// rather than O(fleet).
    fn drain_due(&mut self, now: u64) -> Vec<Envelope>;

    /// Drains pending connection-lifecycle events. The default covers
    /// transports whose links cannot flap ([`SimNet`]); real socket
    /// transports override it.
    fn take_link_events(&mut self) -> Vec<LinkEvent> {
        Vec::new()
    }
}

/// SplitMix64 — the crate's only randomness source, seeded and
/// deterministic.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n = 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli draw with probability `pm`/1000.
    pub fn per_mille(&mut self, pm: u16) -> bool {
        self.below(1000) < pm as u64
    }
}

/// Per-link delivery characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkProfile {
    /// Base one-way latency in virtual ticks.
    pub latency: u64,
    /// Uniform jitter added on top (`0..=jitter`).
    pub jitter: u64,
    /// Probability (per mille) that a frame is silently dropped.
    pub drop_per_mille: u16,
    /// Probability (per mille) that a frame is delivered twice.
    pub dup_per_mille: u16,
}

impl Default for LinkProfile {
    fn default() -> LinkProfile {
        LinkProfile {
            latency: 100,
            jitter: 25,
            drop_per_mille: 0,
            dup_per_mille: 0,
        }
    }
}

impl LinkProfile {
    /// The worst-case one-way delay this profile can produce (absent
    /// targeted faults) — what a deadline budget must cover.
    pub fn worst_case_delay(&self) -> u64 {
        self.latency + self.jitter
    }
}

/// A targeted, deterministic fault on one directed link — the scripted
/// counterpart to the profile's random loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Drop the next `remaining` frames sent from `src` to `dst`.
    DropNext {
        /// Sending node to match.
        src: NodeId,
        /// Destination node to match.
        dst: NodeId,
        /// How many frames to drop.
        remaining: u32,
    },
    /// Delay the next `remaining` frames from `src` to `dst` by `extra`
    /// ticks beyond the profile's latency.
    DelayNext {
        /// Sending node to match.
        src: NodeId,
        /// Destination node to match.
        dst: NodeId,
        /// Extra delay in ticks.
        extra: u64,
        /// How many frames to delay.
        remaining: u32,
    },
    /// A *recurring* outage on one directed link: from `start` until
    /// `until`, the link misbehaves during the first `open_for` ticks of
    /// every `period`-tick cycle. Frames sent inside an open window are
    /// dropped when `extra` is 0, otherwise delayed by `extra` ticks —
    /// the chaos-engine model of a flapping switch port or a periodic
    /// congestion burst. Build a reproducibly-phased one with
    /// [`Fault::seeded_window`].
    Window {
        /// Sending node to match.
        src: NodeId,
        /// Destination node to match.
        dst: NodeId,
        /// First tick of the first window.
        start: u64,
        /// Cycle length in ticks (clamped to ≥ 1).
        period: u64,
        /// Open (faulty) span at the head of each cycle.
        open_for: u64,
        /// `0` = drop frames in the window; otherwise delay by this much.
        extra: u64,
        /// Tick at which the schedule ends (`u64::MAX` = never).
        until: u64,
    },
}

impl Fault {
    /// A [`Fault::Window`] whose phase (`start` within the first period)
    /// is drawn from `seed`, so chaos campaigns get link outages that
    /// differ per seed but replay bit-for-bit.
    pub fn seeded_window(
        seed: u64,
        src: NodeId,
        dst: NodeId,
        period: u64,
        open_for: u64,
        extra: u64,
        until: u64,
    ) -> Fault {
        let mut rng = SplitMix64::new(seed ^ 0x57A6_E77F_0A11_D00F);
        Fault::Window {
            src,
            dst,
            start: rng.below(period.max(1)),
            period,
            open_for,
            extra,
            until,
        }
    }
}

/// Delivery counters for observability and test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to `send`.
    pub sent: u64,
    /// Frames that reached an inbox (duplicates count).
    pub delivered: u64,
    /// Frames dropped by the random loss profile.
    pub dropped: u64,
    /// Extra copies scheduled by the duplication profile.
    pub duplicated: u64,
    /// Frames dropped by a targeted [`Fault::DropNext`].
    pub fault_dropped: u64,
    /// Frames delayed by a targeted [`Fault::DelayNext`].
    pub fault_delayed: u64,
    /// Frames dropped inside a recurring [`Fault::Window`].
    pub window_dropped: u64,
    /// Frames delayed inside a recurring [`Fault::Window`].
    pub window_delayed: u64,
}

/// The deterministic in-process network.
pub struct SimNet {
    rng: SplitMix64,
    profile: LinkProfile,
    link_overrides: BTreeMap<(NodeId, NodeId), LinkProfile>,
    // A hierarchical timer wheel ordered by (delivery time, submission
    // sequence): pop order IS the delivery order, so ties break
    // deterministically — bit-identical to the `BTreeMap<(at, seq), _>`
    // it replaced, without the per-frame ordered-map cost.
    in_flight: TimerWheel<Envelope>,
    inboxes: BTreeMap<NodeId, VecDeque<Envelope>>,
    /// Total envelopes sitting in `inboxes`, so the per-step hot paths
    /// (`next_event_at`, `drain_due`) answer "any pending?" in O(1)
    /// instead of walking a fleet-sized map of mostly-empty queues.
    inbox_pending: usize,
    faults: Vec<Fault>,
    stats: NetStats,
    /// Scratch for wheel pops, reused across calls.
    due_scratch: Vec<(u64, Envelope)>,
}

impl SimNet {
    /// Creates a network with one default profile for every link.
    pub fn new(seed: u64, profile: LinkProfile) -> SimNet {
        SimNet {
            rng: SplitMix64::new(seed),
            profile,
            link_overrides: BTreeMap::new(),
            in_flight: TimerWheel::new(),
            inboxes: BTreeMap::new(),
            inbox_pending: 0,
            faults: Vec::new(),
            stats: NetStats::default(),
            due_scratch: Vec::new(),
        }
    }

    /// Overrides the profile of one directed link.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, profile: LinkProfile) {
        self.link_overrides.insert((src, dst), profile);
    }

    /// The profile a `src → dst` frame would use.
    pub fn profile_for(&self, src: NodeId, dst: NodeId) -> LinkProfile {
        *self
            .link_overrides
            .get(&(src, dst))
            .unwrap_or(&self.profile)
    }

    /// Arms a targeted fault.
    pub fn inject(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn take_drop_fault(&mut self, src: NodeId, dst: NodeId) -> bool {
        for f in &mut self.faults {
            if let Fault::DropNext {
                src: s,
                dst: d,
                remaining,
            } = f
            {
                if *s == src && *d == dst && *remaining > 0 {
                    *remaining -= 1;
                    return true;
                }
            }
        }
        false
    }

    fn take_delay_fault(&mut self, src: NodeId, dst: NodeId) -> u64 {
        for f in &mut self.faults {
            if let Fault::DelayNext {
                src: s,
                dst: d,
                extra,
                remaining,
            } = f
            {
                if *s == src && *d == dst && *remaining > 0 {
                    *remaining -= 1;
                    return *extra;
                }
            }
        }
        0
    }

    /// The window fault (if any) open on `src → dst` at `now`:
    /// `Some(0)` = drop, `Some(extra)` = delay.
    fn window_fault(&self, now: u64, src: NodeId, dst: NodeId) -> Option<u64> {
        for f in &self.faults {
            if let Fault::Window {
                src: s,
                dst: d,
                start,
                period,
                open_for,
                extra,
                until,
            } = f
            {
                if *s == src
                    && *d == dst
                    && now >= *start
                    && now < *until
                    && (now - *start) % (*period).max(1) < *open_for
                {
                    return Some(*extra);
                }
            }
        }
        None
    }

    fn enqueue(&mut self, at: u64, env: Envelope) {
        self.in_flight.insert(at, env);
    }

    fn deliver_due(&mut self, now: u64) {
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.in_flight.pop_due(now, &mut due);
        for (_, env) in due.drain(..) {
            self.stats.delivered += 1;
            self.inbox_pending += 1;
            self.inboxes.entry(env.dst).or_default().push_back(env);
        }
        self.due_scratch = due;
    }
}

impl Transport for SimNet {
    fn send(&mut self, now: u64, env: Envelope) {
        self.stats.sent += 1;
        if self.take_drop_fault(env.src, env.dst) {
            self.stats.fault_dropped += 1;
            return;
        }
        let mut extra = self.take_delay_fault(env.src, env.dst);
        if extra > 0 {
            self.stats.fault_delayed += 1;
        }
        match self.window_fault(now, env.src, env.dst) {
            Some(0) => {
                self.stats.window_dropped += 1;
                return;
            }
            Some(wx) => {
                self.stats.window_delayed += 1;
                extra += wx;
            }
            None => {}
        }
        let profile = self.profile_for(env.src, env.dst);
        if self.rng.per_mille(profile.drop_per_mille) {
            self.stats.dropped += 1;
            return;
        }
        let at = now + extra + profile.latency + self.rng.below(profile.jitter + 1);
        if self.rng.per_mille(profile.dup_per_mille) {
            self.stats.duplicated += 1;
            let dup_at = at + 1 + self.rng.below(profile.jitter + 1);
            self.enqueue(dup_at, env.clone());
        }
        self.enqueue(at, env);
    }

    fn poll(&mut self, now: u64, node: NodeId) -> Option<Envelope> {
        self.deliver_due(now);
        let env = self.inboxes.get_mut(&node)?.pop_front();
        if env.is_some() {
            self.inbox_pending -= 1;
        }
        env
    }

    fn next_event_at(&self) -> Option<u64> {
        if self.inbox_pending > 0 {
            return Some(0); // pending work is immediate
        }
        self.in_flight.next_due()
    }

    fn drain_due(&mut self, now: u64) -> Vec<Envelope> {
        // Leftovers from earlier `poll` use come first, in node order
        // (the order a poll loop over the roster would see them). The
        // walk is skipped entirely on the hot path, where the batched
        // loop never leaves envelopes behind.
        let mut out: Vec<Envelope> = Vec::new();
        if self.inbox_pending > 0 {
            for q in self.inboxes.values_mut() {
                out.extend(q.drain(..));
            }
            self.inbox_pending = 0;
        }
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.in_flight.pop_due(now, &mut due);
        self.stats.delivered += due.len() as u64;
        out.extend(due.drain(..).map(|(_, env)| env));
        self.due_scratch = due;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u16, dst: u16, tag: u8) -> Envelope {
        Envelope {
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: vec![tag],
        }
    }

    fn drain(net: &mut SimNet, now: u64, node: NodeId) -> Vec<u8> {
        let mut tags = Vec::new();
        while let Some(e) = net.poll(now, node) {
            tags.push(e.bytes[0]);
        }
        tags
    }

    #[test]
    fn delivery_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = SimNet::new(
                seed,
                LinkProfile {
                    jitter: 50,
                    ..LinkProfile::default()
                },
            );
            for tag in 0..10u8 {
                net.send(u64::from(tag), env(1, 2, tag));
            }
            drain(&mut net, 10_000, NodeId(2))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should reorder");
    }

    #[test]
    fn frames_arrive_in_latency_order() {
        let mut net = SimNet::new(
            1,
            LinkProfile {
                latency: 10,
                jitter: 0,
                ..LinkProfile::default()
            },
        );
        net.send(0, env(1, 2, 0));
        net.send(5, env(1, 2, 1));
        assert_eq!(net.next_event_at(), Some(10));
        assert!(net.poll(9, NodeId(2)).is_none());
        assert_eq!(drain(&mut net, 15, NodeId(2)), vec![0, 1]);
    }

    #[test]
    fn random_drop_and_duplication_follow_profile() {
        let mut net = SimNet::new(
            3,
            LinkProfile {
                latency: 1,
                jitter: 0,
                drop_per_mille: 500,
                dup_per_mille: 0,
            },
        );
        for i in 0..1000u64 {
            net.send(i, env(1, 2, 0));
        }
        let got = drain(&mut net, 1_000_000, NodeId(2)).len();
        assert!((300..700).contains(&got), "~half should survive, got {got}");

        let mut net = SimNet::new(
            4,
            LinkProfile {
                latency: 1,
                jitter: 0,
                drop_per_mille: 0,
                dup_per_mille: 1000,
            },
        );
        net.send(0, env(1, 2, 9));
        assert_eq!(drain(&mut net, 1_000, NodeId(2)), vec![9, 9]);
    }

    #[test]
    fn recurring_window_drops_only_inside_open_spans() {
        let mut net = SimNet::new(
            9,
            LinkProfile {
                latency: 1,
                jitter: 0,
                drop_per_mille: 0,
                dup_per_mille: 0,
            },
        );
        // Open for the first 10 ticks of every 100, from t=100 to t=350:
        // windows are [100,110), [200,210), [300,310).
        net.inject(Fault::Window {
            src: NodeId(1),
            dst: NodeId(2),
            start: 100,
            period: 100,
            open_for: 10,
            extra: 0,
            until: 350,
        });
        for t in [0u64, 99, 105, 150, 200, 209, 210, 305, 399, 405] {
            net.send(t, env(1, 2, (t / 10) as u8));
            net.send(t, env(3, 2, 200)); // other link: never affected
        }
        let got = drain(&mut net, 10_000, NodeId(2));
        let from_link1: Vec<u8> = got.iter().copied().filter(|&t| t != 200).collect();
        // 105, 200, 209 and 305 fall inside open windows; 399/405 are
        // past `until` even though 405 would be inside a window.
        assert_eq!(from_link1, vec![0, 9, 15, 21, 39, 40]);
        assert_eq!(got.iter().filter(|&&t| t == 200).count(), 10);
        assert_eq!(net.stats().window_dropped, 4);
    }

    #[test]
    fn delay_window_postpones_instead_of_dropping() {
        let mut net = SimNet::new(
            10,
            LinkProfile {
                latency: 1,
                jitter: 0,
                drop_per_mille: 0,
                dup_per_mille: 0,
            },
        );
        net.inject(Fault::Window {
            src: NodeId(1),
            dst: NodeId(2),
            start: 0,
            period: 50,
            open_for: 5,
            extra: 1_000,
            until: u64::MAX,
        });
        net.send(2, env(1, 2, 7)); // inside window: arrives at 2+1000+1
        net.send(20, env(1, 2, 8)); // outside: arrives at 21
        assert_eq!(drain(&mut net, 900, NodeId(2)), vec![8]);
        assert_eq!(drain(&mut net, 1_003, NodeId(2)), vec![7]);
        assert_eq!(net.stats().window_delayed, 1);
        assert_eq!(net.stats().window_dropped, 0);
    }

    #[test]
    fn seeded_window_is_reproducible_and_phase_varies() {
        let w = |seed| Fault::seeded_window(seed, NodeId(0), NodeId(1), 1_000, 50, 0, u64::MAX);
        assert_eq!(w(1), w(1));
        let phases: Vec<u64> = (0..16)
            .map(|s| match w(s) {
                Fault::Window { start, .. } => start,
                _ => unreachable!(),
            })
            .collect();
        assert!(phases.iter().all(|&p| p < 1_000));
        assert!(
            phases.windows(2).any(|p| p[0] != p[1]),
            "all 16 seeds produced the same phase"
        );
    }

    #[test]
    fn targeted_faults_hit_only_their_link() {
        let mut net = SimNet::new(5, LinkProfile::default());
        net.inject(Fault::DropNext {
            src: NodeId(1),
            dst: NodeId(2),
            remaining: 1,
        });
        net.inject(Fault::DelayNext {
            src: NodeId(3),
            dst: NodeId(2),
            extra: 10_000,
            remaining: 1,
        });
        net.send(0, env(1, 2, 0)); // dropped by fault
        net.send(0, env(1, 2, 1)); // unaffected
        net.send(0, env(3, 2, 2)); // delayed by fault
        assert_eq!(drain(&mut net, 500, NodeId(2)), vec![1]);
        assert_eq!(drain(&mut net, 20_000, NodeId(2)), vec![2]);
        let stats = net.stats();
        assert_eq!(stats.fault_dropped, 1);
        assert_eq!(stats.fault_delayed, 1);
    }
}
