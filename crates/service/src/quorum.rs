//! Verifier quorums: N independent verifier replicas voting on every
//! attestation verdict, with a ⌈2N/3⌉ acceptance rule.
//!
//! A single verifier is a single point of compromise — an attacker who
//! owns it can false-accept a cheating GPU or false-reject an honest
//! one and the evidence chain will faithfully record the lie. SAGE's
//! trust argument survives that only if acceptance requires *agreement*
//! among verifiers that don't share fate. This module models a
//! [`VerifierSet`] of N replicas; each holds its own vote-MAC key
//! (the stand-in for its independent SAKE session), its own rolling
//! evidence-view digest, and its own — possibly Byzantine — voting
//! behavior. Every verdict the in-process verifier reaches is put to a
//! vote: each replica's ballot crosses the real wire codec as a
//! [`crate::Frame::QuorumVote`] (encode → decode → MAC verify), then
//! the tally is compared against [`quorum_threshold`].
//!
//! # Why a unanimous honest quorum is silent
//!
//! The determinism contract says any `(verifiers, shards, workers)`
//! geometry must yield byte-identical evidence heads against the
//! single-verifier baseline when the quorum is honest. So agreement
//! appends nothing: no events, no evidence, only counters inside the
//! set itself. Disagreement is what gets recorded — a
//! `QuorumDisputed` event, a `VerifierSuspected` flag per dissenting
//! replica, and one [`sage_evidence::EvidencePayload::QuorumVote`]
//! record per dissent sealed into the device's chain.
//!
//! # Why a lying verifier cannot cause a false accept
//!
//! The lifecycle decision is gated on the *local* (in-process, honest
//! by construction) verdict; the quorum can only confirm it or flag
//! dissent. Byzantine replicas below ⌈N/3⌉ therefore reduce to noise
//! in the dissent ledger — they can never flip an outcome, only mark
//! themselves suspect. This mirrors the classic BFT bound: with
//! `f < N/3` faulty voters, ⌈2N/3⌉ matching ballots always exist for
//! the honest verdict and never for a minority lie.
//!
//! # The relay detector
//!
//! §7.2's timing threshold bounds *compute* time; it cannot see a
//! proxy that forwards the challenge to a faster GPU and relays the
//! answer back, because the stolen compute headroom hides the extra
//! hops. Topology evidence can: a relayed checksum pays **two** link
//! round trips, so its wire share — wall-clock elapsed minus the
//! device-reported measured cycles — exceeds what the calibrated
//! direct link can produce. [`relay_wire_excess`] is that check.

use sage_crypto::cmac::{cmac_aes128, cmac_verify};
use sage_crypto::Sha256;
use sage_evidence::StageVerdict;

use crate::wire::{self, Frame};

/// Quorum knobs, embedded in [`crate::ServiceConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Number of verifier replicas. `1` (the default) disables the
    /// quorum entirely — the historical single-verifier behavior.
    pub verifiers: u16,
    /// Key-derivation seed for the replicas' vote-MAC keys. Replica
    /// `i`'s key is `CMAC(base(seed), i)` — each replica signs with
    /// independent material, as separate SAKE sessions would provide.
    pub seed: u64,
}

impl Default for QuorumConfig {
    fn default() -> QuorumConfig {
        QuorumConfig {
            verifiers: 1,
            seed: 0,
        }
    }
}

impl QuorumConfig {
    /// Whether a quorum is in force (`verifiers > 1`).
    pub fn is_active(&self) -> bool {
        self.verifiers > 1
    }
}

/// The acceptance threshold: `⌈2N/3⌉` matching ballots.
pub fn quorum_threshold(n: u16) -> u16 {
    ((2 * u32::from(n)).div_ceil(3)) as u16
}

/// How a replica votes relative to the honest local verdict. Everything
/// but `Honest` models a compromised or faulty verifier for the attack
/// matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifierBehavior {
    /// Votes the local verdict.
    Honest,
    /// Votes `Pass` unconditionally — tries to launder a cheater.
    FalseAccept,
    /// Votes `WrongValue` unconditionally — tries to frame honest
    /// devices.
    FalseReject,
    /// Votes the opposite of the local verdict (`Pass` ↔ `WrongValue`).
    Invert,
    /// Votes honestly but signs with corrupted key material, so every
    /// ballot fails MAC verification on arrival.
    BadMac,
}

impl VerifierBehavior {
    /// Stable snapshot tag.
    pub fn tag(&self) -> u8 {
        match self {
            VerifierBehavior::Honest => 0,
            VerifierBehavior::FalseAccept => 1,
            VerifierBehavior::FalseReject => 2,
            VerifierBehavior::Invert => 3,
            VerifierBehavior::BadMac => 4,
        }
    }

    /// Decodes a snapshot tag.
    pub fn from_tag(tag: u8) -> Option<VerifierBehavior> {
        Some(match tag {
            0 => VerifierBehavior::Honest,
            1 => VerifierBehavior::FalseAccept,
            2 => VerifierBehavior::FalseReject,
            3 => VerifierBehavior::Invert,
            4 => VerifierBehavior::BadMac,
            _ => return None,
        })
    }

    /// The ballot this behavior casts given the honest local verdict.
    fn ballot(&self, local: StageVerdict) -> StageVerdict {
        match self {
            VerifierBehavior::Honest | VerifierBehavior::BadMac => local,
            VerifierBehavior::FalseAccept => StageVerdict::Pass,
            VerifierBehavior::FalseReject => StageVerdict::WrongValue,
            VerifierBehavior::Invert => {
                if local == StageVerdict::Pass {
                    StageVerdict::WrongValue
                } else {
                    StageVerdict::Pass
                }
            }
        }
    }
}

/// One verifier replica's identity and running state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierReplica {
    /// Replica index (stable; used in vote frames and suspect events).
    pub index: u16,
    /// Vote-MAC key — this replica's session stand-in.
    vote_key: [u8; 16],
    /// How this replica votes. `Honest` unless an attack campaign (or
    /// snapshot restore) says otherwise.
    pub behavior: VerifierBehavior,
    /// Whether this replica has ever dissented from a quorum outcome.
    pub suspected: bool,
    /// Total dissenting ballots cast.
    pub dissents: u64,
    /// Rolling evidence-view digest: SHA-256 folded over every ballot
    /// this replica cast. Honest replicas that saw the same rounds
    /// share a view; a liar's view diverges permanently.
    pub view: [u8; 32],
}

/// One round's tallied outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumDecision {
    /// The authoritative verdict (the honest local one — see module
    /// docs for why the quorum cannot override it).
    pub outcome: StageVerdict,
    /// Whether ≥ ⌈2N/3⌉ valid ballots matched the outcome.
    pub confirmed: bool,
    /// Valid `Pass` ballots.
    pub votes_accept: u16,
    /// Valid non-`Pass` ballots.
    pub votes_reject: u16,
    /// Replicas whose ballot differed from the outcome (or failed MAC
    /// verification), with the verdict they are recorded as voting.
    pub dissenters: Vec<(u16, StageVerdict)>,
    /// Replicas whose ballot failed decode or MAC verification.
    pub invalid: Vec<u16>,
    /// Dissenters flagged suspect for the first time this round.
    pub newly_suspected: Vec<u16>,
}

/// N verifier replicas running the same fleet, tallied per verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifierSet {
    replicas: Vec<VerifierReplica>,
    /// Verdicts put to a vote so far.
    pub rounds: u64,
    /// Votes with at least one dissenting or invalid ballot.
    pub disputes: u64,
}

impl VerifierSet {
    /// Builds the set a config asks for; `None` when the quorum is
    /// disabled (`verifiers <= 1`).
    pub fn from_config(cfg: &QuorumConfig) -> Option<VerifierSet> {
        if !cfg.is_active() {
            return None;
        }
        Some(VerifierSet::with_size(cfg.verifiers, cfg.seed))
    }

    /// Builds an N-replica set with keys derived from `seed`.
    pub fn with_size(n: u16, seed: u64) -> VerifierSet {
        let replicas = (0..n)
            .map(|index| VerifierReplica {
                index,
                vote_key: derive_vote_key(seed, index),
                behavior: VerifierBehavior::Honest,
                suspected: false,
                dissents: 0,
                view: [0u8; 32],
            })
            .collect();
        VerifierSet {
            replicas,
            rounds: 0,
            disputes: 0,
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — a set is only constructed with N ≥ 2.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The acceptance threshold for this set.
    pub fn threshold(&self) -> u16 {
        quorum_threshold(self.replicas.len() as u16)
    }

    /// The replicas, for inspection.
    pub fn replicas(&self) -> &[VerifierReplica] {
        &self.replicas
    }

    /// Marks replica `index` Byzantine (or honest again) — the attack
    /// matrix's compromise knob.
    pub fn set_behavior(&mut self, index: usize, behavior: VerifierBehavior) {
        self.replicas[index].behavior = behavior;
    }

    /// Restores one replica's running state from a snapshot.
    pub fn restore_replica(
        &mut self,
        index: usize,
        behavior: VerifierBehavior,
        suspected: bool,
        dissents: u64,
        view: [u8; 32],
    ) {
        let r = &mut self.replicas[index];
        r.behavior = behavior;
        r.suspected = suspected;
        r.dissents = dissents;
        r.view = view;
    }

    /// Whether every replica that voted honestly shares the same
    /// evidence-view digest — liars diverge and stay diverged.
    pub fn honest_views_agree(&self) -> bool {
        let mut honest = self
            .replicas
            .iter()
            .filter(|r| r.behavior == VerifierBehavior::Honest);
        match honest.next() {
            None => true,
            Some(first) => honest.all(|r| r.view == first.view),
        }
    }

    /// Puts one verdict to a vote. Every replica's ballot is encoded as
    /// a [`Frame::QuorumVote`], decoded back through the strict codec,
    /// and MAC-verified against the key the receiver derives for that
    /// index — exactly the path a ballot takes between real endpoints.
    pub fn collect(&mut self, device: &str, round: u64, local: StageVerdict) -> QuorumDecision {
        self.rounds += 1;
        let threshold = self.threshold();
        let mut ballots: Vec<Option<StageVerdict>> = Vec::with_capacity(self.replicas.len());
        for rep in &self.replicas {
            let vote = rep.behavior.ballot(local);
            // A BadMac replica signs with a bit-flipped key; everyone
            // else signs with the real one.
            let mut sign_key = rep.vote_key;
            if rep.behavior == VerifierBehavior::BadMac {
                sign_key[0] ^= 0x80;
            }
            let mac = sign_vote(&sign_key, rep.index, device, round, vote);
            let bytes = wire::encode(&Frame::QuorumVote {
                verifier: rep.index,
                device: device.to_string(),
                round,
                vote,
                mac,
            });
            ballots.push(match wire::decode(&bytes) {
                Ok(Frame::QuorumVote {
                    verifier,
                    device: dev,
                    round: r,
                    vote: v,
                    mac: m,
                }) if verifier == rep.index
                    && cmac_verify(&rep.vote_key, &vote_message(verifier, &dev, r, v), &m) =>
                {
                    Some(v)
                }
                _ => None,
            });
        }
        let votes_accept = ballots
            .iter()
            .filter(|b| **b == Some(StageVerdict::Pass))
            .count() as u16;
        let votes_reject = ballots
            .iter()
            .filter(|b| b.is_some() && **b != Some(StageVerdict::Pass))
            .count() as u16;
        let matching = ballots.iter().filter(|b| **b == Some(local)).count() as u16;
        let confirmed = matching >= threshold;
        let mut dissenters = Vec::new();
        let mut invalid = Vec::new();
        let mut newly_suspected = Vec::new();
        for (rep, ballot) in self.replicas.iter_mut().zip(&ballots) {
            // Fold the replica's own ballot into its view digest; an
            // invalid ballot folds a distinct marker.
            let cast = rep.behavior.ballot(local);
            let mut h = Sha256::new();
            h.update(&rep.view);
            h.update(device.as_bytes());
            h.update(&round.to_le_bytes());
            h.update(&[match ballot {
                Some(_) => verdict_code(cast),
                None => 0xFF,
            }]);
            rep.view = h.finalize();
            let dissent = *ballot != Some(local);
            if dissent {
                rep.dissents += 1;
                if !rep.suspected {
                    rep.suspected = true;
                    newly_suspected.push(rep.index);
                }
                dissenters.push((rep.index, ballot.unwrap_or(cast)));
            }
            if ballot.is_none() {
                invalid.push(rep.index);
            }
        }
        if !dissenters.is_empty() {
            self.disputes += 1;
        }
        QuorumDecision {
            outcome: local,
            confirmed,
            votes_accept,
            votes_reject,
            dissenters,
            invalid,
            newly_suspected,
        }
    }
}

/// Derives replica `index`'s vote-MAC key from the quorum seed.
fn derive_vote_key(seed: u64, index: u16) -> [u8; 16] {
    let mut base = [0u8; 16];
    base[..8].copy_from_slice(&seed.to_le_bytes());
    base[8..10].copy_from_slice(b"qv");
    let mut msg = [0u8; 10];
    msg[..8].copy_from_slice(b"sage-qkd");
    msg[8..].copy_from_slice(&index.to_le_bytes());
    cmac_aes128(&base, &msg)
}

/// Stable verdict code used in the vote MAC message and view digest.
fn verdict_code(v: StageVerdict) -> u8 {
    match v {
        StageVerdict::Pass => 0,
        StageVerdict::WrongValue => 1,
        StageVerdict::TooSlow => 2,
        StageVerdict::Timeout => 3,
    }
}

/// The byte string a vote MAC covers: domain tag, verifier index,
/// device name (length-prefixed), round, verdict code.
fn vote_message(verifier: u16, device: &str, round: u64, vote: StageVerdict) -> Vec<u8> {
    let mut msg = Vec::with_capacity(16 + 2 + 2 + device.len() + 8 + 1);
    msg.extend_from_slice(b"sage-quorum-vote");
    msg.extend_from_slice(&verifier.to_le_bytes());
    msg.extend_from_slice(&(device.len() as u16).to_le_bytes());
    msg.extend_from_slice(device.as_bytes());
    msg.extend_from_slice(&round.to_le_bytes());
    msg.push(verdict_code(vote));
    msg
}

/// Signs one ballot.
fn sign_vote(
    key: &[u8; 16],
    verifier: u16,
    device: &str,
    round: u64,
    vote: StageVerdict,
) -> [u8; 16] {
    cmac_aes128(key, &vote_message(verifier, device, round, vote))
}

/// The relay/topology check: how far the response's wire share exceeds
/// the calibrated gate, or `None` when the topology looks direct (or
/// the gate is disabled with `rtt_gate == 0`).
///
/// `wall_elapsed` is verifier wall clock from challenge dispatch to
/// response arrival; `measured_cycles` is the device-reported compute
/// time the §7.2 threshold already vets. Their difference is time spent
/// *on the wire* — a direct link pays one round trip, a relay pays at
/// least two, and no amount of stolen compute headroom on a faster GPU
/// can hide the extra hop.
pub fn relay_wire_excess(measured_cycles: u64, wall_elapsed: u64, rtt_gate: u64) -> Option<u64> {
    if rtt_gate == 0 {
        return None;
    }
    let wire = wall_elapsed.saturating_sub(measured_cycles);
    if wire > rtt_gate {
        Some(wire - rtt_gate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_two_thirds_ceiling() {
        for (n, want) in [
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (5, 4),
            (6, 4),
            (7, 5),
            (9, 6),
        ] {
            assert_eq!(quorum_threshold(n), want, "n={n}");
        }
    }

    #[test]
    fn honest_unanimous_vote_confirms_silently() {
        let mut set = VerifierSet::with_size(5, 42);
        let d = set.collect("gpu-00", 3, StageVerdict::Pass);
        assert!(d.confirmed);
        assert_eq!((d.votes_accept, d.votes_reject), (5, 0));
        assert!(d.dissenters.is_empty() && d.invalid.is_empty());
        assert_eq!(set.rounds, 1);
        assert_eq!(set.disputes, 0);
        assert!(set.honest_views_agree());
    }

    #[test]
    fn one_liar_dissents_but_cannot_flip() {
        let mut set = VerifierSet::with_size(4, 7);
        set.set_behavior(2, VerifierBehavior::FalseReject);
        let d = set.collect("gpu-01", 1, StageVerdict::Pass);
        assert!(d.confirmed, "3 of 4 honest ballots meet ⌈8/3⌉ = 3");
        assert_eq!((d.votes_accept, d.votes_reject), (3, 1));
        assert_eq!(d.dissenters, vec![(2, StageVerdict::WrongValue)]);
        assert_eq!(d.newly_suspected, vec![2]);
        assert_eq!(set.disputes, 1);
        assert!(set.replicas()[2].suspected);
        // Second dissent: still suspect, not newly so.
        let d2 = set.collect("gpu-01", 2, StageVerdict::Pass);
        assert!(d2.newly_suspected.is_empty());
        assert_eq!(set.replicas()[2].dissents, 2);
        // Honest replicas still share a view; the liar folded different
        // ballots and diverged permanently.
        assert!(set.honest_views_agree());
        assert_ne!(set.replicas()[2].view, set.replicas()[0].view);
    }

    #[test]
    fn colluding_minority_below_third_cannot_break_quorum() {
        // N = 7: ⌈7/3⌉ − 1 = 2 colluders, threshold ⌈14/3⌉ = 5, five
        // honest ballots remain — the quorum still confirms the truth,
        // for accepts and rejects alike.
        let mut set = VerifierSet::with_size(7, 9);
        set.set_behavior(1, VerifierBehavior::Invert);
        set.set_behavior(4, VerifierBehavior::Invert);
        let pass = set.collect("gpu-02", 1, StageVerdict::Pass);
        assert!(pass.confirmed);
        assert_eq!((pass.votes_accept, pass.votes_reject), (5, 2));
        let reject = set.collect("gpu-02", 2, StageVerdict::WrongValue);
        assert!(reject.confirmed);
        assert_eq!((reject.votes_accept, reject.votes_reject), (2, 5));
        assert_eq!(
            reject.dissenters,
            vec![(1, StageVerdict::Pass), (4, StageVerdict::Pass)]
        );
    }

    #[test]
    fn bad_mac_ballot_is_invalid_and_suspect() {
        let mut set = VerifierSet::with_size(3, 1);
        set.set_behavior(0, VerifierBehavior::BadMac);
        let d = set.collect("gpu-03", 1, StageVerdict::Pass);
        assert!(d.confirmed, "2 of 3 meet ⌈6/3⌉ = 2");
        assert_eq!(d.invalid, vec![0]);
        assert_eq!((d.votes_accept, d.votes_reject), (2, 0));
        assert_eq!(d.dissenters, vec![(0, StageVerdict::Pass)]);
        assert!(set.replicas()[0].suspected);
    }

    #[test]
    fn liars_views_diverge_from_honest_views() {
        let mut set = VerifierSet::with_size(4, 3);
        set.set_behavior(3, VerifierBehavior::FalseAccept);
        for round in 1..=5 {
            set.collect("gpu-04", round, StageVerdict::WrongValue);
        }
        let views: Vec<[u8; 32]> = set.replicas().iter().map(|r| r.view).collect();
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
        assert_ne!(views[2], views[3], "the liar's view must diverge");
        assert!(set.honest_views_agree());
    }

    #[test]
    fn replica_keys_are_distinct_and_seed_sensitive() {
        let a = VerifierSet::with_size(3, 5);
        let b = VerifierSet::with_size(3, 6);
        assert_ne!(a.replicas()[0].vote_key, a.replicas()[1].vote_key);
        assert_ne!(a.replicas()[0].vote_key, b.replicas()[0].vote_key);
        // Same seed rebuilds the same keys — the snapshot-restore path.
        let c = VerifierSet::with_size(3, 5);
        assert_eq!(a.replicas()[0].vote_key, c.replicas()[0].vote_key);
    }

    #[test]
    fn relay_detector_flags_only_excess_wire_time() {
        // Direct link: 80 ticks of wire against a 120 gate — clean.
        assert_eq!(relay_wire_excess(10_000, 10_080, 120), None);
        // Relay: two hops cost 180 ticks of wire — 60 over the gate,
        // even though the proxied GPU's compute time looks fine.
        assert_eq!(relay_wire_excess(10_000, 10_180, 120), Some(60));
        // Gate 0 disables the check entirely.
        assert_eq!(relay_wire_excess(10_000, 99_999, 0), None);
    }

    #[test]
    fn from_config_gates_on_verifier_count() {
        assert!(VerifierSet::from_config(&QuorumConfig::default()).is_none());
        let cfg = QuorumConfig {
            verifiers: 3,
            seed: 11,
        };
        assert_eq!(VerifierSet::from_config(&cfg).unwrap().len(), 3);
    }
}
