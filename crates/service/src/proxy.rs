//! A seeded in-path chaos relay for torturing the socket transport.
//!
//! [`ChaosProxy`] sits between devices and the verifier listener and
//! relays raw bytes while misbehaving on a deterministic schedule:
//! it **splits** writes at arbitrary byte boundaries (torn length
//! prefixes, interleaved partial frames), **delays** and **throttles**
//! chunks, **duplicates** or **drops** raw byte runs (which desyncs the
//! length-prefixed stream — the framing layer must answer with a typed
//! error and a counted disconnect, never a partial-frame accept), and
//! **severs** connections mid-session, either on a per-connection
//! schedule or on demand via [`ChaosProxy::sever_all`]. Severed clients
//! are expected to reconnect through the proxy and resume their
//! session; the proxy keeps accepting forever.
//!
//! Everything is seeded: one `u64` fixes each connection's fault
//! schedule, so a chaos run replays bit-for-bit.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::net::SplitMix64;
use crate::tcp::{connect, Bind, Conn};

/// One connection's misbehaviour profile. [`ChaosProfile::default`] is
/// a clean relay; each knob adds one failure mode.
#[derive(Clone, Debug)]
pub struct ChaosProfile {
    /// Seed for every random decision below.
    pub seed: u64,
    /// Maximum bytes forwarded per write: chunks are re-split into
    /// `1..=max_split` byte pieces, so frames arrive torn at arbitrary
    /// boundaries. `0` forwards whole reads.
    pub max_split: usize,
    /// Maximum random per-chunk delay in microseconds (throttling).
    pub delay_us_max: u64,
    /// Probability (per mille) that a forwarded chunk is written twice
    /// — raw stream corruption the framing layer must reject.
    pub dup_per_mille: u16,
    /// Probability (per mille) that a forwarded chunk is silently
    /// dropped — desyncs the stream mid-frame.
    pub drop_per_mille: u16,
    /// Sever each connection after relaying this many chunks in either
    /// direction (`None` = never). The client is expected to reconnect
    /// through the proxy.
    pub sever_after_chunks: Option<u64>,
}

impl Default for ChaosProfile {
    fn default() -> ChaosProfile {
        ChaosProfile {
            seed: 0x000C_4A05,
            max_split: 0,
            delay_us_max: 0,
            dup_per_mille: 0,
            drop_per_mille: 0,
            sever_after_chunks: None,
        }
    }
}

impl ChaosProfile {
    /// A regime that tears every frame into tiny interleaved pieces
    /// with small random delays, without corrupting or severing.
    pub fn torn(seed: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            max_split: 7,
            delay_us_max: 500,
            ..ChaosProfile::default()
        }
    }

    /// A regime that severs every connection after a few dozen relayed
    /// chunks, forcing repeated session resumes.
    pub fn severing(seed: u64, after_chunks: u64) -> ChaosProfile {
        ChaosProfile {
            seed,
            max_split: 16,
            sever_after_chunks: Some(after_chunks),
            ..ChaosProfile::default()
        }
    }
}

/// Relay counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted from clients.
    pub conns: u64,
    /// Raw bytes relayed (both directions).
    pub bytes: u64,
    /// Connections severed (schedule or [`ChaosProxy::sever_all`]).
    pub severed: u64,
    /// Chunks dropped by `drop_per_mille`.
    pub dropped_chunks: u64,
    /// Chunks duplicated by `dup_per_mille`.
    pub duplicated_chunks: u64,
}

#[derive(Default)]
struct AtomicProxyStats {
    conns: AtomicU64,
    bytes: AtomicU64,
    severed: AtomicU64,
    dropped_chunks: AtomicU64,
    duplicated_chunks: AtomicU64,
}

struct Shared {
    stats: AtomicProxyStats,
    shutdown: AtomicBool,
    /// Live connection pairs (client side, upstream side) for
    /// `sever_all`; severed/finished entries are pruned lazily.
    live: Mutex<Vec<(u64, Arc<ConnPair>)>>,
}

struct ConnPair {
    client: Conn,
    upstream: Conn,
    severed: AtomicBool,
}

impl ConnPair {
    fn sever(&self) -> bool {
        if self.severed.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.client.shutdown();
        self.upstream.shutdown();
        true
    }
}

/// The chaos relay. Dropping it shuts the listener and severs
/// everything.
pub struct ChaosProxy {
    shared: Arc<Shared>,
    local_bind: Bind,
}

impl ChaosProxy {
    /// Listens on `listen`, relaying every connection to `upstream`
    /// under `profile`.
    pub fn spawn(listen: Bind, upstream: Bind, profile: ChaosProfile) -> io::Result<ChaosProxy> {
        let listener = Listener::bind(&listen)?;
        let local_bind = listener.local_bind(&listen);
        let shared = Arc::new(Shared {
            stats: AtomicProxyStats::default(),
            shutdown: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, upstream, profile, accept_shared))
            .expect("spawn chaos acceptor");
        Ok(ChaosProxy { shared, local_bind })
    }

    /// The address clients should dial (resolves an ephemeral port).
    pub fn local_bind(&self) -> Bind {
        self.local_bind.clone()
    }

    /// Severs every live relayed connection; returns how many were cut.
    pub fn sever_all(&self) -> usize {
        let mut cut = 0;
        let mut live = self.shared.live.lock().unwrap_or_else(|e| e.into_inner());
        live.retain(|(_, pair)| {
            if pair.sever() {
                cut += 1;
            }
            false
        });
        self.shared
            .stats
            .severed
            .fetch_add(cut as u64, Ordering::Relaxed);
        cut
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProxyStats {
        let s = &self.shared.stats;
        ProxyStats {
            conns: s.conns.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            severed: s.severed.load(Ordering::Relaxed),
            dropped_chunks: s.dropped_chunks.load(Ordering::Relaxed),
            duplicated_chunks: s.duplicated_chunks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.sever_all();
    }
}

// A private re-bind of the listener plumbing (tcp.rs keeps its own
// non-public Listener; duplicating ~20 lines beats exposing it).
enum Listener {
    Tcp(std::net::TcpListener),
    Uds(std::os::unix::net::UnixListener),
}

impl Listener {
    fn bind(b: &Bind) -> io::Result<Listener> {
        match b {
            Bind::Tcp(addr) => Ok(Listener::Tcp(std::net::TcpListener::bind(addr)?)),
            Bind::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(std::os::unix::net::UnixListener::bind(path)?))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }

    fn local_bind(&self, requested: &Bind) -> Bind {
        match (self, requested) {
            (Listener::Tcp(l), _) => match l.local_addr() {
                Ok(a) => Bind::Tcp(a),
                Err(_) => requested.clone(),
            },
            (Listener::Uds(_), b) => b.clone(),
        }
    }
}

fn accept_loop(listener: Listener, upstream: Bind, profile: ChaosProfile, shared: Arc<Shared>) {
    let mut conn_id = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let client = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let up = match connect(&upstream) {
            Ok(c) => c,
            Err(_) => {
                client.shutdown();
                continue;
            }
        };
        conn_id += 1;
        shared.stats.conns.fetch_add(1, Ordering::Relaxed);
        let pair = match (client.try_clone(), up.try_clone()) {
            (Ok(c), Ok(u)) => Arc::new(ConnPair {
                client: c,
                upstream: u,
                severed: AtomicBool::new(false),
            }),
            _ => {
                client.shutdown();
                up.shutdown();
                continue;
            }
        };
        {
            let mut live = shared.live.lock().unwrap_or_else(|e| e.into_inner());
            live.retain(|(_, p)| !p.severed.load(Ordering::Relaxed));
            live.push((conn_id, Arc::clone(&pair)));
        }
        // Each direction's relay has an independent seeded schedule;
        // both share one chunk budget so `sever_after_chunks` counts
        // traffic in either direction.
        let chunk_budget = Arc::new(AtomicU64::new(0));
        spawn_relay(
            client,
            up,
            profile.clone(),
            profile.seed ^ conn_id.wrapping_mul(0x9E37_79B9),
            Arc::clone(&pair),
            Arc::clone(&chunk_budget),
            Arc::clone(&shared),
            "c2s",
        );
        spawn_relay(
            pair.upstream.try_clone().expect("clone upstream"),
            pair.client.try_clone().expect("clone client"),
            profile.clone(),
            profile.seed ^ conn_id.wrapping_mul(0x9E37_79B9) ^ 0xFFFF,
            Arc::clone(&pair),
            chunk_budget,
            Arc::clone(&shared),
            "s2c",
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_relay(
    mut from: Conn,
    mut to: Conn,
    profile: ChaosProfile,
    seed: u64,
    pair: Arc<ConnPair>,
    chunk_budget: Arc<AtomicU64>,
    shared: Arc<Shared>,
    dir: &'static str,
) {
    let _ = thread::Builder::new()
        .name(format!("chaos-{dir}"))
        .spawn(move || {
            let mut rng = SplitMix64::new(seed);
            let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
            let mut buf = [0u8; 4096];
            loop {
                if shared.shutdown.load(Ordering::Relaxed) || pair.severed.load(Ordering::Relaxed) {
                    break;
                }
                let n = match from.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                let chunk = &buf[..n];
                if let Some(limit) = profile.sever_after_chunks {
                    if chunk_budget.fetch_add(1, Ordering::SeqCst) + 1 >= limit {
                        if pair.sever() {
                            shared.stats.severed.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                }
                if profile.drop_per_mille > 0 && rng.per_mille(profile.drop_per_mille) {
                    shared.stats.dropped_chunks.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let copies = if profile.dup_per_mille > 0 && rng.per_mille(profile.dup_per_mille) {
                    shared
                        .stats
                        .duplicated_chunks
                        .fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                let mut failed = false;
                for _ in 0..copies {
                    if relay_chunk(&mut to, chunk, &profile, &mut rng).is_err() {
                        failed = true;
                        break;
                    }
                }
                shared
                    .stats
                    .bytes
                    .fetch_add((n * copies) as u64, Ordering::Relaxed);
                if failed {
                    break;
                }
            }
            // One side died: sever both so the peer notices promptly.
            if pair.sever() {
                // An organic EOF/error close, not a scheduled sever —
                // still counts as this connection ending.
            }
        });
}

/// Forwards one chunk, split into seeded sub-writes with optional
/// per-piece delay.
fn relay_chunk(
    to: &mut Conn,
    chunk: &[u8],
    profile: &ChaosProfile,
    rng: &mut SplitMix64,
) -> io::Result<()> {
    let mut rest = chunk;
    while !rest.is_empty() {
        let piece = if profile.max_split == 0 {
            rest.len()
        } else {
            (1 + rng.below(profile.max_split as u64) as usize).min(rest.len())
        };
        if profile.delay_us_max > 0 {
            let us = rng.below(profile.delay_us_max + 1);
            if us > 0 {
                thread::sleep(Duration::from_micros(us));
            }
        }
        to.write_all(&rest[..piece])?;
        to.flush()?;
        rest = &rest[piece..];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    #[test]
    fn clean_relay_passes_bytes_through() {
        let dir = std::env::temp_dir().join(format!("sage-proxy-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let up_path = dir.join("up.sock");
        let listen_path = dir.join("proxy.sock");
        let upstream = std::os::unix::net::UnixListener::bind(&up_path).unwrap();
        let proxy = ChaosProxy::spawn(
            Bind::Uds(listen_path.clone()),
            Bind::Uds(up_path.clone()),
            ChaosProfile::torn(42),
        )
        .unwrap();

        let echo = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let mut got = Vec::new();
            while got.len() < 10 {
                let n = s.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            s.write_all(&got).unwrap();
        });

        let mut client = UnixStream::connect(&listen_path).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(b"0123456789").unwrap();
        let mut back = [0u8; 10];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"0123456789", "torn relay must still be lossless");
        echo.join().unwrap();
        // The byte counter is bumped after the write that unblocked us;
        // give the relay threads a moment to account.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while proxy.stats().bytes < 20 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(proxy.stats().bytes >= 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sever_all_cuts_live_connections() {
        let dir = std::env::temp_dir().join(format!("sage-proxy-sever-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let up_path = dir.join("up.sock");
        let listen_path = dir.join("proxy.sock");
        let upstream = std::os::unix::net::UnixListener::bind(&up_path).unwrap();
        let proxy = ChaosProxy::spawn(
            Bind::Uds(listen_path.clone()),
            Bind::Uds(up_path.clone()),
            ChaosProfile::default(),
        )
        .unwrap();
        let srv = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 16];
            // Block until the sever propagates as EOF.
            let _ = s.read(&mut buf);
        });
        let mut client = UnixStream::connect(&listen_path).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Let the relay threads attach.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(proxy.sever_all(), 1);
        let mut buf = [0u8; 1];
        assert_eq!(
            client.read(&mut buf).unwrap_or(0),
            0,
            "severed client must see EOF"
        );
        srv.join().unwrap();
        assert!(proxy.stats().severed >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
