//! Spot-check sampling: seeded per-epoch coverage plans and the
//! detection-probability model behind them.
//!
//! A verifier that re-attests every device every round pays the full
//! checksum-replay bill each epoch. SAGE's security argument does not
//! require that: a cheater that fails *any* attested round is caught,
//! so attesting a random coverage-`c` sample of the fleet each epoch
//! still detects a persistent cheater within a geometrically-distributed
//! number of epochs — `P(detect within k epochs) = 1 − (1 − c)^k` — at
//! `1/c` of the cost.
//!
//! The plan is a pure function: device `d` is covered in epoch `e` iff
//! `splitmix(seed, e, fnv(d)) mod 1000 < coverage_per_mille`. Every
//! verifier replica, worker thread, and restarted process computes the
//! same plan from the same `(seed, epoch, name)` — no shared RNG, no
//! coordination, and the same determinism story as
//! [`crate::policy::seeded_jitter`]. Per-device draws are independent
//! Bernoulli trials, which is exactly the assumption the closed-form
//! model needs, so the statistical suite can check the implementation
//! against the formula with no slack for modeling error.
//!
//! Coverage `1000` (the default) short-circuits to "attest everything"
//! and keeps historical schedules byte-identical.

/// Sampling knobs, embedded in [`crate::ServiceConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Fraction of the fleet attested per epoch, in per-mille
    /// (`1000` = full coverage = sampling off, the historical default).
    pub coverage_per_mille: u32,
    /// Plan seed. Two fleets with different seeds sample different
    /// devices in the same epoch; one fleet restarted from a snapshot
    /// re-derives the identical plan.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            coverage_per_mille: 1000,
            seed: 0,
        }
    }
}

impl SamplingConfig {
    /// Whether sampling changes anything (`coverage < 1000`).
    pub fn is_active(&self) -> bool {
        self.coverage_per_mille < 1000
    }
}

/// One epoch's resolved spot-check decisions for a roster — the
/// materialized form of the pure per-device rule, used where a whole
/// epoch's plan is inspected or shipped at once (the
/// [`crate::Frame::SamplingPlan`] broadcast, the statistical suite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpotCheckPlan {
    /// The epoch index this plan covers.
    pub epoch: u64,
    /// Coverage the plan was drawn at, in per-mille.
    pub coverage_per_mille: u32,
    /// Names selected for attestation this epoch, in roster order.
    pub selected: Vec<String>,
}

impl SpotCheckPlan {
    /// Draws the plan for `epoch` over `roster`.
    pub fn for_epoch(cfg: &SamplingConfig, epoch: u64, roster: &[&str]) -> SpotCheckPlan {
        SpotCheckPlan {
            epoch,
            coverage_per_mille: cfg.coverage_per_mille,
            selected: roster
                .iter()
                .filter(|name| covers(cfg, epoch, name))
                .map(|name| name.to_string())
                .collect(),
        }
    }

    /// Whether `device` is attested under this plan.
    pub fn covers(&self, device: &str) -> bool {
        self.selected.iter().any(|n| n == device)
    }
}

/// The per-device coverage rule: is `device` attested in `epoch`?
///
/// An independent Bernoulli(`coverage`) trial per `(seed, epoch,
/// device)` — FNV-1a over the name, two splitmix rounds folding the
/// seed and epoch, then a per-mille threshold test.
pub fn covers(cfg: &SamplingConfig, epoch: u64, device: &str) -> bool {
    if !cfg.is_active() {
        return true;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in device.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= epoch.wrapping_mul(0xD605_0B44_C9C8_2A4D);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 1000) < u64::from(cfg.coverage_per_mille)
}

/// The closed-form detection model: the probability that a device
/// cheating persistently from epoch 1 is attested (and therefore
/// caught) within `k` epochs, `1 − (1 − c)^k`. Returned in per-mille,
/// rounded to nearest — the fixed-point convention of the telemetry
/// gauge that exports it.
pub fn detect_probability_per_mille(coverage_per_mille: u32, k: u64) -> u64 {
    let c = f64::from(coverage_per_mille.min(1000)) / 1000.0;
    let p = 1.0 - (1.0 - c).powi(k.min(i32::MAX as u64) as i32);
    (p * 1000.0).round() as u64
}

/// Epochs needed before a persistent cheater is detected with at least
/// `confidence_per_mille` probability: `⌈ln(1−conf)/ln(1−c)⌉`. The `k`
/// the detection gauge is quoted at, and the horizon the attack matrix
/// holds the sampled-epoch campaigns to.
pub fn epochs_to_detect(coverage_per_mille: u32, confidence_per_mille: u32) -> u64 {
    let c = f64::from(coverage_per_mille.min(1000)) / 1000.0;
    if c >= 1.0 {
        return 1;
    }
    if c <= 0.0 {
        return u64::MAX;
    }
    let conf = f64::from(confidence_per_mille.min(999)) / 1000.0;
    ((1.0 - conf).ln() / (1.0 - c).ln()).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(coverage: u32, seed: u64) -> SamplingConfig {
        SamplingConfig {
            coverage_per_mille: coverage,
            seed,
        }
    }

    #[test]
    fn full_coverage_covers_everything() {
        let c = cfg(1000, 9);
        assert!(!c.is_active());
        for epoch in 0..50 {
            assert!(covers(&c, epoch, "gpu-00"));
        }
    }

    #[test]
    fn coverage_rule_is_deterministic_and_seed_sensitive() {
        let a = cfg(250, 1);
        let b = cfg(250, 2);
        let draws = |c: &SamplingConfig| {
            (0..64)
                .map(|e| covers(c, e, "gpu-03"))
                .collect::<Vec<bool>>()
        };
        assert_eq!(draws(&a), draws(&a), "same seed → same plan");
        assert_ne!(draws(&a), draws(&b), "different seed → different plan");
    }

    #[test]
    fn plan_matches_the_per_device_rule() {
        let c = cfg(500, 77);
        let roster = ["gpu-00", "gpu-01", "gpu-02", "gpu-03"];
        let plan = SpotCheckPlan::for_epoch(&c, 12, &roster);
        for name in roster {
            assert_eq!(plan.covers(name), covers(&c, 12, name));
        }
        assert_eq!(plan.epoch, 12);
        assert_eq!(plan.coverage_per_mille, 500);
    }

    #[test]
    fn empirical_coverage_tracks_the_knob() {
        // 4000 (device, epoch) draws at 25%: the empirical rate must sit
        // near 250‰. Seeds are fixed, so this can never flake.
        let c = cfg(250, 5);
        let mut hits = 0u32;
        for d in 0..40 {
            let name = format!("gpu-{d:02}");
            for e in 0..100 {
                if covers(&c, e, &name) {
                    hits += 1;
                }
            }
        }
        let per_mille = hits * 1000 / 4000;
        assert!(
            (220..=280).contains(&per_mille),
            "empirical coverage {per_mille}‰ far from 250‰"
        );
    }

    #[test]
    fn detection_model_closed_form() {
        assert_eq!(detect_probability_per_mille(1000, 1), 1000);
        assert_eq!(detect_probability_per_mille(500, 1), 500);
        assert_eq!(detect_probability_per_mille(500, 2), 750);
        assert_eq!(detect_probability_per_mille(250, 4), 684); // 1-0.75^4
        assert_eq!(detect_probability_per_mille(0, 10), 0);
    }

    #[test]
    fn epochs_to_detect_inverts_the_model() {
        // At 25% coverage, 16 epochs give 1-0.75^16 ≈ 0.9899 ≥ 0.98.
        let k = epochs_to_detect(250, 980);
        assert_eq!(k, 14); // 1-0.75^14 ≈ 0.9822
        assert!(detect_probability_per_mille(250, k) >= 980);
        assert_eq!(epochs_to_detect(1000, 999), 1);
        assert_eq!(epochs_to_detect(0, 990), u64::MAX);
    }
}
