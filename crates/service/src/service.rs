//! The long-running verifier service: per-device lifecycle state
//! machines, re-attestation scheduling, and the quarantine policy,
//! all driven by one deterministic virtual clock.
//!
//! ```text
//!            join            calibrate + SAKE        round passes
//! (operator) ───► Enrolled ─────► Attesting ──────────► Trusted ◄──┐
//!                     │                │                   │       │
//!                     │ calibration /  │ budget            │ round │ round
//!                     │ establishment  │ exhausted         │ fails │ passes
//!                     ▼ fails          ▼                   ▼       │
//!                 Quarantined ◄──────────────────────── Degraded ──┘
//!                                 budget exhausted
//!
//!  any state ───leave()───► Revoked
//! ```
//!
//! Scheduling is event-driven: the service hops the virtual clock to the
//! next due instant (a message arrival, a round deadline, or a scheduled
//! re-attestation) rather than ticking one unit at a time, the same
//! stall-skipping idea the simulator core uses.

use sage::channel::{Role, SecureChannel};
use sage::multi::{power_score, FleetMember};
use sage::sake::{key_fingerprint, SakeMessage};
use sage::verifier::Verifier;
use sage::{GpuSession, SageError};
use sage_crypto::DhGroup;
use sage_evidence::merkle::{epoch_root, prove_inclusion, EpochLeaf};
use sage_evidence::report::{DeviceReport, FreshnessClaim};
use sage_evidence::{EvidenceChain, EvidencePath, EvidencePayload, Freshness, StageVerdict};
use sage_sgx_sim::Enclave;
use sage_telemetry::Registry;

use crate::events::{EventKind, EventLog, FailReason};
use crate::net::{Envelope, NodeId, Transport};
use crate::node::DeviceNode;
use crate::policy::Policy;
use crate::wire::{self, Frame};

/// The verifier's transport address.
pub const VERIFIER_NODE: NodeId = NodeId(0);

/// Lifecycle state of a managed device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceState {
    /// Joined, enrollment not yet attempted.
    Enrolled,
    /// Calibration/key establishment done, first round not yet passed.
    Attesting,
    /// Root of trust established and holding.
    Trusted,
    /// One or more consecutive failures; retrying under backoff.
    Degraded,
    /// Failure budget exhausted; no longer scheduled.
    Quarantined,
    /// Removed by the operator; no longer scheduled.
    Revoked,
}

impl DeviceState {
    /// Stable string tag used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeviceState::Enrolled => "enrolled",
            DeviceState::Attesting => "attesting",
            DeviceState::Trusted => "trusted",
            DeviceState::Degraded => "degraded",
            DeviceState::Quarantined => "quarantined",
            DeviceState::Revoked => "revoked",
        }
    }
}

impl core::fmt::Display for DeviceState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Service-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Virtual ticks between successful rounds on one device.
    pub reattest_interval: u64,
    /// One-way network budget the round deadline allows (should cover
    /// the link profile's worst-case delay).
    pub latency_budget: u64,
    /// Additional slack added to the round deadline.
    pub deadline_slack: u64,
    /// Timed exchanges used to calibrate each joining device.
    pub calibration_runs: usize,
    /// Failure-handling policy.
    pub policy: Policy,
    /// Precomputed rounds held per device (`0` disables the fast path:
    /// every round replays online).
    pub bank_capacity: usize,
    /// Background refill threads per device bank. Keep at `1` (the
    /// default) for deterministic runs: a single producer pushes rounds
    /// in generator order, so the consumed challenge sequence does not
    /// depend on thread scheduling. `0` refills synchronously on take.
    pub bank_workers: usize,
    /// Rounds stocked into each joining device's bank *before* its
    /// calibration, via the shared [`sage_vf::ReplayPool`] (one flat
    /// `(round, block)` job list saturating the verifier host's cores).
    /// `0` (the default) skips the explicit prefill; calibration then
    /// warms the bank itself, one serial replay at a time. The time
    /// spent here is accounted separately — see
    /// [`AttestationService::prefill_wall_seconds`].
    pub prefill_rounds: usize,
    /// Virtual ticks between fleet evidence epochs: every interval, a
    /// Merkle root over all device chain heads is sealed and logged.
    /// `0` (the default) disables epoch sealing.
    pub epoch_interval: u64,
    /// Freshness-driven trust decay. Disabled by default (devices never
    /// decay), preserving the historical lifecycle exactly.
    pub freshness: sage_evidence::FreshnessPolicy,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            reattest_interval: 50_000,
            latency_budget: 200,
            deadline_slack: 1_000,
            calibration_runs: 5,
            policy: Policy::default(),
            bank_capacity: 2,
            bank_workers: 1,
            prefill_rounds: 0,
            epoch_interval: 0,
            freshness: sage_evidence::FreshnessPolicy::disabled(),
        }
    }
}

pub(crate) struct Outstanding {
    pub(crate) round: u64,
    pub(crate) challenges: Vec<[u8; 16]>,
    /// Bank-precomputed expected checksum; `None` means this round
    /// verifies via online replay.
    pub(crate) expected: Option<[u32; 8]>,
    pub(crate) deadline: u64,
}

pub(crate) struct ManagedDevice {
    pub(crate) node: DeviceNode,
    pub(crate) verifier: Verifier,
    pub(crate) state: DeviceState,
    pub(crate) round: u64,
    pub(crate) rounds_passed: u64,
    pub(crate) consecutive_failures: u32,
    /// Consecutive wrong-checksum failures — the persistent-fault
    /// signal; reset on any passed round, untouched by timeouts or
    /// timing rejects (network noise must not mask corruption).
    pub(crate) consecutive_value_failures: u32,
    pub(crate) consecutive_restarts: u32,
    pub(crate) outstanding: Option<Outstanding>,
    pub(crate) next_action_at: Option<u64>,
    /// The SAKE session key (verifier side), kept to open liveness
    /// channels and derive the evidence key after a restore.
    pub(crate) session_key: Option<[u8; 16]>,
    /// The device's evidence chain (present once SAKE established).
    pub(crate) evidence: Option<EvidenceChain>,
    /// Virtual time of the newest passing attestation stage — the
    /// freshness anchor. Mirrors the chain's newest `Pass` record.
    pub(crate) last_attested: Option<u64>,
    /// Current freshness level under the configured policy.
    pub(crate) freshness: Freshness,
}

/// One sealed fleet evidence epoch: the Merkle root over every device's
/// chain head at the seal instant, plus the leaves (so inclusion proofs
/// stay recomputable after the fact).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SealedEpoch {
    /// Epoch index (the first sealed epoch is 1).
    pub index: u64,
    /// Virtual time the epoch was sealed.
    pub at: u64,
    /// Merkle root over `leaves`.
    pub root: [u8; 32],
    /// Per-device leaves, sorted by device name (the canonical order the
    /// root commits to).
    pub leaves: Vec<EpochLeaf>,
}

/// One device's health, derived from its lifecycle counters. The score
/// separates the two failure families the chaos engine exercises:
/// transient faults (timeouts, slow rounds — recoverable, lightly
/// penalized) and wrong checksums (unforgeable evidence of corruption or
/// compromise — heavily penalized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Device name.
    pub name: String,
    /// Lifecycle state.
    pub state: DeviceState,
    /// 0–100. `Quarantined`/`Revoked` pin it to 0; a clean `Trusted`
    /// device sits at 100; consecutive transient failures cost 15 each,
    /// consecutive wrong values 35 each.
    pub score: u8,
    /// Current consecutive-failure streak (any reason).
    pub consecutive_failures: u32,
    /// Current consecutive wrong-checksum streak.
    pub consecutive_value_failures: u32,
    /// §7.2 restarts consumed in the current streak.
    pub consecutive_restarts: u32,
}

/// A point-in-time summary of one managed device.
#[derive(Clone, Debug)]
pub struct DeviceStatus {
    /// Device name.
    pub name: String,
    /// Transport address.
    pub node: NodeId,
    /// Lifecycle state.
    pub state: DeviceState,
    /// Rounds passed since joining.
    pub rounds_passed: u64,
    /// Current consecutive-failure count.
    pub consecutive_failures: u32,
    /// Compute-power score (ordering key).
    pub power: u128,
}

/// The attestation control plane.
pub struct AttestationService<T: Transport> {
    pub(crate) cfg: ServiceConfig,
    pub(crate) group: DhGroup,
    pub(crate) net: T,
    pub(crate) now: u64,
    pub(crate) devices: Vec<ManagedDevice>,
    pub(crate) log: EventLog,
    pub(crate) next_node: u16,
    pub(crate) registry: Option<Registry>,
    /// Wall-clock time spent in pooled bank prefill across every join,
    /// kept out of the enrollment figure benchmarks report.
    pub(crate) prefill_wall: core::time::Duration,
    /// Sealed fleet evidence epochs, oldest first.
    pub(crate) sealed_epochs: Vec<SealedEpoch>,
    /// When the next epoch seals (`None` while epochs are disabled).
    pub(crate) next_seal_at: Option<u64>,
}

impl<T: Transport> AttestationService<T> {
    /// Creates a service over a transport.
    pub fn new(cfg: ServiceConfig, group: DhGroup, net: T) -> AttestationService<T> {
        AttestationService {
            cfg,
            group,
            net,
            now: 0,
            devices: Vec::new(),
            log: EventLog::new(),
            next_node: 1,
            registry: None,
            prefill_wall: core::time::Duration::ZERO,
            sealed_epochs: Vec::new(),
            next_seal_at: (cfg.epoch_interval > 0).then_some(cfg.epoch_interval),
        }
    }

    /// Cumulative wall-clock seconds spent stocking joining devices'
    /// challenge banks through the shared replay pool
    /// (`cfg.prefill_rounds` pairs per device). Benchmarks subtract
    /// this from the enrollment wall so the reported enroll throughput
    /// measures calibration + SAKE, with precompute priced on its own.
    pub fn prefill_wall_seconds(&self) -> f64 {
        self.prefill_wall.as_secs_f64()
    }

    /// Attaches the whole service to a telemetry registry: the event
    /// log's round-lifecycle counters and latency histogram
    /// (`service_*`), every enrolled device's verifier verdicts
    /// (`verifier_*{device, cause, path}`), challenge-bank counters
    /// (`vf_bank_*{device}`) and simulator stats (`sim_*{device}`).
    /// Devices joining later are attached automatically. Attaching
    /// after a crash-restore replays the restored event history into
    /// the sink first, so the series match a service that never
    /// stopped.
    pub fn attach_telemetry(&mut self, reg: &Registry) {
        self.log.attach_telemetry(reg);
        for d in &mut self.devices {
            let name = d.node.member.name.clone();
            d.verifier.attach_telemetry(reg, &[("device", &name)]);
            d.node
                .member
                .session
                .dev
                .install_telemetry(reg, &[("device", &name)]);
        }
        self.registry = Some(reg.clone());
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The underlying transport (delivery counters).
    pub fn transport(&self) -> &T {
        &self.net
    }

    /// Mutable transport access (fault injection in tests/benches).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// The structured event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Per-device summaries, in roster (most-powerful-first) order.
    pub fn statuses(&self) -> Vec<DeviceStatus> {
        self.devices
            .iter()
            .map(|d| DeviceStatus {
                name: d.node.member.name.clone(),
                node: d.node.id,
                state: d.state,
                rounds_passed: d.rounds_passed,
                consecutive_failures: d.consecutive_failures,
                power: power_score(&d.node.member.session.dev.cfg),
            })
            .collect()
    }

    /// The lifecycle state of a device, if managed.
    pub fn state_of(&self, name: &str) -> Option<DeviceState> {
        self.devices
            .iter()
            .find(|d| d.node.member.name == name)
            .map(|d| d.state)
    }

    /// The derived health of a device, if managed. See [`DeviceHealth`]
    /// for the scoring rule.
    pub fn health_of(&self, name: &str) -> Option<DeviceHealth> {
        self.devices
            .iter()
            .find(|d| d.node.member.name == name)
            .map(|d| {
                let score = match d.state {
                    DeviceState::Quarantined | DeviceState::Revoked => 0u8,
                    _ => {
                        let transient = d
                            .consecutive_failures
                            .saturating_sub(d.consecutive_value_failures);
                        100u32
                            .saturating_sub(transient.saturating_mul(15))
                            .saturating_sub(d.consecutive_value_failures.saturating_mul(35))
                            as u8
                    }
                };
                DeviceHealth {
                    name: d.node.member.name.clone(),
                    state: d.state,
                    score,
                    consecutive_failures: d.consecutive_failures,
                    consecutive_value_failures: d.consecutive_value_failures,
                    consecutive_restarts: d.consecutive_restarts,
                }
            })
    }

    /// The calibrated detection threshold of a device, in cycles.
    pub fn threshold_of(&self, name: &str) -> Option<u64> {
        self.devices
            .iter()
            .find(|d| d.node.member.name == name)
            .and_then(|d| d.verifier.threshold())
    }

    /// Mutable access to a device's network node — the hook fault
    /// injectors and the attack harness use to compromise a device
    /// *after* enrollment.
    pub fn node_mut(&mut self, name: &str) -> Option<&mut DeviceNode> {
        self.devices
            .iter_mut()
            .find(|d| d.node.member.name == name)
            .map(|d| &mut d.node)
    }

    /// Mutable access to a device's GPU session (shorthand over
    /// [`AttestationService::node_mut`]).
    pub fn session_mut(&mut self, name: &str) -> Option<&mut GpuSession> {
        self.node_mut(name).map(|n| &mut n.member.session)
    }

    /// Enrolls a device: calibrates its timing threshold, establishes the
    /// SAKE key (every protocol message passes through the wire codec, as
    /// it would on a real link), and schedules its first remote round.
    ///
    /// Enrollment failures do not abort the service: the device lands in
    /// `Quarantined` with the failure recorded, and the rest of the fleet
    /// keeps running — the graceful-degradation contract a long-running
    /// control plane needs.
    pub fn join(&mut self, mut member: FleetMember, enclave: Enclave) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let name = member.name.clone();
        self.log.record(self.now, &name, EventKind::Joined);

        let mut verifier =
            Verifier::new(enclave, member.session.build().clone(), self.group.clone());
        if self.cfg.bank_capacity > 0 {
            // Fast path: precompute (challenges, expected) pairs off the
            // round critical path. Enabled before calibration so the
            // calibration replays already overlap the device runs.
            verifier.enable_fast_path(sage_vf::BankConfig {
                capacity: self.cfg.bank_capacity,
                workers: self.cfg.bank_workers,
            });
            if self.cfg.prefill_rounds > 0 {
                // Stock the bank through the shared replay pool before
                // calibration starts, so the calibration loop draws
                // precomputed pairs instead of replaying serially
                // inline. Timed separately: precompute is a capacity
                // cost, not part of the enroll exchange itself.
                let t = std::time::Instant::now();
                verifier.prefill_rounds(self.cfg.prefill_rounds);
                self.prefill_wall += t.elapsed();
            }
        }
        if let Some(reg) = &self.registry {
            verifier.attach_telemetry(reg, &[("device", &name)]);
            member
                .session
                .dev
                .install_telemetry(reg, &[("device", &name)]);
        }

        let mut state = DeviceState::Enrolled;
        let mut record_state = |log: &mut EventLog, now: u64, to: DeviceState| {
            log.record(now, &name, EventKind::StateChanged { from: state, to });
            state = to;
        };

        record_state(&mut self.log, self.now, DeviceState::Attesting);
        let outcome = match verifier.calibrate(&mut member.session, self.cfg.calibration_runs) {
            Err(_) => {
                self.log
                    .record(self.now, &name, EventKind::CalibrationFailed);
                None
            }
            Ok(_) => {
                // Serialization boundary: each SAKE message is encoded
                // and re-decoded through the versioned codec, exactly as
                // it would cross the wire. A roundtrip failure is a codec
                // bug, but it must not panic the control plane: the
                // message is left untouched, the failure is remembered,
                // and the enrollment is refused below.
                let mut codec_ok = true;
                let mut tap = |_step: usize, msg: &mut SakeMessage| {
                    let bytes = wire::encode(&Frame::Sake(msg.clone()));
                    match wire::decode(&bytes) {
                        Ok(Frame::Sake(decoded)) => *msg = decoded,
                        _ => codec_ok = false,
                    }
                };
                match verifier.establish_key(&mut member.session, &mut member.agent, Some(&mut tap))
                {
                    Ok(o) if codec_ok => Some(o),
                    _ => {
                        self.log.record(self.now, &name, EventKind::EstablishFailed);
                        None
                    }
                }
            }
        };
        if outcome.is_none() {
            record_state(&mut self.log, self.now, DeviceState::Quarantined);
        }

        let next_action_at = outcome.is_some().then_some(self.now + 1);
        let mut node = DeviceNode::new(member, id);
        // An established key opens the device's evidence chain: its first
        // record attests the SAKE confirmation (key fingerprint plus the
        // timed establishment round the key's trust rests on).
        let (session_key, evidence, last_attested) = match outcome {
            Some(o) => {
                node.session_key = Some(o.session_key);
                let mut chain = EvidenceChain::new(&name, &o.session_key);
                chain.append(
                    self.now,
                    EvidencePayload::SakeConfirmed {
                        key_fingerprint: key_fingerprint(&o.session_key),
                        measured_cycles: o.measured_cycles,
                        threshold_cycles: o.threshold_cycles,
                    },
                );
                (Some(o.session_key), Some(chain), Some(self.now))
            }
            None => (None, None, None),
        };
        self.devices.push(ManagedDevice {
            node,
            verifier,
            state,
            round: 0,
            rounds_passed: 0,
            consecutive_failures: 0,
            consecutive_value_failures: 0,
            consecutive_restarts: 0,
            outstanding: None,
            next_action_at,
            session_key,
            evidence,
            last_attested,
            freshness: Freshness::Trusted,
        });
        self.sort_roster();
        id
    }

    /// Revokes a device: it is no longer scheduled and its outstanding
    /// round (if any) is abandoned. Returns `false` if unknown.
    pub fn leave(&mut self, name: &str) -> bool {
        let Some(d) = self.devices.iter_mut().find(|d| d.node.member.name == name) else {
            return false;
        };
        let from = d.state;
        d.state = DeviceState::Revoked;
        d.outstanding = None;
        d.next_action_at = None;
        let dev = d.node.member.name.clone();
        self.log.record(
            self.now,
            &dev,
            EventKind::StateChanged {
                from,
                to: DeviceState::Revoked,
            },
        );
        self.log.record(self.now, &dev, EventKind::Left);
        true
    }

    /// Keeps the roster most-powerful-first across join/leave (paper
    /// §3.2), with the deterministic name tie-break shared with
    /// [`sage::multi`].
    pub(crate) fn sort_roster(&mut self) {
        self.devices.sort_by(|a, b| {
            power_score(&b.node.member.session.dev.cfg)
                .cmp(&power_score(&a.node.member.session.dev.cfg))
                .then_with(|| a.node.member.name.cmp(&b.node.member.name))
        });
    }

    /// The earliest virtual time at which the service has work.
    pub fn next_event_at(&self) -> Option<u64> {
        let mut next: Option<u64> = self.net.next_event_at().map(|t| t.max(self.now));
        let mut fold = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        for d in &self.devices {
            if let Some(t) = d.next_action_at {
                fold(t);
            }
            if let Some(o) = &d.outstanding {
                fold(o.deadline);
            }
            // Freshness decay is an event too: the clock must land on
            // the transition boundary so the level change is observable
            // at the exact tick the policy names.
            if self.cfg.freshness.is_enabled()
                && d.evidence.is_some()
                && d.state != DeviceState::Revoked
            {
                if let Some(t) = self
                    .cfg
                    .freshness
                    .next_transition_at(d.last_attested, self.now)
                {
                    fold(t);
                }
            }
        }
        if let Some(t) = self.next_seal_at {
            fold(t);
        }
        next
    }

    /// Runs the event loop until virtual time `t` (inclusive).
    pub fn run_until(&mut self, t: u64) {
        while let Some(e) = self.next_event_at() {
            if e > t {
                break;
            }
            self.now = self.now.max(e);
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs the event loop for `ticks` more virtual ticks.
    pub fn run_for(&mut self, ticks: u64) {
        self.run_until(self.now + ticks);
    }

    /// Processes everything due at the current virtual time.
    fn step(&mut self) {
        self.pump_device_inboxes();
        self.pump_verifier_inbox();
        self.expire_deadlines();
        self.start_due_rounds();
        self.seal_due_epochs();
        self.apply_freshness_decay();
    }

    /// Delivers frames to device nodes and forwards their replies
    /// (roster order: most powerful first).
    fn pump_device_inboxes(&mut self) {
        for i in 0..self.devices.len() {
            let id = self.devices[i].node.id;
            while let Some(env) = self.net.poll(self.now, id) {
                if self.devices[i].state == DeviceState::Revoked {
                    continue; // a revoked device is off the network
                }
                let Ok(frame) = wire::decode(&env.bytes) else {
                    continue; // corrupt frame: fail closed, deadline covers it
                };
                if let Some((send_at, reply)) = self.devices[i].node.handle(self.now, &frame) {
                    self.net.send(
                        send_at,
                        Envelope {
                            src: id,
                            dst: VERIFIER_NODE,
                            bytes: wire::encode(&reply),
                        },
                    );
                }
            }
        }
    }

    fn pump_verifier_inbox(&mut self) {
        while let Some(env) = self.net.poll(self.now, VERIFIER_NODE) {
            let Ok(Frame::Response {
                round,
                checksum,
                measured_cycles,
            }) = wire::decode(&env.bytes)
            else {
                continue;
            };
            let Some(i) = self.devices.iter().position(|d| d.node.id == env.src) else {
                continue;
            };
            let name = self.devices[i].node.member.name.clone();
            let d = &mut self.devices[i];
            let o = match d.outstanding.take() {
                Some(o) if o.round == round => o,
                other => {
                    // Late, duplicated, or replayed response: ignore it
                    // and put any genuinely outstanding round back.
                    d.outstanding = other;
                    self.log
                        .record(self.now, &name, EventKind::LateResponse { round });
                    continue;
                }
            };
            // A bank hit carries its precomputed expected checksum: the
            // verdict is a compare + timing check, zero replay online.
            let verdict = match o.expected {
                Some(expected) => {
                    d.verifier
                        .check_response_precomputed(expected, checksum, measured_cycles)
                }
                None => d
                    .verifier
                    .check_response(&o.challenges, checksum, measured_cycles),
            };
            let path = match o.expected {
                Some(_) => EvidencePath::Precomputed,
                None => EvidencePath::Classic,
            };
            match verdict {
                Ok(_) => self.round_passed(i, round, measured_cycles, path),
                Err(SageError::TimingExceeded { .. }) => {
                    self.round_failed(i, round, FailReason::TooSlow, measured_cycles, path)
                }
                Err(_) => {
                    self.round_failed(i, round, FailReason::WrongValue, measured_cycles, path)
                }
            }
        }
    }

    fn expire_deadlines(&mut self) {
        for i in 0..self.devices.len() {
            let due = self.devices[i]
                .outstanding
                .as_ref()
                .is_some_and(|o| o.deadline <= self.now);
            if due {
                if let Some(o) = self.devices[i].outstanding.take() {
                    let path = match o.expected {
                        Some(_) => EvidencePath::Precomputed,
                        None => EvidencePath::Classic,
                    };
                    self.round_failed(i, o.round, FailReason::Timeout, 0, path);
                }
            }
        }
    }

    fn start_due_rounds(&mut self) {
        for i in 0..self.devices.len() {
            let d = &self.devices[i];
            if d.next_action_at.is_some_and(|t| t <= self.now) {
                self.start_round(i);
            }
        }
    }

    fn start_round(&mut self, i: usize) {
        let now = self.now;
        let d = &mut self.devices[i];
        d.next_action_at = None;
        if !matches!(
            d.state,
            DeviceState::Attesting | DeviceState::Trusted | DeviceState::Degraded
        ) {
            return;
        }
        let Some(threshold) = d.verifier.threshold() else {
            return; // uncalibrated devices never get here (join quarantines them)
        };
        d.round += 1;
        // Blocking take keeps the consumed challenge sequence
        // deterministic (the bank's single producer draws in generator
        // order); the wait is bounded by one background replay and only
        // ever happens when rounds outpace the refill workers.
        let (challenges, expected) = d.verifier.prepare_round_blocking();
        // The round must complete within: challenge flight + the
        // calibrated worst-case checksum time + response flight + slack.
        let deadline = now + 2 * self.cfg.latency_budget + threshold + self.cfg.deadline_slack;
        d.outstanding = Some(Outstanding {
            round: d.round,
            challenges: challenges.clone(),
            expected,
            deadline,
        });
        let round = d.round;
        let dst = d.node.id;
        let name = d.node.member.name.clone();
        self.log
            .record(now, &name, EventKind::RoundStarted { round });
        self.net.send(
            now,
            Envelope {
                src: VERIFIER_NODE,
                dst,
                bytes: wire::encode(&Frame::Challenge { round, challenges }),
            },
        );
    }

    fn round_passed(&mut self, i: usize, round: u64, measured: u64, path: EvidencePath) {
        let now = self.now;
        let interval = self.cfg.reattest_interval;
        let d = &mut self.devices[i];
        d.rounds_passed += 1;
        d.consecutive_failures = 0;
        d.consecutive_value_failures = 0;
        d.consecutive_restarts = 0;
        d.next_action_at = Some(now + interval);
        let name = d.node.member.name.clone();
        let threshold = d.verifier.threshold().unwrap_or(0);
        self.log
            .record(now, &name, EventKind::RoundPassed { round, measured });
        self.append_evidence(
            i,
            EvidencePayload::ChecksumRound {
                round,
                measured_cycles: measured,
                threshold_cycles: threshold,
                verdict: StageVerdict::Pass,
                path,
            },
        );
        if matches!(
            self.devices[i].state,
            DeviceState::Attesting | DeviceState::Degraded
        ) {
            self.set_state(i, DeviceState::Trusted);
        }
    }

    fn round_failed(
        &mut self,
        i: usize,
        round: u64,
        reason: FailReason,
        measured: u64,
        path: EvidencePath,
    ) {
        let now = self.now;
        let policy = self.cfg.policy;
        let name = self.devices[i].node.member.name.clone();
        self.log
            .record(now, &name, EventKind::RoundFailed { round, reason });
        let verdict = match reason {
            FailReason::WrongValue => StageVerdict::WrongValue,
            FailReason::TooSlow => StageVerdict::TooSlow,
            FailReason::Timeout => StageVerdict::Timeout,
        };
        let threshold = self.devices[i].verifier.threshold().unwrap_or(0);
        self.append_evidence(
            i,
            EvidencePayload::ChecksumRound {
                round,
                measured_cycles: measured,
                threshold_cycles: threshold,
                verdict,
                path,
            },
        );

        let d = &mut self.devices[i];
        // Paper §7.2: a timing-only reject is ≈0.5% likely on an honest
        // device — restart the verification instead of counting it
        // against the failure budget. With `restart_on_timeout` the
        // watchdog extends the same allowance to expired deadlines (a
        // transiently-unreachable device), sharing the restart budget.
        let restartable = match reason {
            FailReason::TooSlow => true,
            FailReason::Timeout => policy.restart_on_timeout,
            FailReason::WrongValue => false,
        };
        if restartable && d.consecutive_restarts < policy.max_timing_restarts {
            d.consecutive_restarts += 1;
            d.next_action_at = Some(now + policy.backoff_base);
            self.log.record(now, &name, EventKind::Restarted { round });
            return;
        }
        d.consecutive_failures += 1;
        if reason == FailReason::WrongValue {
            d.consecutive_value_failures += 1;
        }
        // Two quarantine budgets: the general one for any consecutive
        // failures, and a (usually tighter) one for wrong checksums —
        // the signal no honest device can emit.
        if d.consecutive_failures >= policy.quarantine_after
            || d.consecutive_value_failures >= policy.value_quarantine_after
        {
            d.next_action_at = None;
            self.set_state(i, DeviceState::Quarantined);
        } else {
            let delay = policy.backoff_delay(d.consecutive_failures);
            d.next_action_at = Some(now + delay);
            if d.state != DeviceState::Degraded {
                self.set_state(i, DeviceState::Degraded);
            }
        }
    }

    fn set_state(&mut self, i: usize, to: DeviceState) {
        let d = &mut self.devices[i];
        if d.state == to {
            return;
        }
        let from = d.state;
        d.state = to;
        let name = d.node.member.name.clone();
        self.log
            .record(self.now, &name, EventKind::StateChanged { from, to });
    }

    /// Appends one attestation-stage record to a device's evidence chain
    /// (a no-op for devices whose SAKE establishment failed — they have
    /// no chain and no key to authenticate records under). A passing
    /// stage advances the freshness anchor.
    fn append_evidence(&mut self, i: usize, payload: EvidencePayload) {
        let now = self.now;
        let d = &mut self.devices[i];
        let Some(chain) = d.evidence.as_mut() else {
            return;
        };
        let passed = payload.verdict() == StageVerdict::Pass;
        chain.append(now, payload);
        if passed {
            d.last_attested = Some(now);
        }
        self.refresh_freshness(i);
    }

    /// Re-evaluates one device's freshness level under the configured
    /// policy and logs the transition if it changed.
    fn refresh_freshness(&mut self, i: usize) {
        let now = self.now;
        let d = &mut self.devices[i];
        if d.evidence.is_none() || d.state == DeviceState::Revoked {
            return;
        }
        let to = self.cfg.freshness.level(d.last_attested, now);
        if to == d.freshness {
            return;
        }
        let from = d.freshness;
        d.freshness = to;
        let name = d.node.member.name.clone();
        self.log
            .record(now, &name, EventKind::FreshnessChanged { from, to });
    }

    /// Applies freshness decay across the fleet (event-loop hook; the
    /// clock lands exactly on transition boundaries via
    /// [`AttestationService::next_event_at`]).
    fn apply_freshness_decay(&mut self) {
        if !self.cfg.freshness.is_enabled() {
            return;
        }
        for i in 0..self.devices.len() {
            self.refresh_freshness(i);
        }
    }

    /// Seals every epoch due at the current time (a catch-up loop, so a
    /// long clock hop seals each missed boundary in order).
    fn seal_due_epochs(&mut self) {
        while let Some(t) = self.next_seal_at {
            if t > self.now {
                break;
            }
            self.next_seal_at = Some(t + self.cfg.epoch_interval);
            let mut leaves: Vec<EpochLeaf> = self
                .devices
                .iter()
                .filter_map(|d| {
                    d.evidence.as_ref().map(|c| EpochLeaf {
                        device: d.node.member.name.clone(),
                        head: c.head(),
                        seq: c.seq(),
                    })
                })
                .collect();
            // Name order is the canonical leaf order the root commits to
            // (the roster itself is power-ordered and churns).
            leaves.sort_by(|a, b| a.device.cmp(&b.device));
            let root = epoch_root(&leaves);
            let index = self.sealed_epochs.last().map_or(1, |e| e.index + 1);
            self.log
                .record(t, "fleet", EventKind::EpochSealed { epoch: index, root });
            self.sealed_epochs.push(SealedEpoch {
                index,
                at: t,
                root,
                leaves,
            });
        }
    }

    /// Sends one authenticated liveness probe to a device over a channel
    /// keyed by its SAKE session key, and records the outcome as
    /// evidence. Returns `None` for unknown devices or devices without
    /// an established key; otherwise whether the echo verified.
    pub fn probe_device(&mut self, name: &str) -> Option<bool> {
        let i = self
            .devices
            .iter()
            .position(|d| d.node.member.name == name)?;
        let sk = self.devices[i].session_key?;
        let seq = self.devices[i].evidence.as_ref()?.seq();
        // Deterministic per-probe nonce: a splitmix64 finalizer over the
        // (time, chain position) pair — unique per probe, reproducible
        // across runs.
        let mut nonce = self.now ^ seq.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        nonce = (nonce ^ (nonce >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        nonce = (nonce ^ (nonce >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        nonce ^= nonce >> 31;
        let mut host = SecureChannel::new(sk, Role::Host);
        let probe = host.probe_liveness(nonce);
        let ok = self.devices[i]
            .node
            .answer_liveness(&probe)
            .is_some_and(|echo| host.confirm_liveness(nonce, &echo).is_ok());
        let verdict = if ok {
            StageVerdict::Pass
        } else {
            StageVerdict::Timeout
        };
        self.append_evidence(i, EvidencePayload::ChannelLiveness { nonce, verdict });
        Some(ok)
    }

    /// Checks a user kernel's measured hash on a device (paper §5.2.3)
    /// and records the measurement as evidence. Returns `None` for
    /// unknown or never-established devices; otherwise whether the
    /// measured hash matched.
    pub fn verify_kernel(&mut self, name: &str, code: &[u8]) -> Option<bool> {
        let i = self
            .devices
            .iter()
            .position(|d| d.node.member.name == name)?;
        self.devices[i].evidence.as_ref()?;
        let d = &mut self.devices[i];
        let outcome = d.verifier.verify_user_kernel_hash(
            &mut d.node.member.session,
            &mut d.node.member.agent,
            code,
        );
        let (ok, payload) = match outcome {
            Ok(hash) => (
                true,
                EvidencePayload::KernelHash {
                    hash,
                    verdict: StageVerdict::Pass,
                },
            ),
            Err(_) => (
                false,
                EvidencePayload::KernelHash {
                    hash: [0u8; 32],
                    verdict: StageVerdict::WrongValue,
                },
            ),
        };
        self.append_evidence(i, payload);
        Some(ok)
    }

    /// Builds a self-contained [`DeviceReport`] for one device, anchored
    /// at the newest sealed epoch: the device's leaf and inclusion
    /// proof, every chain record appended since the seal, and the
    /// freshness claim at the current clock — all under the device's
    /// evidence-key CMAC. `None` until an epoch sealed with the device
    /// in it.
    pub fn report_for(&self, name: &str) -> Option<DeviceReport> {
        let d = self.devices.iter().find(|d| d.node.member.name == name)?;
        let chain = d.evidence.as_ref()?;
        let epoch = self.sealed_epochs.last()?;
        let pos = epoch.leaves.iter().position(|l| l.device == name)?;
        let leaf = epoch.leaves[pos].clone();
        let proof = prove_inclusion(&epoch.leaves, pos);
        let suffix = chain.suffix(leaf.seq);
        let claim = FreshnessClaim {
            policy: self.cfg.freshness,
            last_pass_at: d.last_attested,
            asserted_at: self.now,
            level: self.cfg.freshness.level(d.last_attested, self.now),
        };
        Some(DeviceReport::seal(
            epoch.index,
            leaf,
            epoch.root,
            proof,
            suffix,
            claim,
            &chain.evidence_key(),
        ))
    }

    /// Every sealed fleet epoch, oldest first.
    pub fn sealed_epochs(&self) -> &[SealedEpoch] {
        &self.sealed_epochs
    }

    /// A device's evidence chain, if SAKE establishment succeeded.
    pub fn evidence_of(&self, name: &str) -> Option<&EvidenceChain> {
        self.devices
            .iter()
            .find(|d| d.node.member.name == name)
            .and_then(|d| d.evidence.as_ref())
    }

    /// A device's evidence key (what a relying party needs, alongside a
    /// trusted epoch root, to verify its reports out of band).
    pub fn evidence_key_of(&self, name: &str) -> Option<[u8; 16]> {
        self.evidence_of(name).map(|c| c.evidence_key())
    }

    /// A device's current freshness level.
    pub fn freshness_of(&self, name: &str) -> Option<Freshness> {
        self.devices
            .iter()
            .find(|d| d.node.member.name == name)
            .map(|d| d.freshness)
    }

    /// Renders a service snapshot (time, per-device status, counters) as
    /// JSON — the `svcperf` benchmark embeds this in `BENCH_svc.json`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"virtual_time\": {},\n", self.now));
        out.push_str("  \"devices\": [\n");
        let statuses = self.statuses();
        for (i, s) in statuses.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"state\": \"{}\", \"rounds_passed\": {}, \"consecutive_failures\": {}}}{}\n",
                crate::events::json_str(&s.name),
                s.state.as_str(),
                s.rounds_passed,
                s.consecutive_failures,
                if i + 1 == statuses.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"counters\": ");
        out.push_str(&self.log.counters_json());
        out.push_str("\n}\n");
        out
    }
}
